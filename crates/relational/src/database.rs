//! The database: a set of tables plus the `DbOp` mutation protocol.
//!
//! Every higher layer (structural integrity maintenance, Keller view
//! updates, view-object translation) expresses its effects as lists of
//! [`DbOp`] — insert / delete / replace on keyed relations — which are the
//! three database operations the paper's algorithms emit. Batches apply
//! transactionally: any failure rolls back every op already applied.

use crate::error::{Error, Result};
use crate::schema::{DatabaseSchema, RelationSchema};
use crate::stats::{count_commit, count_conflict, count_journal_dropped, count_snapshot_pinned};
use crate::table::Table;
use crate::tuple::{Key, Tuple};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// One primitive mutation on a keyed relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbOp {
    /// Insert `tuple` into `relation`.
    Insert { relation: String, tuple: Tuple },
    /// Delete the tuple with `key` from `relation`.
    Delete { relation: String, key: Key },
    /// Replace the tuple at `old_key` in `relation` with `tuple` (whose key
    /// may differ — a key replacement).
    Replace {
        relation: String,
        old_key: Key,
        tuple: Tuple,
    },
}

impl DbOp {
    /// The relation this operation targets.
    pub fn relation(&self) -> &str {
        match self {
            DbOp::Insert { relation, .. }
            | DbOp::Delete { relation, .. }
            | DbOp::Replace { relation, .. } => relation,
        }
    }

    /// True when this op is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, DbOp::Insert { .. })
    }

    /// True when this op is a deletion.
    pub fn is_delete(&self) -> bool {
        matches!(self, DbOp::Delete { .. })
    }

    /// True when this op is a replacement.
    pub fn is_replace(&self) -> bool {
        matches!(self, DbOp::Replace { .. })
    }
}

impl fmt::Display for DbOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbOp::Insert { relation, tuple } => write!(f, "INSERT {relation} {tuple}"),
            DbOp::Delete { relation, key } => write!(f, "DELETE {relation} {key}"),
            DbOp::Replace {
                relation,
                old_key,
                tuple,
            } => {
                write!(f, "REPLACE {relation} {old_key} -> {tuple}")
            }
        }
    }
}

/// Where a new journal subscription starts reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalStart {
    /// From the oldest transaction still retained in the journal. The WAL
    /// persister and the legacy [`Database::drain_committed`] path use
    /// this: anything another consumer has not yet retired is visible.
    Oldest,
    /// From the next transaction committed after subscribing. Materialized
    /// views use this: they are built from the current database state, so
    /// older retained entries are already reflected in them.
    Head,
}

/// What happens when a committed transaction would push the journal past
/// its cap (see [`Database::set_journal_cap`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOverflow {
    /// Reject the transaction with [`Error::JournalOverflow`] *before* any
    /// of its ops are applied, so the database and the journal stay in
    /// lockstep. Appropriate when losing a journal entry is worse than
    /// failing the write (e.g. ahead of a WAL persister).
    Error,
    /// Drop the oldest retained transaction to make room. Consumers whose
    /// cursor pointed at a dropped entry are marked *lapsed* — their next
    /// read reports how many transactions they missed so they can fall
    /// back to a full rebuild. Each drop bumps the
    /// `relational.journal.dropped` counter.
    DropOldest,
}

/// A bound on how many committed transactions the journal retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalCap {
    /// Maximum retained (not yet universally consumed) transactions.
    pub max_transactions: usize,
    /// Policy when a commit would exceed `max_transactions`.
    pub overflow: JournalOverflow,
}

impl JournalCap {
    /// A cap that rejects commits once `max_transactions` are retained.
    pub fn error(max_transactions: usize) -> Self {
        JournalCap {
            max_transactions,
            overflow: JournalOverflow::Error,
        }
    }

    /// A cap that evicts the oldest retained transaction on overflow.
    pub fn drop_oldest(max_transactions: usize) -> Self {
        JournalCap {
            max_transactions,
            overflow: JournalOverflow::DropOldest,
        }
    }
}

/// Handle identifying one journal consumer. Obtained from
/// [`Database::journal_subscribe`]; pass it to `journal_read` /
/// `journal_peek` / `journal_advance` / `journal_lag` /
/// `journal_unsubscribe`. Cursors are plain ids: cloning a `Database`
/// clones its consumers, so a cursor works on the clone too (each side
/// then advances independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JournalCursor(u64);

/// One consumer's view of the journal: the transactions committed since
/// its cursor, plus how many it irrecoverably missed.
#[derive(Debug, Clone, Default)]
pub struct JournalRead {
    /// Committed transactions in commit order, one `Arc` per transaction.
    /// Entries are shared, not copied: every consumer reads the same
    /// allocation.
    pub transactions: Vec<Arc<Vec<DbOp>>>,
    /// Transactions evicted past this cursor by a
    /// [`JournalOverflow::DropOldest`] cap since the last read. Non-zero
    /// means the delta stream has a hole: an incremental consumer must
    /// resynchronize from the database itself (full rebuild).
    pub lapsed: u64,
}

impl JournalRead {
    /// Total ops across all returned transactions.
    pub fn op_count(&self) -> usize {
        self.transactions.iter().map(|t| t.len()).sum()
    }
}

#[derive(Debug, Clone, Copy)]
struct Consumer {
    /// Sequence number of the next entry this consumer will read.
    next_seq: u64,
    /// Entries evicted before this consumer read them (reported and
    /// cleared on the next read/advance).
    lapsed: u64,
}

/// Multi-consumer committed-transaction journal. Entries are reference-
/// counted and retire only once every consumer's cursor has passed them,
/// so the WAL persister and any number of materialized views can share
/// one delta stream without stealing from each other.
#[derive(Debug, Clone, Default)]
struct CommitJournal {
    entries: VecDeque<Arc<Vec<DbOp>>>,
    /// Sequence number of `entries[0]`. Sequence numbers are assigned at
    /// commit and never reused, so a consumer's position is a plain `u64`.
    base_seq: u64,
    consumers: BTreeMap<u64, Consumer>,
    next_consumer: u64,
    /// Consumer backing the legacy [`Database::drain_committed`] API,
    /// created lazily on first drain.
    legacy: Option<u64>,
}

impl CommitJournal {
    fn head_seq(&self) -> u64 {
        self.base_seq + self.entries.len() as u64
    }

    fn subscribe(&mut self, start: JournalStart) -> JournalCursor {
        let id = self.next_consumer;
        self.next_consumer += 1;
        let next_seq = match start {
            JournalStart::Oldest => self.base_seq,
            JournalStart::Head => self.head_seq(),
        };
        self.consumers.insert(
            id,
            Consumer {
                next_seq,
                lapsed: 0,
            },
        );
        JournalCursor(id)
    }

    fn consumer(&self, cursor: JournalCursor) -> Result<&Consumer> {
        self.consumers
            .get(&cursor.0)
            .ok_or_else(|| unknown_cursor(cursor))
    }

    fn peek(&self, cursor: JournalCursor) -> Result<JournalRead> {
        let c = self.consumer(cursor)?;
        let skip = (c.next_seq - self.base_seq) as usize;
        Ok(JournalRead {
            transactions: self.entries.iter().skip(skip).cloned().collect(),
            lapsed: c.lapsed,
        })
    }

    /// Move `cursor` forward over up to `n` entries and clear its lapse
    /// counter, then retire entries every consumer has passed.
    fn advance(&mut self, cursor: JournalCursor, n: usize) -> Result<()> {
        let head = self.head_seq();
        let c = self
            .consumers
            .get_mut(&cursor.0)
            .ok_or_else(|| unknown_cursor(cursor))?;
        c.next_seq = (c.next_seq + n as u64).min(head);
        c.lapsed = 0;
        self.retire();
        Ok(())
    }

    fn unsubscribe(&mut self, cursor: JournalCursor) {
        self.consumers.remove(&cursor.0);
        if self.legacy == Some(cursor.0) {
            self.legacy = None;
        }
        self.retire();
    }

    /// Drop entries that every consumer has read. With no consumers at
    /// all, everything is retained (the enable-then-drain-later pattern).
    fn retire(&mut self) {
        let Some(min_next) = self.consumers.values().map(|c| c.next_seq).min() else {
            return;
        };
        while self.base_seq < min_next && !self.entries.is_empty() {
            self.entries.pop_front();
            self.base_seq += 1;
        }
    }

    /// Append one committed transaction, enforcing a drop-oldest cap.
    /// Returns the number of entries evicted.
    fn push(&mut self, ops: Vec<DbOp>, cap: Option<JournalCap>) -> u64 {
        self.entries.push_back(Arc::new(ops));
        match cap {
            Some(JournalCap {
                max_transactions,
                overflow: JournalOverflow::DropOldest,
            }) => self.evict_to(max_transactions),
            _ => 0,
        }
    }

    /// Evict oldest entries until at most `max` remain (floor 1), lapsing
    /// any consumer whose cursor pointed into the evicted range. Returns
    /// the number of entries dropped.
    fn evict_to(&mut self, max: usize) -> u64 {
        let mut dropped = 0u64;
        while self.entries.len() > max.max(1) {
            self.entries.pop_front();
            self.base_seq += 1;
            dropped += 1;
        }
        if dropped > 0 {
            for c in self.consumers.values_mut() {
                if c.next_seq < self.base_seq {
                    c.lapsed += self.base_seq - c.next_seq;
                    c.next_seq = self.base_seq;
                }
            }
        }
        dropped
    }
}

fn unknown_cursor(cursor: JournalCursor) -> Error {
    Error::Storage(format!(
        "unknown journal cursor #{}: the journal was disabled or the cursor unsubscribed",
        cursor.0
    ))
}

/// An in-memory relational database with versioned, structurally shared
/// storage.
///
/// Tables are held behind [`Arc`]s, so cloning a `Database` — and
/// therefore pinning a [`DbSnapshot`] — is O(relations), not O(tuples):
/// the clone shares every table with the original. Mutation goes through
/// [`Arc::make_mut`], which copies a table only when a snapshot still
/// shares it (copy-on-write at table granularity, secondary indexes
/// included). Each committed transaction bumps [`Database::version`] and
/// stamps the relations it touched, which is what first-committer-wins
/// conflict detection ([`Database::check_unchanged`]) validates against.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Arc<Table>>,
    /// Bumped on every structural change (relation created or dropped,
    /// index created, or a table borrowed mutably — the escape hatch
    /// through which callers may alter structure). Plain data mutations
    /// through [`Database::apply`] / [`Database::insert`] do not bump it,
    /// so prepared access plans keyed on the epoch survive updates.
    structure_epoch: u64,
    /// Committed-transaction counter: bumped once per successful
    /// transaction (single op, batch, or DDL), never by rollbacks — undo
    /// replay restores the prior state, so no new version exists.
    version: u64,
    /// Version at which each relation last changed (created, dropped, or
    /// touched by a committed transaction). A relation with no entry has
    /// not changed since version 0. Dropped relations keep their stamp so
    /// a conflict check against a vanished table still fires.
    table_stamps: BTreeMap<String, u64>,
    /// Committed-transaction journal (the durability and maintenance
    /// hook): when enabled, every *successful* transaction through the
    /// data path — a single [`Database::apply`]/[`Database::insert`], or a
    /// whole [`Database::apply_all`]/[`Database::apply_all_checked`]
    /// batch — is recorded as one op list. Rolled-back batches record
    /// nothing; undo ops replayed during a rollback are never journaled.
    /// The journal is multi-consumer: `vo-store` reads it through one
    /// cursor to frame WAL commit records while materialized views read
    /// the same entries through their own cursors.
    journal: Option<CommitJournal>,
    /// Retention bound applied while journaling (survives
    /// enable/disable cycles).
    journal_cap: Option<JournalCap>,
}

// Parallel instantiation shares `&Database` across worker threads; a
// future `Rc`/`RefCell`/raw-pointer field must fail to compile, not race.
const _: fn() = vo_exec::assert_send_sync::<Database>;

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a database with empty tables for every relation in `schema`.
    pub fn from_schema(schema: &DatabaseSchema) -> Self {
        let mut db = Database::new();
        for rel in schema.iter() {
            db.tables
                .insert(rel.name().to_owned(), Arc::new(Table::new(rel.clone())));
        }
        db
    }

    /// The current structure epoch. Cached plans that recorded an earlier
    /// epoch must be rebuilt before use.
    pub fn structure_epoch(&self) -> u64 {
        self.structure_epoch
    }

    /// The committed-transaction version: bumped once per successful
    /// transaction (and per DDL change), never by rollbacks. Two databases
    /// that report the same version *through a shared history* hold
    /// identical data.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The version at which `relation` last changed — 0 when it has never
    /// changed since this database was created. Dropped relations retain
    /// their final stamp.
    pub fn table_version(&self, relation: &str) -> u64 {
        self.table_stamps.get(relation).copied().unwrap_or(0)
    }

    /// First-committer-wins validation: verify that none of `relations`
    /// has changed since `base_version` (the version a snapshot or
    /// overlay was pinned at). Returns [`Error::Conflict`] naming the
    /// first concurrently-modified relation.
    pub fn check_unchanged<'a>(
        &self,
        relations: impl IntoIterator<Item = &'a str>,
        base_version: u64,
    ) -> Result<()> {
        for rel in relations {
            let head = self.table_version(rel);
            if head > base_version {
                count_conflict();
                return Err(Error::Conflict {
                    relation: rel.to_owned(),
                    base_version,
                    head_version: head,
                });
            }
        }
        Ok(())
    }

    /// Pin the current state as an immutable, lock-free-readable
    /// [`DbSnapshot`]. O(relations): every table is shared, not copied —
    /// later commits against this database copy-on-write only the tables
    /// they touch, leaving the snapshot untouched.
    pub fn snapshot(&self) -> DbSnapshot {
        count_snapshot_pinned();
        let mut pinned = self.clone();
        // a snapshot is a reader: it must not retain (or replay) journal
        // entries, and dropping the journal keeps the clone cheap
        pinned.journal = None;
        DbSnapshot {
            inner: Arc::new(pinned),
        }
    }

    /// Record one committed transaction: bump the version and stamp every
    /// relation the transaction touched. Called only after a transaction
    /// sticks — rollbacks restore the prior state and stamp nothing.
    fn commit_stamp(&mut self, ops: &[DbOp]) {
        if ops.is_empty() {
            return;
        }
        self.version += 1;
        count_commit();
        for op in ops {
            self.table_stamps
                .insert(op.relation().to_owned(), self.version);
        }
    }

    /// Stamp one relation as changed by a DDL-level mutation (create /
    /// drop / mutable borrow).
    fn structural_stamp(&mut self, relation: &str) {
        self.version += 1;
        self.table_stamps.insert(relation.to_owned(), self.version);
    }

    /// Re-pin the committed-transaction version after a snapshot restore:
    /// the version and every table stamp are set to `v`, discarding the
    /// bumps the rebuild itself produced. Recovery replay on top of the
    /// restored state then advances the version transaction by
    /// transaction, so a recovered database reports a version consistent
    /// with its durable history (0 for checkpoints predating versioning).
    pub(crate) fn restore_version(&mut self, v: u64) {
        self.version = v;
        for stamp in self.table_stamps.values_mut() {
            *stamp = v;
        }
    }

    /// Create a new empty relation.
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<()> {
        if self.tables.contains_key(schema.name()) {
            return Err(Error::DuplicateRelation(schema.name().to_owned()));
        }
        self.structure_epoch += 1;
        let name = schema.name().to_owned();
        self.tables
            .insert(name.clone(), Arc::new(Table::new(schema)));
        self.structural_stamp(&name);
        Ok(())
    }

    /// Install a fully built table (the bulk snapshot-restore path):
    /// same structural semantics as [`Database::create_relation`]
    /// followed by per-tuple inserts, without the per-row validation and
    /// index maintenance the table builder already performed.
    pub(crate) fn install_table(&mut self, table: Table) -> Result<()> {
        if self.tables.contains_key(table.schema().name()) {
            return Err(Error::DuplicateRelation(table.schema().name().to_owned()));
        }
        self.structure_epoch += 1;
        let name = table.schema().name().to_owned();
        self.tables.insert(name.clone(), Arc::new(table));
        self.structural_stamp(&name);
        Ok(())
    }

    /// Drop a relation and all its tuples.
    pub fn drop_relation(&mut self, name: &str) -> Result<()> {
        self.structure_epoch += 1;
        self.tables
            .remove(name)
            .map(|_| self.structural_stamp(name))
            .ok_or_else(|| Error::NoSuchRelation(name.to_owned()))
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .map(|t| t.as_ref())
            .ok_or_else(|| Error::NoSuchRelation(name.to_owned()))
    }

    /// Mutably borrow a table. Conservatively bumps the structure epoch
    /// and the version stamp: the caller may change anything through the
    /// borrow. Copy-on-write: a table still shared with a snapshot is
    /// copied first.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.structure_epoch += 1;
        self.version += 1;
        let version = self.version;
        match self.tables.get_mut(name) {
            Some(t) => {
                self.table_stamps.insert(name.to_owned(), version);
                Ok(Arc::make_mut(t))
            }
            None => Err(Error::NoSuchRelation(name.to_owned())),
        }
    }

    /// Mutable access for the data path (insert/delete/replace): does not
    /// bump the structure epoch, since tuple-level changes cannot
    /// invalidate a prepared access plan. Copy-on-write like
    /// [`Database::table_mut`]; version stamping happens per committed
    /// transaction in [`Database::commit_stamp`], not per op.
    fn data_table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .map(Arc::make_mut)
            .ok_or_else(|| Error::NoSuchRelation(name.to_owned()))
    }

    /// Create a secondary index over `attrs` of `relation`.
    pub fn create_index(&mut self, relation: &str, attrs: &[String]) -> Result<()> {
        self.structure_epoch += 1;
        self.data_table_mut(relation)?.create_index(attrs)
    }

    /// Create a secondary index over `attrs` of `relation` unless one
    /// already exists. Returns `true` when an index was built. Only a
    /// fresh build bumps the structure epoch.
    pub fn ensure_index(&mut self, relation: &str, attrs: &[String]) -> Result<bool> {
        if self.table(relation)?.has_index(attrs) {
            return Ok(false);
        }
        self.create_index(relation, attrs)?;
        Ok(true)
    }

    /// All relation names, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Reconstruct the schema catalog from the stored tables.
    pub fn schema(&self) -> DatabaseSchema {
        let mut cat = DatabaseSchema::new();
        for t in self.tables.values() {
            cat.add(t.schema().clone()).expect("table names are unique");
        }
        cat
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Start recording committed transactions (see the `journal` field).
    /// Idempotent: enabling an already-journaling database keeps its
    /// retained entries and consumers.
    pub fn enable_commit_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(CommitJournal::default());
        }
    }

    /// Stop recording committed transactions, discarding retained entries
    /// and invalidating every subscribed cursor.
    pub fn disable_commit_journal(&mut self) {
        self.journal = None;
    }

    /// True while committed transactions are being journaled.
    pub fn commit_journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Register a new journal consumer (enabling the journal if it was
    /// off) and return its cursor. Each consumer reads every committed
    /// transaction exactly once through [`Database::journal_read`];
    /// entries retire only when all consumers have passed them.
    pub fn journal_subscribe(&mut self, start: JournalStart) -> JournalCursor {
        self.enable_commit_journal();
        self.journal
            .as_mut()
            .expect("just enabled")
            .subscribe(start)
    }

    /// Remove a consumer. Entries it alone was holding back retire
    /// immediately. Unknown cursors are ignored.
    pub fn journal_unsubscribe(&mut self, cursor: JournalCursor) {
        if let Some(j) = &mut self.journal {
            j.unsubscribe(cursor);
        }
    }

    /// Read and consume everything committed since `cursor` last read.
    /// Equivalent to [`Database::journal_peek`] followed by
    /// [`Database::journal_advance`] over the returned transactions.
    pub fn journal_read(&mut self, cursor: JournalCursor) -> Result<JournalRead> {
        let read = self.journal_peek(cursor)?;
        self.journal_advance(cursor, read.transactions.len())?;
        Ok(read)
    }

    /// Read everything committed since `cursor` without consuming it: the
    /// cursor does not move and the lapse counter is not cleared. Pair
    /// with [`Database::journal_advance`] once the entries have been
    /// safely applied — a consumer with side effects (the WAL persister)
    /// uses this so a failed apply can be retried.
    pub fn journal_peek(&self, cursor: JournalCursor) -> Result<JournalRead> {
        self.journal
            .as_ref()
            .ok_or_else(|| unknown_cursor(cursor))?
            .peek(cursor)
    }

    /// Move `cursor` past `n` entries (saturating at the journal head) and
    /// clear its lapse counter. Entries every consumer has passed retire.
    pub fn journal_advance(&mut self, cursor: JournalCursor, n: usize) -> Result<()> {
        self.journal
            .as_mut()
            .ok_or_else(|| unknown_cursor(cursor))?
            .advance(cursor, n)
    }

    /// Number of committed transactions `cursor` has not yet read.
    pub fn journal_lag(&self, cursor: JournalCursor) -> Result<u64> {
        let j = self
            .journal
            .as_ref()
            .ok_or_else(|| unknown_cursor(cursor))?;
        Ok(j.head_seq() - j.consumer(cursor)?.next_seq)
    }

    /// Number of committed transactions evicted past `cursor` since its
    /// last read/advance — non-zero means the consumer's delta stream has
    /// a hole. Unlike [`Database::journal_peek`] this does not clone the
    /// pending entries, so health probes can poll it cheaply.
    pub fn journal_lapsed(&self, cursor: JournalCursor) -> Result<u64> {
        let j = self
            .journal
            .as_ref()
            .ok_or_else(|| unknown_cursor(cursor))?;
        Ok(j.consumer(cursor)?.lapsed)
    }

    /// Every live consumer's `(cursor, lag)` pair, in cursor order —
    /// the journal fan-out as one snapshot for health monitoring. Empty
    /// when journaling is off.
    pub fn journal_lags(&self) -> Vec<(JournalCursor, u64)> {
        let Some(j) = &self.journal else {
            return Vec::new();
        };
        let head = j.head_seq();
        j.consumers
            .iter()
            .map(|(&id, c)| (JournalCursor(id), head - c.next_seq))
            .collect()
    }

    /// Number of committed transactions currently retained (bounded by the
    /// slowest consumer, or by the cap).
    pub fn journal_retained(&self) -> usize {
        self.journal.as_ref().map_or(0, |j| j.entries.len())
    }

    /// Bound journal retention (or lift the bound with `None`). The cap
    /// survives enable/disable cycles. Shrinking under a
    /// [`JournalOverflow::DropOldest`] policy evicts immediately.
    pub fn set_journal_cap(&mut self, cap: Option<JournalCap>) {
        self.journal_cap = cap;
        if let (Some(j), Some(cap)) = (&mut self.journal, cap) {
            if cap.overflow == JournalOverflow::DropOldest {
                count_journal_dropped(j.evict_to(cap.max_transactions));
            }
        }
    }

    /// The current journal retention cap, if any.
    pub fn journal_cap(&self) -> Option<JournalCap> {
        self.journal_cap
    }

    /// Take every committed transaction recorded since the last drain
    /// (empty when journaling is off). Each entry is the op list of one
    /// successful transaction, in commit order.
    ///
    /// Legacy single-consumer API, kept for the enable-then-drain pattern:
    /// internally it reads through its own lazily-created cursor, so
    /// draining no longer steals entries from other consumers (the WAL
    /// persister, materialized views) — they each still see everything.
    pub fn drain_committed(&mut self) -> Vec<Vec<DbOp>> {
        let Some(j) = &mut self.journal else {
            return Vec::new();
        };
        let cursor = match j.legacy {
            Some(id) => JournalCursor(id),
            None => {
                let c = j.subscribe(JournalStart::Oldest);
                j.legacy = Some(c.0);
                c
            }
        };
        let read = j.peek(cursor).expect("legacy cursor exists");
        j.advance(cursor, read.transactions.len())
            .expect("legacy cursor exists");
        read.transactions
            .into_iter()
            .map(|tx| Arc::try_unwrap(tx).unwrap_or_else(|a| (*a).clone()))
            .collect()
    }

    /// Reject a would-be transaction while the journal is full under the
    /// [`JournalOverflow::Error`] policy. Checked *before* any op applies
    /// so a rejected transaction leaves no trace.
    fn journal_admit(&self) -> Result<()> {
        let (Some(j), Some(cap)) = (&self.journal, self.journal_cap) else {
            return Ok(());
        };
        if cap.overflow == JournalOverflow::Error && j.entries.len() >= cap.max_transactions.max(1)
        {
            return Err(Error::JournalOverflow {
                capacity: cap.max_transactions,
            });
        }
        Ok(())
    }

    fn journal_commit(&mut self, ops: Vec<DbOp>) {
        let cap = self.journal_cap;
        if let Some(j) = &mut self.journal {
            if !ops.is_empty() {
                let dropped = j.push(ops, cap);
                count_journal_dropped(dropped);
            }
        }
    }

    /// Convenience: insert a tuple built from raw values.
    pub fn insert(&mut self, relation: &str, values: Vec<crate::value::Value>) -> Result<()> {
        let tuple = Tuple::new(self.table(relation)?.schema(), values)?;
        self.apply(&DbOp::Insert {
            relation: relation.to_owned(),
            tuple,
        })
        .map(|_| ())
    }

    /// Apply one op as its own committed transaction, returning the op
    /// that undoes it.
    pub fn apply(&mut self, op: &DbOp) -> Result<DbOp> {
        self.journal_admit()?;
        let undo = self.apply_inner(op)?;
        self.commit_stamp(std::slice::from_ref(op));
        self.journal_commit(vec![op.clone()]);
        Ok(undo)
    }

    /// Apply one op without touching the commit journal — the primitive
    /// under both [`Database::apply`] and the batch paths, and the path
    /// rollbacks take so undo ops are never journaled.
    fn apply_inner(&mut self, op: &DbOp) -> Result<DbOp> {
        match op {
            DbOp::Insert { relation, tuple } => {
                let table = self.data_table_mut(relation)?;
                let key = tuple.key(table.schema());
                table.insert(tuple.clone())?;
                Ok(DbOp::Delete {
                    relation: relation.clone(),
                    key,
                })
            }
            DbOp::Delete { relation, key } => {
                let table = self.data_table_mut(relation)?;
                let old = table.delete(key)?;
                Ok(DbOp::Insert {
                    relation: relation.clone(),
                    tuple: old,
                })
            }
            DbOp::Replace {
                relation,
                old_key,
                tuple,
            } => {
                let table = self.data_table_mut(relation)?;
                let new_key = tuple.key(table.schema());
                let old = table.replace(old_key, tuple.clone())?;
                Ok(DbOp::Replace {
                    relation: relation.clone(),
                    old_key: new_key,
                    tuple: old,
                })
            }
        }
    }

    /// Apply a batch of ops transactionally: if any op fails, every
    /// already-applied op is undone (in reverse order) and the error is
    /// wrapped in [`Error::Rolledback`].
    pub fn apply_all(&mut self, ops: &[DbOp]) -> Result<()> {
        if !ops.is_empty() {
            self.journal_admit()?;
        }
        let mut undo: Vec<DbOp> = Vec::with_capacity(ops.len());
        for op in ops {
            match self.apply_inner(op) {
                Ok(u) => undo.push(u),
                Err(e) => {
                    for u in undo.iter().rev() {
                        self.apply_inner(u)
                            .expect("undo of a just-applied op must succeed");
                    }
                    return Err(Error::Rolledback(Box::new(e)));
                }
            }
        }
        self.commit_stamp(ops);
        self.journal_commit(ops.to_vec());
        Ok(())
    }

    /// Apply a batch and then run `check`; if the check fails, roll the
    /// whole batch back. This is how global-integrity validation vetoes a
    /// translated update (paper §5: "the transaction cannot be completed
    /// and has to be rolled back").
    pub fn apply_all_checked(
        &mut self,
        ops: &[DbOp],
        check: impl FnOnce(&Database) -> Result<()>,
    ) -> Result<()> {
        if !ops.is_empty() {
            self.journal_admit()?;
        }
        let mut undo: Vec<DbOp> = Vec::with_capacity(ops.len());
        for op in ops {
            match self.apply_inner(op) {
                Ok(u) => undo.push(u),
                Err(e) => {
                    for u in undo.iter().rev() {
                        self.apply_inner(u)
                            .expect("undo of a just-applied op must succeed");
                    }
                    return Err(Error::Rolledback(Box::new(e)));
                }
            }
        }
        if let Err(e) = check(self) {
            for u in undo.iter().rev() {
                self.apply_inner(u)
                    .expect("undo of a just-applied op must succeed");
            }
            return Err(Error::Rolledback(Box::new(e)));
        }
        self.commit_stamp(ops);
        self.journal_commit(ops.to_vec());
        Ok(())
    }
}

/// An immutable, pinned view of a [`Database`] at one committed version.
///
/// Pinning is O(relations) — every table is structurally shared with the
/// live database (see [`Database::snapshot`]). The handle is `Send +
/// Sync` and readable with no lock held: any number of threads can
/// instantiate, query, and scan through it while writers keep committing
/// against the head. It dereferences to [`Database`], so every read API
/// (including the [`DbRead`](crate::overlay::DbRead) trait) works on it
/// unchanged.
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    inner: Arc<Database>,
}

// Session readers hold snapshots across worker threads.
const _: fn() = vo_exec::assert_send_sync::<DbSnapshot>;

impl DbSnapshot {
    /// The committed version this snapshot pins.
    pub fn version(&self) -> u64 {
        self.inner.version
    }

    /// The pinned database (also available through `Deref`).
    pub fn database(&self) -> &Database {
        &self.inner
    }
}

impl Deref for DbSnapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeDef;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let mut d = Database::new();
        d.create_relation(
            RelationSchema::new(
                "DEPARTMENT",
                vec![AttributeDef::required("dept_name", DataType::Text)],
                &["dept_name"],
            )
            .unwrap(),
        )
        .unwrap();
        d.create_relation(
            RelationSchema::new(
                "COURSES",
                vec![
                    AttributeDef::required("course_id", DataType::Text),
                    AttributeDef::required("dept_name", DataType::Text),
                ],
                &["course_id"],
            )
            .unwrap(),
        )
        .unwrap();
        d
    }

    #[test]
    fn create_and_drop() {
        let mut d = db();
        assert_eq!(d.relation_names(), vec!["COURSES", "DEPARTMENT"]);
        d.drop_relation("COURSES").unwrap();
        assert!(matches!(d.table("COURSES"), Err(Error::NoSuchRelation(_))));
        assert!(matches!(
            d.drop_relation("COURSES"),
            Err(Error::NoSuchRelation(_))
        ));
    }

    #[test]
    fn apply_returns_inverse() {
        let mut d = db();
        let schema = d.table("DEPARTMENT").unwrap().schema().clone();
        let t = Tuple::new(&schema, vec!["CS".into()]).unwrap();
        let ins = DbOp::Insert {
            relation: "DEPARTMENT".into(),
            tuple: t,
        };
        let undo = d.apply(&ins).unwrap();
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 1);
        d.apply(&undo).unwrap();
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 0);
    }

    #[test]
    fn replace_inverse_restores_original() {
        let mut d = db();
        d.insert("COURSES", vec!["CS345".into(), "CS".into()])
            .unwrap();
        let schema = d.table("COURSES").unwrap().schema().clone();
        let newt = Tuple::new(&schema, vec!["EES345".into(), "EES".into()]).unwrap();
        let rep = DbOp::Replace {
            relation: "COURSES".into(),
            old_key: Key::single("CS345"),
            tuple: newt,
        };
        let undo = d.apply(&rep).unwrap();
        assert!(d
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("EES345")));
        d.apply(&undo).unwrap();
        let t = d
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        assert_eq!(t.get(1), &Value::text("CS"));
    }

    #[test]
    fn batch_rolls_back_on_failure() {
        let mut d = db();
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        let dept = d.table("DEPARTMENT").unwrap().schema().clone();
        let ops = vec![
            DbOp::Insert {
                relation: "DEPARTMENT".into(),
                tuple: Tuple::new(&dept, vec!["EE".into()]).unwrap(),
            },
            // fails: duplicate key
            DbOp::Insert {
                relation: "DEPARTMENT".into(),
                tuple: Tuple::new(&dept, vec!["CS".into()]).unwrap(),
            },
        ];
        let err = d.apply_all(&ops).unwrap_err();
        assert!(matches!(err, Error::Rolledback(_)));
        // EE insert was rolled back
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 1);
    }

    #[test]
    fn checked_batch_rolls_back_on_veto() {
        let mut d = db();
        let dept = d.table("DEPARTMENT").unwrap().schema().clone();
        let ops = vec![DbOp::Insert {
            relation: "DEPARTMENT".into(),
            tuple: Tuple::new(&dept, vec!["EE".into()]).unwrap(),
        }];
        let err = d
            .apply_all_checked(&ops, |_| Err(Error::ConstraintViolation("vetoed".into())))
            .unwrap_err();
        assert!(matches!(err, Error::Rolledback(_)));
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 0);
        // and succeeds when the check passes
        d.apply_all_checked(&ops, |_| Ok(())).unwrap();
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 1);
    }

    #[test]
    fn schema_roundtrip() {
        let d = db();
        let cat = d.schema();
        assert!(cat.contains("COURSES"));
        assert!(cat.contains("DEPARTMENT"));
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn total_tuples_counts_all_relations() {
        let mut d = db();
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        d.insert("COURSES", vec!["CS345".into(), "CS".into()])
            .unwrap();
        d.insert("COURSES", vec!["CS346".into(), "CS".into()])
            .unwrap();
        assert_eq!(d.total_tuples(), 3);
    }

    #[test]
    fn commit_journal_records_only_committed_transactions() {
        let mut d = db();
        // nothing is recorded while the journal is off
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        d.enable_commit_journal();
        assert!(d.commit_journal_enabled());
        assert!(d.drain_committed().is_empty());

        // a single-op transaction
        d.insert("DEPARTMENT", vec!["EE".into()]).unwrap();
        // a committed batch is one journal entry
        let courses = d.table("COURSES").unwrap().schema().clone();
        let batch = vec![
            DbOp::Insert {
                relation: "COURSES".into(),
                tuple: Tuple::new(&courses, vec!["CS345".into(), "CS".into()]).unwrap(),
            },
            DbOp::Insert {
                relation: "COURSES".into(),
                tuple: Tuple::new(&courses, vec!["EE282".into(), "EE".into()]).unwrap(),
            },
        ];
        d.apply_all(&batch).unwrap();
        // a rolled-back batch records nothing (duplicate key fails)
        let dept = d.table("DEPARTMENT").unwrap().schema().clone();
        let bad = vec![
            DbOp::Insert {
                relation: "DEPARTMENT".into(),
                tuple: Tuple::new(&dept, vec!["ME".into()]).unwrap(),
            },
            DbOp::Insert {
                relation: "DEPARTMENT".into(),
                tuple: Tuple::new(&dept, vec!["CS".into()]).unwrap(),
            },
        ];
        assert!(d.apply_all(&bad).is_err());
        // a vetoed checked batch records nothing either
        let ok = vec![DbOp::Insert {
            relation: "DEPARTMENT".into(),
            tuple: Tuple::new(&dept, vec!["ME".into()]).unwrap(),
        }];
        assert!(d
            .apply_all_checked(&ok, |_| Err(Error::ConstraintViolation("veto".into())))
            .is_err());

        let txs = d.drain_committed();
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[0].len(), 1);
        assert_eq!(txs[1], batch);
        // drained: the journal is empty again but still enabled
        assert!(d.drain_committed().is_empty());
        assert!(d.commit_journal_enabled());
        d.disable_commit_journal();
        d.insert("DEPARTMENT", vec!["BIO".into()]).unwrap();
        assert!(d.drain_committed().is_empty());
    }

    fn dept_insert(d: &Database, name: &str) -> DbOp {
        let schema = d.table("DEPARTMENT").unwrap().schema().clone();
        DbOp::Insert {
            relation: "DEPARTMENT".into(),
            tuple: Tuple::new(&schema, vec![name.into()]).unwrap(),
        }
    }

    #[test]
    fn journal_fans_out_to_independent_cursors() {
        let mut d = db();
        let a = d.journal_subscribe(JournalStart::Oldest);
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        // a consumer subscribed at the head sees only later commits
        let b = d.journal_subscribe(JournalStart::Head);
        d.insert("DEPARTMENT", vec!["EE".into()]).unwrap();

        // both entries retained until every consumer passes them
        assert_eq!(d.journal_retained(), 2);
        let ra = d.journal_read(a).unwrap();
        assert_eq!(ra.transactions.len(), 2);
        assert_eq!(ra.lapsed, 0);
        assert_eq!(ra.op_count(), 2);
        // b still holds the second entry back
        assert_eq!(d.journal_retained(), 1);
        assert_eq!(d.journal_lag(b).unwrap(), 1);
        let rb = d.journal_read(b).unwrap();
        assert_eq!(rb.transactions.len(), 1);
        assert_eq!(d.journal_retained(), 0);
        assert_eq!(d.journal_lag(a).unwrap(), 0);
    }

    #[test]
    fn journal_peek_does_not_consume() {
        let mut d = db();
        let c = d.journal_subscribe(JournalStart::Oldest);
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        assert_eq!(d.journal_peek(c).unwrap().transactions.len(), 1);
        assert_eq!(d.journal_peek(c).unwrap().transactions.len(), 1);
        d.journal_advance(c, 1).unwrap();
        assert!(d.journal_peek(c).unwrap().transactions.is_empty());
        assert_eq!(d.journal_retained(), 0);
    }

    #[test]
    fn drain_no_longer_steals_from_other_consumers() {
        let mut d = db();
        let wal = d.journal_subscribe(JournalStart::Oldest);
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        // a user drain takes its own copy...
        let drained = d.drain_committed();
        assert_eq!(drained.len(), 1);
        // ...but the WAL cursor still sees the transaction
        let r = d.journal_read(wal).unwrap();
        assert_eq!(r.transactions.len(), 1);
        assert_eq!(*r.transactions[0], drained[0]);
        // and the legacy cursor keeps working incrementally
        d.insert("DEPARTMENT", vec!["EE".into()]).unwrap();
        assert_eq!(d.drain_committed().len(), 1);
    }

    #[test]
    fn unsubscribe_releases_retained_entries() {
        let mut d = db();
        let slow = d.journal_subscribe(JournalStart::Oldest);
        let fast = d.journal_subscribe(JournalStart::Oldest);
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        d.journal_read(fast).unwrap();
        assert_eq!(d.journal_retained(), 1);
        d.journal_unsubscribe(slow);
        assert_eq!(d.journal_retained(), 0);
        assert!(d.journal_read(slow).is_err());
    }

    #[test]
    fn drop_oldest_cap_lapses_slow_consumers() {
        let mut d = db();
        d.set_journal_cap(Some(JournalCap::drop_oldest(2)));
        let c = d.journal_subscribe(JournalStart::Oldest);
        for name in ["A", "B", "C", "D"] {
            d.insert("DEPARTMENT", vec![name.into()]).unwrap();
        }
        assert_eq!(d.journal_retained(), 2);
        let r = d.journal_read(c).unwrap();
        assert_eq!(r.lapsed, 2, "two entries evicted past the cursor");
        assert_eq!(r.transactions.len(), 2);
        // after a read the consumer is caught up: no further lapse
        d.insert("DEPARTMENT", vec!["E".into()]).unwrap();
        let r = d.journal_read(c).unwrap();
        assert_eq!(r.lapsed, 0);
        assert_eq!(r.transactions.len(), 1);
    }

    #[test]
    fn error_cap_rejects_before_applying() {
        let mut d = db();
        d.enable_commit_journal();
        d.set_journal_cap(Some(JournalCap::error(1)));
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        // journal holds 1 entry: the next transaction must be rejected
        // without touching the table
        let err = d.apply_all(&[dept_insert(&d, "EE")]).unwrap_err();
        assert!(matches!(err, Error::JournalOverflow { capacity: 1 }));
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 1);
        assert_eq!(d.journal_retained(), 1);
        // draining frees capacity
        d.drain_committed();
        d.insert("DEPARTMENT", vec!["EE".into()]).unwrap();
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 2);
        // lifting the cap also frees it
        d.set_journal_cap(None);
        d.insert("DEPARTMENT", vec!["ME".into()]).unwrap();
        d.insert("DEPARTMENT", vec!["BIO".into()]).unwrap();
    }

    #[test]
    fn shrinking_drop_oldest_cap_evicts_immediately() {
        let mut d = db();
        d.enable_commit_journal();
        for name in ["A", "B", "C"] {
            d.insert("DEPARTMENT", vec![name.into()]).unwrap();
        }
        assert_eq!(d.journal_retained(), 3);
        d.set_journal_cap(Some(JournalCap::drop_oldest(1)));
        assert_eq!(d.journal_retained(), 1);
        assert_eq!(d.journal_cap(), Some(JournalCap::drop_oldest(1)));
    }

    #[test]
    fn versions_stamp_committed_transactions_only() {
        let mut d = db();
        let v0 = d.version();
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        assert_eq!(d.version(), v0 + 1);
        assert_eq!(d.table_version("DEPARTMENT"), v0 + 1);
        let courses_v = d.table_version("COURSES");
        // a rolled-back batch leaves the version untouched
        let dept = d.table("DEPARTMENT").unwrap().schema().clone();
        let bad = vec![
            DbOp::Insert {
                relation: "DEPARTMENT".into(),
                tuple: Tuple::new(&dept, vec!["EE".into()]).unwrap(),
            },
            DbOp::Insert {
                relation: "DEPARTMENT".into(),
                tuple: Tuple::new(&dept, vec!["CS".into()]).unwrap(),
            },
        ];
        assert!(d.apply_all(&bad).is_err());
        assert_eq!(d.version(), v0 + 1);
        // a vetoed checked batch too
        let ok = vec![dept_insert(&d, "EE")];
        assert!(d
            .apply_all_checked(&ok, |_| Err(Error::ConstraintViolation("veto".into())))
            .is_err());
        assert_eq!(d.version(), v0 + 1);
        // a batch stamps every touched relation with one version
        let courses = d.table("COURSES").unwrap().schema().clone();
        let batch = vec![
            dept_insert(&d, "EE"),
            DbOp::Insert {
                relation: "COURSES".into(),
                tuple: Tuple::new(&courses, vec!["CS345".into(), "CS".into()]).unwrap(),
            },
        ];
        d.apply_all(&batch).unwrap();
        assert_eq!(d.version(), v0 + 2);
        assert_eq!(d.table_version("DEPARTMENT"), v0 + 2);
        assert_eq!(d.table_version("COURSES"), v0 + 2);
        assert!(d.table_version("COURSES") > courses_v);
    }

    #[test]
    fn check_unchanged_detects_conflicts() {
        let mut d = db();
        let base = d.version();
        assert!(d.check_unchanged(["DEPARTMENT", "COURSES"], base).is_ok());
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        // COURSES untouched: no conflict
        assert!(d.check_unchanged(["COURSES"], base).is_ok());
        // DEPARTMENT changed: conflict naming the relation and versions
        let err = d.check_unchanged(["DEPARTMENT"], base).unwrap_err();
        match err {
            Error::Conflict {
                relation,
                base_version,
                head_version,
            } => {
                assert_eq!(relation, "DEPARTMENT");
                assert_eq!(base_version, base);
                assert_eq!(head_version, d.version());
            }
            other => panic!("expected Conflict, got {other:?}"),
        }
        // re-validated at the new head: clean again
        assert!(d.check_unchanged(["DEPARTMENT"], d.version()).is_ok());
    }

    #[test]
    fn snapshot_is_isolated_from_later_commits() {
        let mut d = db();
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        let snap = d.snapshot();
        let pinned_version = snap.version();
        assert_eq!(pinned_version, d.version());
        // commits against the head do not leak into the snapshot
        d.insert("DEPARTMENT", vec!["EE".into()]).unwrap();
        d.insert("COURSES", vec!["CS345".into(), "CS".into()])
            .unwrap();
        assert_eq!(snap.table("DEPARTMENT").unwrap().len(), 1);
        assert_eq!(snap.table("COURSES").unwrap().len(), 0);
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 2);
        assert_eq!(snap.version(), pinned_version);
        assert!(d.version() > pinned_version);
        // a snapshot clone pins the same state
        let snap2 = snap.clone();
        assert_eq!(snap2.version(), pinned_version);
        // structural changes are isolated too
        d.drop_relation("COURSES").unwrap();
        assert!(snap.table("COURSES").is_ok());
    }

    #[test]
    fn snapshot_shares_untouched_tables() {
        let mut d = db();
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        let snap = d.snapshot();
        // an untouched table is the same allocation in both
        assert!(std::ptr::eq(
            snap.table("COURSES").unwrap(),
            d.table("COURSES").unwrap()
        ));
        // touching DEPARTMENT copies it, leaving COURSES shared
        d.insert("DEPARTMENT", vec!["EE".into()]).unwrap();
        assert!(!std::ptr::eq(
            snap.table("DEPARTMENT").unwrap(),
            d.table("DEPARTMENT").unwrap()
        ));
        assert!(std::ptr::eq(
            snap.table("COURSES").unwrap(),
            d.table("COURSES").unwrap()
        ));
    }

    #[test]
    fn snapshot_reads_concurrently_while_writer_commits() {
        let mut d = db();
        d.insert("DEPARTMENT", vec!["D0".into()]).unwrap();
        let snap = d.snapshot();
        std::thread::scope(|scope| {
            let readers: Vec<_> = (0..4)
                .map(|_| {
                    let snap = snap.clone();
                    scope.spawn(move || {
                        let mut counts = Vec::new();
                        for _ in 0..50 {
                            counts.push(snap.table("DEPARTMENT").unwrap().len());
                        }
                        counts
                    })
                })
                .collect();
            for i in 1..50 {
                d.insert("DEPARTMENT", vec![format!("D{i}").into()])
                    .unwrap();
            }
            for r in readers {
                let counts = r.join().unwrap();
                assert!(
                    counts.iter().all(|&c| c == 1),
                    "snapshot reads must be stable"
                );
            }
        });
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 50);
    }

    #[test]
    fn table_mut_and_ddl_stamp_versions() {
        let mut d = db();
        let v0 = d.version();
        d.table_mut("DEPARTMENT").unwrap();
        assert!(d.version() > v0);
        assert_eq!(d.table_version("DEPARTMENT"), d.version());
        let v1 = d.version();
        d.drop_relation("COURSES").unwrap();
        assert!(d.version() > v1);
        assert_eq!(d.table_version("COURSES"), d.version());
        // the dropped relation's stamp keeps conflicting
        assert!(d.check_unchanged(["COURSES"], v1).is_err());
    }

    #[test]
    fn op_accessors() {
        let op = DbOp::Delete {
            relation: "X".into(),
            key: Key::single(1),
        };
        assert_eq!(op.relation(), "X");
        assert!(op.is_delete());
        assert!(!op.is_insert());
        assert!(!op.is_replace());
        assert!(op.to_string().starts_with("DELETE X"));
    }
}
