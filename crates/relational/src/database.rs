//! The database: a set of tables plus the `DbOp` mutation protocol.
//!
//! Every higher layer (structural integrity maintenance, Keller view
//! updates, view-object translation) expresses its effects as lists of
//! [`DbOp`] — insert / delete / replace on keyed relations — which are the
//! three database operations the paper's algorithms emit. Batches apply
//! transactionally: any failure rolls back every op already applied.

use crate::error::{Error, Result};
use crate::schema::{DatabaseSchema, RelationSchema};
use crate::table::Table;
use crate::tuple::{Key, Tuple};
use std::collections::BTreeMap;
use std::fmt;

/// One primitive mutation on a keyed relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbOp {
    /// Insert `tuple` into `relation`.
    Insert { relation: String, tuple: Tuple },
    /// Delete the tuple with `key` from `relation`.
    Delete { relation: String, key: Key },
    /// Replace the tuple at `old_key` in `relation` with `tuple` (whose key
    /// may differ — a key replacement).
    Replace {
        relation: String,
        old_key: Key,
        tuple: Tuple,
    },
}

impl DbOp {
    /// The relation this operation targets.
    pub fn relation(&self) -> &str {
        match self {
            DbOp::Insert { relation, .. }
            | DbOp::Delete { relation, .. }
            | DbOp::Replace { relation, .. } => relation,
        }
    }

    /// True when this op is an insertion.
    pub fn is_insert(&self) -> bool {
        matches!(self, DbOp::Insert { .. })
    }

    /// True when this op is a deletion.
    pub fn is_delete(&self) -> bool {
        matches!(self, DbOp::Delete { .. })
    }

    /// True when this op is a replacement.
    pub fn is_replace(&self) -> bool {
        matches!(self, DbOp::Replace { .. })
    }
}

impl fmt::Display for DbOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbOp::Insert { relation, tuple } => write!(f, "INSERT {relation} {tuple}"),
            DbOp::Delete { relation, key } => write!(f, "DELETE {relation} {key}"),
            DbOp::Replace {
                relation,
                old_key,
                tuple,
            } => {
                write!(f, "REPLACE {relation} {old_key} -> {tuple}")
            }
        }
    }
}

/// An in-memory relational database.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// Bumped on every structural change (relation created or dropped,
    /// index created, or a table borrowed mutably — the escape hatch
    /// through which callers may alter structure). Plain data mutations
    /// through [`Database::apply`] / [`Database::insert`] do not bump it,
    /// so prepared access plans keyed on the epoch survive updates.
    structure_epoch: u64,
    /// Committed-transaction journal (the durability hook): when enabled,
    /// every *successful* transaction through the data path — a single
    /// [`Database::apply`]/[`Database::insert`], or a whole
    /// [`Database::apply_all`]/[`Database::apply_all_checked`] batch — is
    /// recorded as one op list. Rolled-back batches record nothing; undo
    /// ops replayed during a rollback are never journaled. `vo-store`
    /// drains this journal to frame its write-ahead-log commit records.
    committed: Option<Vec<Vec<DbOp>>>,
}

// Parallel instantiation shares `&Database` across worker threads; a
// future `Rc`/`RefCell`/raw-pointer field must fail to compile, not race.
const _: fn() = vo_exec::assert_send_sync::<Database>;

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a database with empty tables for every relation in `schema`.
    pub fn from_schema(schema: &DatabaseSchema) -> Self {
        let mut db = Database::new();
        for rel in schema.iter() {
            db.tables
                .insert(rel.name().to_owned(), Table::new(rel.clone()));
        }
        db
    }

    /// The current structure epoch. Cached plans that recorded an earlier
    /// epoch must be rebuilt before use.
    pub fn structure_epoch(&self) -> u64 {
        self.structure_epoch
    }

    /// Create a new empty relation.
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<()> {
        if self.tables.contains_key(schema.name()) {
            return Err(Error::DuplicateRelation(schema.name().to_owned()));
        }
        self.structure_epoch += 1;
        self.tables
            .insert(schema.name().to_owned(), Table::new(schema));
        Ok(())
    }

    /// Drop a relation and all its tuples.
    pub fn drop_relation(&mut self, name: &str) -> Result<()> {
        self.structure_epoch += 1;
        self.tables
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::NoSuchRelation(name.to_owned()))
    }

    /// Borrow a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::NoSuchRelation(name.to_owned()))
    }

    /// Mutably borrow a table. Conservatively bumps the structure epoch:
    /// the caller may create or drop indexes through the borrow.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.structure_epoch += 1;
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchRelation(name.to_owned()))
    }

    /// Mutable access for the data path (insert/delete/replace): does not
    /// bump the structure epoch, since tuple-level changes cannot
    /// invalidate a prepared access plan.
    fn data_table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::NoSuchRelation(name.to_owned()))
    }

    /// Create a secondary index over `attrs` of `relation`.
    pub fn create_index(&mut self, relation: &str, attrs: &[String]) -> Result<()> {
        self.structure_epoch += 1;
        self.data_table_mut(relation)?.create_index(attrs)
    }

    /// Create a secondary index over `attrs` of `relation` unless one
    /// already exists. Returns `true` when an index was built. Only a
    /// fresh build bumps the structure epoch.
    pub fn ensure_index(&mut self, relation: &str, attrs: &[String]) -> Result<bool> {
        if self.table(relation)?.has_index(attrs) {
            return Ok(false);
        }
        self.create_index(relation, attrs)?;
        Ok(true)
    }

    /// All relation names, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Reconstruct the schema catalog from the stored tables.
    pub fn schema(&self) -> DatabaseSchema {
        let mut cat = DatabaseSchema::new();
        for t in self.tables.values() {
            cat.add(t.schema().clone()).expect("table names are unique");
        }
        cat
    }

    /// Total number of tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Start recording committed transactions (see the `committed` field).
    /// Idempotent: enabling an already-journaling database keeps any
    /// not-yet-drained entries.
    pub fn enable_commit_journal(&mut self) {
        if self.committed.is_none() {
            self.committed = Some(Vec::new());
        }
    }

    /// Stop recording committed transactions, discarding undrained entries.
    pub fn disable_commit_journal(&mut self) {
        self.committed = None;
    }

    /// True while committed transactions are being journaled.
    pub fn commit_journal_enabled(&self) -> bool {
        self.committed.is_some()
    }

    /// Take every committed transaction recorded since the last drain
    /// (empty when journaling is off). Each entry is the op list of one
    /// successful transaction, in commit order.
    pub fn drain_committed(&mut self) -> Vec<Vec<DbOp>> {
        match &mut self.committed {
            Some(j) => std::mem::take(j),
            None => Vec::new(),
        }
    }

    fn journal_commit(&mut self, ops: Vec<DbOp>) {
        if let Some(j) = &mut self.committed {
            if !ops.is_empty() {
                j.push(ops);
            }
        }
    }

    /// Convenience: insert a tuple built from raw values.
    pub fn insert(&mut self, relation: &str, values: Vec<crate::value::Value>) -> Result<()> {
        let tuple = Tuple::new(self.table(relation)?.schema(), values)?;
        self.apply(&DbOp::Insert {
            relation: relation.to_owned(),
            tuple,
        })
        .map(|_| ())
    }

    /// Apply one op as its own committed transaction, returning the op
    /// that undoes it.
    pub fn apply(&mut self, op: &DbOp) -> Result<DbOp> {
        let undo = self.apply_inner(op)?;
        self.journal_commit(vec![op.clone()]);
        Ok(undo)
    }

    /// Apply one op without touching the commit journal — the primitive
    /// under both [`Database::apply`] and the batch paths, and the path
    /// rollbacks take so undo ops are never journaled.
    fn apply_inner(&mut self, op: &DbOp) -> Result<DbOp> {
        match op {
            DbOp::Insert { relation, tuple } => {
                let table = self.data_table_mut(relation)?;
                let key = tuple.key(table.schema());
                table.insert(tuple.clone())?;
                Ok(DbOp::Delete {
                    relation: relation.clone(),
                    key,
                })
            }
            DbOp::Delete { relation, key } => {
                let table = self.data_table_mut(relation)?;
                let old = table.delete(key)?;
                Ok(DbOp::Insert {
                    relation: relation.clone(),
                    tuple: old,
                })
            }
            DbOp::Replace {
                relation,
                old_key,
                tuple,
            } => {
                let table = self.data_table_mut(relation)?;
                let new_key = tuple.key(table.schema());
                let old = table.replace(old_key, tuple.clone())?;
                Ok(DbOp::Replace {
                    relation: relation.clone(),
                    old_key: new_key,
                    tuple: old,
                })
            }
        }
    }

    /// Apply a batch of ops transactionally: if any op fails, every
    /// already-applied op is undone (in reverse order) and the error is
    /// wrapped in [`Error::Rolledback`].
    pub fn apply_all(&mut self, ops: &[DbOp]) -> Result<()> {
        let mut undo: Vec<DbOp> = Vec::with_capacity(ops.len());
        for op in ops {
            match self.apply_inner(op) {
                Ok(u) => undo.push(u),
                Err(e) => {
                    for u in undo.iter().rev() {
                        self.apply_inner(u)
                            .expect("undo of a just-applied op must succeed");
                    }
                    return Err(Error::Rolledback(Box::new(e)));
                }
            }
        }
        self.journal_commit(ops.to_vec());
        Ok(())
    }

    /// Apply a batch and then run `check`; if the check fails, roll the
    /// whole batch back. This is how global-integrity validation vetoes a
    /// translated update (paper §5: "the transaction cannot be completed
    /// and has to be rolled back").
    pub fn apply_all_checked(
        &mut self,
        ops: &[DbOp],
        check: impl FnOnce(&Database) -> Result<()>,
    ) -> Result<()> {
        let mut undo: Vec<DbOp> = Vec::with_capacity(ops.len());
        for op in ops {
            match self.apply_inner(op) {
                Ok(u) => undo.push(u),
                Err(e) => {
                    for u in undo.iter().rev() {
                        self.apply_inner(u)
                            .expect("undo of a just-applied op must succeed");
                    }
                    return Err(Error::Rolledback(Box::new(e)));
                }
            }
        }
        if let Err(e) = check(self) {
            for u in undo.iter().rev() {
                self.apply_inner(u)
                    .expect("undo of a just-applied op must succeed");
            }
            return Err(Error::Rolledback(Box::new(e)));
        }
        self.journal_commit(ops.to_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeDef;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let mut d = Database::new();
        d.create_relation(
            RelationSchema::new(
                "DEPARTMENT",
                vec![AttributeDef::required("dept_name", DataType::Text)],
                &["dept_name"],
            )
            .unwrap(),
        )
        .unwrap();
        d.create_relation(
            RelationSchema::new(
                "COURSES",
                vec![
                    AttributeDef::required("course_id", DataType::Text),
                    AttributeDef::required("dept_name", DataType::Text),
                ],
                &["course_id"],
            )
            .unwrap(),
        )
        .unwrap();
        d
    }

    #[test]
    fn create_and_drop() {
        let mut d = db();
        assert_eq!(d.relation_names(), vec!["COURSES", "DEPARTMENT"]);
        d.drop_relation("COURSES").unwrap();
        assert!(matches!(d.table("COURSES"), Err(Error::NoSuchRelation(_))));
        assert!(matches!(
            d.drop_relation("COURSES"),
            Err(Error::NoSuchRelation(_))
        ));
    }

    #[test]
    fn apply_returns_inverse() {
        let mut d = db();
        let schema = d.table("DEPARTMENT").unwrap().schema().clone();
        let t = Tuple::new(&schema, vec!["CS".into()]).unwrap();
        let ins = DbOp::Insert {
            relation: "DEPARTMENT".into(),
            tuple: t,
        };
        let undo = d.apply(&ins).unwrap();
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 1);
        d.apply(&undo).unwrap();
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 0);
    }

    #[test]
    fn replace_inverse_restores_original() {
        let mut d = db();
        d.insert("COURSES", vec!["CS345".into(), "CS".into()])
            .unwrap();
        let schema = d.table("COURSES").unwrap().schema().clone();
        let newt = Tuple::new(&schema, vec!["EES345".into(), "EES".into()]).unwrap();
        let rep = DbOp::Replace {
            relation: "COURSES".into(),
            old_key: Key::single("CS345"),
            tuple: newt,
        };
        let undo = d.apply(&rep).unwrap();
        assert!(d
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("EES345")));
        d.apply(&undo).unwrap();
        let t = d
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        assert_eq!(t.get(1), &Value::text("CS"));
    }

    #[test]
    fn batch_rolls_back_on_failure() {
        let mut d = db();
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        let dept = d.table("DEPARTMENT").unwrap().schema().clone();
        let ops = vec![
            DbOp::Insert {
                relation: "DEPARTMENT".into(),
                tuple: Tuple::new(&dept, vec!["EE".into()]).unwrap(),
            },
            // fails: duplicate key
            DbOp::Insert {
                relation: "DEPARTMENT".into(),
                tuple: Tuple::new(&dept, vec!["CS".into()]).unwrap(),
            },
        ];
        let err = d.apply_all(&ops).unwrap_err();
        assert!(matches!(err, Error::Rolledback(_)));
        // EE insert was rolled back
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 1);
    }

    #[test]
    fn checked_batch_rolls_back_on_veto() {
        let mut d = db();
        let dept = d.table("DEPARTMENT").unwrap().schema().clone();
        let ops = vec![DbOp::Insert {
            relation: "DEPARTMENT".into(),
            tuple: Tuple::new(&dept, vec!["EE".into()]).unwrap(),
        }];
        let err = d
            .apply_all_checked(&ops, |_| Err(Error::ConstraintViolation("vetoed".into())))
            .unwrap_err();
        assert!(matches!(err, Error::Rolledback(_)));
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 0);
        // and succeeds when the check passes
        d.apply_all_checked(&ops, |_| Ok(())).unwrap();
        assert_eq!(d.table("DEPARTMENT").unwrap().len(), 1);
    }

    #[test]
    fn schema_roundtrip() {
        let d = db();
        let cat = d.schema();
        assert!(cat.contains("COURSES"));
        assert!(cat.contains("DEPARTMENT"));
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn total_tuples_counts_all_relations() {
        let mut d = db();
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        d.insert("COURSES", vec!["CS345".into(), "CS".into()])
            .unwrap();
        d.insert("COURSES", vec!["CS346".into(), "CS".into()])
            .unwrap();
        assert_eq!(d.total_tuples(), 3);
    }

    #[test]
    fn commit_journal_records_only_committed_transactions() {
        let mut d = db();
        // nothing is recorded while the journal is off
        d.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        d.enable_commit_journal();
        assert!(d.commit_journal_enabled());
        assert!(d.drain_committed().is_empty());

        // a single-op transaction
        d.insert("DEPARTMENT", vec!["EE".into()]).unwrap();
        // a committed batch is one journal entry
        let courses = d.table("COURSES").unwrap().schema().clone();
        let batch = vec![
            DbOp::Insert {
                relation: "COURSES".into(),
                tuple: Tuple::new(&courses, vec!["CS345".into(), "CS".into()]).unwrap(),
            },
            DbOp::Insert {
                relation: "COURSES".into(),
                tuple: Tuple::new(&courses, vec!["EE282".into(), "EE".into()]).unwrap(),
            },
        ];
        d.apply_all(&batch).unwrap();
        // a rolled-back batch records nothing (duplicate key fails)
        let dept = d.table("DEPARTMENT").unwrap().schema().clone();
        let bad = vec![
            DbOp::Insert {
                relation: "DEPARTMENT".into(),
                tuple: Tuple::new(&dept, vec!["ME".into()]).unwrap(),
            },
            DbOp::Insert {
                relation: "DEPARTMENT".into(),
                tuple: Tuple::new(&dept, vec!["CS".into()]).unwrap(),
            },
        ];
        assert!(d.apply_all(&bad).is_err());
        // a vetoed checked batch records nothing either
        let ok = vec![DbOp::Insert {
            relation: "DEPARTMENT".into(),
            tuple: Tuple::new(&dept, vec!["ME".into()]).unwrap(),
        }];
        assert!(d
            .apply_all_checked(&ok, |_| Err(Error::ConstraintViolation("veto".into())))
            .is_err());

        let txs = d.drain_committed();
        assert_eq!(txs.len(), 2);
        assert_eq!(txs[0].len(), 1);
        assert_eq!(txs[1], batch);
        // drained: the journal is empty again but still enabled
        assert!(d.drain_committed().is_empty());
        assert!(d.commit_journal_enabled());
        d.disable_commit_journal();
        d.insert("DEPARTMENT", vec!["BIO".into()]).unwrap();
        assert!(d.drain_committed().is_empty());
    }

    #[test]
    fn op_accessors() {
        let op = DbOp::Delete {
            relation: "X".into(),
            key: Key::single(1),
        };
        assert_eq!(op.relation(), "X");
        assert!(op.is_delete());
        assert!(!op.is_insert());
        assert!(!op.is_replace());
        assert!(op.to_string().starts_with("DELETE X"));
    }
}
