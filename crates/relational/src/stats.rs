//! Lightweight global instrumentation counters for the access paths.
//!
//! The instantiation engine and the experiment binaries need to know *how*
//! tables were accessed — index probe vs. full-scan fallback, hash builds,
//! join rows produced — to prove that batched instantiation never silently
//! degrades to scans. The counters live in the [`vo_obs::metrics`]
//! registry (names `relational.*`), so they show up in registry snapshots
//! and JSON exports alongside every other metric; the handles interned
//! here keep the increment cost identical to a hand-rolled relaxed atomic.
//! Call [`reset`] before a measured region and [`snapshot`] after.
//!
//! ## Concurrency contract (relaxed ordering)
//!
//! Every counter is an `AtomicU64` bumped with `Ordering::Relaxed` — the
//! parallel instantiation workers increment them concurrently with no
//! synchronization beyond the atomic itself. What that buys, and what it
//! doesn't:
//!
//! - **Per-counter monotonicity.** Increments are atomic read-modify-write
//!   ops, so no increment is ever lost and a single counter read through
//!   [`snapshot`] never goes backwards while only increments are running.
//! - **No cross-counter consistency.** [`snapshot`] reads each counter
//!   independently; a snapshot taken while workers run is not a consistent
//!   cut (it may see a join's `join_rows` but not yet its
//!   `instances_built`). Fences would not fix this — it is inherent to
//!   sampling live counters — so consumers must treat a live snapshot as
//!   approximate and take authoritative ones only at join points.
//! - **Resets race by design.** [`reset`] stores zeros; a concurrent
//!   worker may interleave increments between the individual stores.
//!   [`InstrumentationSnapshot::delta`] therefore saturates instead of
//!   underflowing, and measured regions should quiesce workers (join
//!   them) before resetting or delta-ing.

use std::sync::OnceLock;
use vo_obs::metrics::{self, Counter};

fn index_probes() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("relational.index_probes"))
}

fn fallback_scans() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("relational.fallback_scans"))
}

fn hash_builds() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("relational.hash_builds"))
}

fn join_rows() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("relational.join_rows"))
}

fn instances_built() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("relational.instances_built"))
}

fn overlay_created() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("translate.overlay_created"))
}

fn overlay_reads() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("translate.overlay_reads"))
}

fn snapshot_avoided() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("translate.snapshot_avoided"))
}

fn journal_dropped() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("relational.journal.dropped"))
}

fn commits() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("relational.commits"))
}

fn conflicts() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("relational.conflicts"))
}

fn snapshots_pinned() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("relational.snapshots_pinned"))
}

/// Record one lookup answered by a secondary (or primary) index.
pub fn count_index_probe() {
    index_probes().inc();
}

/// Record `n` index-answered lookups in one bump. The set-at-a-time
/// engine aggregates per frontier pass so parallel workers touch the
/// shared counter cache line once per step, not once per tuple.
pub fn count_index_probes(n: u64) {
    index_probes().add(n);
}

/// Record one lookup that fell back to a full relation scan.
pub fn count_fallback_scan() {
    fallback_scans().inc();
}

/// Record one hash-table build over a relation (set-at-a-time join pass).
pub fn count_hash_build() {
    hash_builds().inc();
}

/// Record `n` rows produced by a join step.
pub fn count_join_rows(n: u64) {
    join_rows().add(n);
}

/// Record `n` view-object instances materialized.
pub fn count_instances_built(n: u64) {
    instances_built().add(n);
}

/// Record one delta overlay ([`crate::overlay::DeltaDb`]) constructed over
/// a base database.
pub fn count_overlay_created() {
    overlay_created().inc();
}

/// Record one relation lookup answered through a delta overlay.
pub fn count_overlay_read() {
    overlay_reads().inc();
}

/// Record one translation run that read through an overlay instead of
/// cloning the base database (one avoided full snapshot).
pub fn count_snapshot_avoided() {
    snapshot_avoided().inc();
}

/// Record `n` commit-journal entries evicted by a drop-oldest cap before
/// every consumer read them. Not part of [`InstrumentationSnapshot`]
/// (which tracks the query/translation engine); read it from the obs
/// registry as `relational.journal.dropped`.
pub fn count_journal_dropped(n: u64) {
    if n > 0 {
        journal_dropped().add(n);
    }
}

/// Record one committed transaction (a version bump). Registry name
/// `relational.commits`; not part of [`InstrumentationSnapshot`].
pub fn count_commit() {
    commits().inc();
}

/// Record one first-committer-wins conflict (a prepared transaction
/// rejected because a relation it touched changed under it). Registry
/// name `relational.conflicts`; not part of [`InstrumentationSnapshot`].
pub fn count_conflict() {
    conflicts().inc();
}

/// Record one snapshot pinned ([`crate::database::Database::snapshot`]).
/// Registry name `relational.snapshots_pinned`; not part of
/// [`InstrumentationSnapshot`].
pub fn count_snapshot_pinned() {
    snapshots_pinned().inc();
}

/// A point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstrumentationSnapshot {
    /// Lookups answered by an index.
    pub index_probes: u64,
    /// Lookups that degraded to a full scan.
    pub fallback_scans: u64,
    /// Hash-table builds for set-at-a-time joins.
    pub hash_builds: u64,
    /// Total rows produced by join steps.
    pub join_rows: u64,
    /// View-object instances materialized.
    pub instances_built: u64,
    /// Delta overlays constructed for update translation.
    pub overlay_created: u64,
    /// Relation lookups answered through a delta overlay.
    pub overlay_reads: u64,
    /// Translation runs that avoided a full base-database clone.
    pub snapshot_avoided: u64,
}

impl InstrumentationSnapshot {
    /// Counter deltas between `self` (earlier) and `later`. Saturating: a
    /// concurrent [`reset`] between the two snapshots yields zeros rather
    /// than an underflow panic.
    pub fn delta(&self, later: &InstrumentationSnapshot) -> InstrumentationSnapshot {
        InstrumentationSnapshot {
            index_probes: later.index_probes.saturating_sub(self.index_probes),
            fallback_scans: later.fallback_scans.saturating_sub(self.fallback_scans),
            hash_builds: later.hash_builds.saturating_sub(self.hash_builds),
            join_rows: later.join_rows.saturating_sub(self.join_rows),
            instances_built: later.instances_built.saturating_sub(self.instances_built),
            overlay_created: later.overlay_created.saturating_sub(self.overlay_created),
            overlay_reads: later.overlay_reads.saturating_sub(self.overlay_reads),
            snapshot_avoided: later.snapshot_avoided.saturating_sub(self.snapshot_avoided),
        }
    }
}

impl std::fmt::Display for InstrumentationSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "index_probes={} fallback_scans={} hash_builds={} join_rows={} instances_built={} \
             overlay_created={} overlay_reads={} snapshot_avoided={}",
            self.index_probes,
            self.fallback_scans,
            self.hash_builds,
            self.join_rows,
            self.instances_built,
            self.overlay_created,
            self.overlay_reads,
            self.snapshot_avoided
        )
    }
}

/// Read all counters.
pub fn snapshot() -> InstrumentationSnapshot {
    InstrumentationSnapshot {
        index_probes: index_probes().get(),
        fallback_scans: fallback_scans().get(),
        hash_builds: hash_builds().get(),
        join_rows: join_rows().get(),
        instances_built: instances_built().get(),
        overlay_created: overlay_created().get(),
        overlay_reads: overlay_reads().get(),
        snapshot_avoided: snapshot_avoided().get(),
    }
}

/// Zero all counters. Tests that assert on absolute counter values should
/// prefer snapshot-delta arithmetic, since tests run concurrently.
pub fn reset() {
    index_probes().reset();
    fallback_scans().reset();
    hash_builds().reset();
    join_rows().reset();
    instances_built().reset();
    overlay_created().reset();
    overlay_reads().reset();
    snapshot_avoided().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        let before = snapshot();
        count_index_probe();
        count_fallback_scan();
        count_hash_build();
        count_join_rows(5);
        count_instances_built(2);
        let after = snapshot();
        let d = before.delta(&after);
        assert!(d.index_probes >= 1);
        assert!(d.fallback_scans >= 1);
        assert!(d.hash_builds >= 1);
        assert!(d.join_rows >= 5);
        assert!(d.instances_built >= 2);
        let line = d.to_string();
        assert!(line.contains("index_probes="));
    }

    #[test]
    fn counters_visible_in_obs_registry() {
        let before = vo_obs::metrics::counter("relational.index_probes").get();
        count_index_probe();
        let after = vo_obs::metrics::counter("relational.index_probes").get();
        assert!(after > before);
        assert!(vo_obs::metrics::snapshot_all()
            .counters
            .contains_key("relational.index_probes"));
    }

    #[test]
    fn counters_are_race_safe_under_concurrent_workers() {
        // Workers hammer the counters while the main thread samples; every
        // sampled value must be monotonically non-decreasing (relaxed
        // increments are atomic RMW ops — none may be lost), and after the
        // join the delta must account for every increment. Other tests in
        // this process may bump the same counters concurrently, so the
        // assertions are one-sided (>=).
        const WORKERS: usize = 4;
        const PER_WORKER: u64 = 10_000;
        let before = snapshot();
        std::thread::scope(|scope| {
            for _ in 0..WORKERS {
                scope.spawn(|| {
                    for _ in 0..PER_WORKER {
                        count_index_probe();
                        count_join_rows(3);
                    }
                });
            }
            let mut last = before;
            for _ in 0..100 {
                let now = snapshot();
                assert!(
                    now.index_probes >= last.index_probes,
                    "index_probes went backwards: {} -> {}",
                    last.index_probes,
                    now.index_probes
                );
                assert!(
                    now.join_rows >= last.join_rows,
                    "join_rows went backwards: {} -> {}",
                    last.join_rows,
                    now.join_rows
                );
                last = now;
            }
        });
        let d = before.delta(&snapshot());
        assert!(d.index_probes >= WORKERS as u64 * PER_WORKER);
        assert!(d.join_rows >= WORKERS as u64 * PER_WORKER * 3);
    }

    #[test]
    fn delta_saturates_across_concurrent_reset() {
        // A reset between the two snapshots makes `later` smaller than
        // `before`; the delta must clamp to zero, not underflow.
        let before = InstrumentationSnapshot {
            index_probes: 100,
            fallback_scans: 50,
            hash_builds: 10,
            join_rows: 1000,
            instances_built: 7,
            ..Default::default()
        };
        let later = InstrumentationSnapshot::default();
        let d = before.delta(&later);
        assert_eq!(d, InstrumentationSnapshot::default());
    }
}
