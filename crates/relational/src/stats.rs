//! Lightweight global instrumentation counters for the access paths.
//!
//! The instantiation engine and the experiment binaries need to know *how*
//! tables were accessed — index probe vs. full-scan fallback, hash builds,
//! join rows produced — to prove that batched instantiation never silently
//! degrades to scans. Counters are process-global relaxed atomics: cheap
//! enough to leave on permanently, precise enough for the `exp_amortize`
//! reports. Call [`reset`] before a measured region and [`snapshot`] after.

use std::sync::atomic::{AtomicU64, Ordering};

static INDEX_PROBES: AtomicU64 = AtomicU64::new(0);
static FALLBACK_SCANS: AtomicU64 = AtomicU64::new(0);
static HASH_BUILDS: AtomicU64 = AtomicU64::new(0);
static JOIN_ROWS: AtomicU64 = AtomicU64::new(0);
static INSTANCES_BUILT: AtomicU64 = AtomicU64::new(0);

/// Record one lookup answered by a secondary (or primary) index.
pub fn count_index_probe() {
    INDEX_PROBES.fetch_add(1, Ordering::Relaxed);
}

/// Record one lookup that fell back to a full relation scan.
pub fn count_fallback_scan() {
    FALLBACK_SCANS.fetch_add(1, Ordering::Relaxed);
}

/// Record one hash-table build over a relation (set-at-a-time join pass).
pub fn count_hash_build() {
    HASH_BUILDS.fetch_add(1, Ordering::Relaxed);
}

/// Record `n` rows produced by a join step.
pub fn count_join_rows(n: u64) {
    JOIN_ROWS.fetch_add(n, Ordering::Relaxed);
}

/// Record `n` view-object instances materialized.
pub fn count_instances_built(n: u64) {
    INSTANCES_BUILT.fetch_add(n, Ordering::Relaxed);
}

/// A point-in-time copy of all counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstrumentationSnapshot {
    /// Lookups answered by an index.
    pub index_probes: u64,
    /// Lookups that degraded to a full scan.
    pub fallback_scans: u64,
    /// Hash-table builds for set-at-a-time joins.
    pub hash_builds: u64,
    /// Total rows produced by join steps.
    pub join_rows: u64,
    /// View-object instances materialized.
    pub instances_built: u64,
}

impl InstrumentationSnapshot {
    /// Counter deltas between `self` (earlier) and `later`.
    pub fn delta(&self, later: &InstrumentationSnapshot) -> InstrumentationSnapshot {
        InstrumentationSnapshot {
            index_probes: later.index_probes - self.index_probes,
            fallback_scans: later.fallback_scans - self.fallback_scans,
            hash_builds: later.hash_builds - self.hash_builds,
            join_rows: later.join_rows - self.join_rows,
            instances_built: later.instances_built - self.instances_built,
        }
    }
}

impl std::fmt::Display for InstrumentationSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "index_probes={} fallback_scans={} hash_builds={} join_rows={} instances_built={}",
            self.index_probes,
            self.fallback_scans,
            self.hash_builds,
            self.join_rows,
            self.instances_built
        )
    }
}

/// Read all counters.
pub fn snapshot() -> InstrumentationSnapshot {
    InstrumentationSnapshot {
        index_probes: INDEX_PROBES.load(Ordering::Relaxed),
        fallback_scans: FALLBACK_SCANS.load(Ordering::Relaxed),
        hash_builds: HASH_BUILDS.load(Ordering::Relaxed),
        join_rows: JOIN_ROWS.load(Ordering::Relaxed),
        instances_built: INSTANCES_BUILT.load(Ordering::Relaxed),
    }
}

/// Zero all counters. Tests that assert on absolute counter values should
/// prefer snapshot-delta arithmetic, since tests run concurrently.
pub fn reset() {
    INDEX_PROBES.store(0, Ordering::Relaxed);
    FALLBACK_SCANS.store(0, Ordering::Relaxed);
    HASH_BUILDS.store(0, Ordering::Relaxed);
    JOIN_ROWS.store(0, Ordering::Relaxed);
    INSTANCES_BUILT.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_delta() {
        let before = snapshot();
        count_index_probe();
        count_fallback_scan();
        count_hash_build();
        count_join_rows(5);
        count_instances_built(2);
        let after = snapshot();
        let d = before.delta(&after);
        assert_eq!(d.index_probes, 1);
        assert_eq!(d.fallback_scans, 1);
        assert_eq!(d.hash_builds, 1);
        assert_eq!(d.join_rows, 5);
        assert_eq!(d.instances_built, 2);
        let line = d.to_string();
        assert!(line.contains("index_probes=1"));
    }
}
