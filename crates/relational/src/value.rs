//! Atomic values and their types.
//!
//! The engine supports the four scalar domains the paper's examples need
//! (integers, floats, text, booleans) plus SQL-style NULL. Values are
//! totally ordered and hashable so they can serve as key components; NULL
//! comparisons in *predicates* use three-valued logic (see
//! [`crate::predicate`]), while the total order here is only used for
//! storage and sorting, where `Null` sorts first and floats use IEEE total
//! ordering.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// The scalar type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A single atomic value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL (absence of a value).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// The type of this value, or `None` for NULL (which conforms to every
    /// nullable attribute).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// True when this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// True when this value conforms to `ty` (NULL conforms to all types).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match self.data_type() {
            None => true,
            Some(t) => t == ty,
        }
    }

    /// Convenience constructor for text values.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Extract as integer if possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract as float, widening integers.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extract as text if possible.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Extract as bool if possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank used to order values of different variants; NULL sorts first.
    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numerics compare with each other
            Value::Text(_) => 3,
        }
    }

    /// Compare two values numerically when both are numeric (Int/Float mix).
    fn numeric_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        if let Some(ord) = self.numeric_cmp(other) {
            return ord;
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            _ => self.variant_rank().cmp(&other.variant_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float hash through the same path when the float is
            // integral, so that Int(2) == Float(2.0) implies equal hashes.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(x) => {
                2u8.hash(state);
                x.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn type_conformance() {
        assert!(Value::Int(3).conforms_to(DataType::Int));
        assert!(!Value::Int(3).conforms_to(DataType::Text));
        assert!(Value::Null.conforms_to(DataType::Text));
        assert_eq!(Value::text("x").data_type(), Some(DataType::Text));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn total_order_across_variants() {
        let mut vs = [
            Value::text("b"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Float(0.5),
            Value::text("a"),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Float(0.5));
        assert_eq!(vs[3], Value::Int(1));
        assert_eq!(vs[4], Value::text("a"));
        assert_eq!(vs[5], Value::text("b"));
    }

    #[test]
    fn nan_is_orderable() {
        // total_cmp puts NaN above all other floats; crucially sorting does
        // not panic and NaN equals itself, so storage stays consistent.
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(1e308) < nan);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::text("hi").as_text(), Some("hi"));
        assert_eq!(Value::Bool(false).as_bool(), Some(false));
        assert_eq!(Value::text("hi").as_int(), None);
        assert!(Value::Null.is_null());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::text("a").to_string(), "'a'");
        assert_eq!(Value::Int(-4).to_string(), "-4");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from("s"), Value::text("s"));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
