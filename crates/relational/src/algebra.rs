//! Relational algebra: logical plans and their evaluator.
//!
//! Plans are composable trees evaluated against a [`Database`] into a
//! [`ResultSet`]. Joins are hash equi-joins; `Scan` yields columns
//! qualified as `relation.attribute` so multi-relation plans never collide,
//! and [`crate::predicate::resolve_column`] lets predicates use bare names
//! when unambiguous.

use crate::database::Database;
use crate::error::{Error, Result};
use crate::predicate::{resolve_column, Expr};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;
use vo_obs::profile::ProfileNode;
use vo_obs::trace;

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a base relation; columns come out as `relation.attribute`.
    Scan { relation: String },
    /// Keep rows where `pred` is definitely true.
    Select { input: Box<Plan>, pred: Expr },
    /// Keep (and reorder to) the named columns.
    Project {
        input: Box<Plan>,
        columns: Vec<String>,
    },
    /// Hash equi-join on pairs of column names `(left, right)`.
    Join {
        left: Box<Plan>,
        right: Box<Plan>,
        on: Vec<(String, String)>,
    },
    /// Rename columns via `(old, new)` pairs.
    Rename {
        input: Box<Plan>,
        mapping: Vec<(String, String)>,
    },
    /// Set union (schemas must have equal arity; columns taken from left).
    Union { left: Box<Plan>, right: Box<Plan> },
    /// Set difference (left minus right, positional).
    Difference { left: Box<Plan>, right: Box<Plan> },
    /// Cartesian product.
    Product { left: Box<Plan>, right: Box<Plan> },
    /// Sort by the named columns ascending.
    Sort { input: Box<Plan>, by: Vec<String> },
    /// Keep the first `n` rows.
    Limit { input: Box<Plan>, n: usize },
    /// Remove duplicate rows.
    Distinct { input: Box<Plan> },
}

impl Plan {
    /// Scan constructor.
    pub fn scan(relation: impl Into<String>) -> Plan {
        Plan::Scan {
            relation: relation.into(),
        }
    }

    /// Wrap in a selection.
    pub fn select(self, pred: Expr) -> Plan {
        Plan::Select {
            input: Box::new(self),
            pred,
        }
    }

    /// Wrap in a projection.
    pub fn project(self, columns: Vec<String>) -> Plan {
        Plan::Project {
            input: Box::new(self),
            columns,
        }
    }

    /// Join with another plan on `(left, right)` column pairs.
    pub fn join(self, right: Plan, on: Vec<(String, String)>) -> Plan {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
            on,
        }
    }

    /// Wrap in a rename.
    pub fn rename(self, mapping: Vec<(String, String)>) -> Plan {
        Plan::Rename {
            input: Box::new(self),
            mapping,
        }
    }

    /// Wrap in a sort.
    pub fn sort(self, by: Vec<String>) -> Plan {
        Plan::Sort {
            input: Box::new(self),
            by,
        }
    }

    /// Wrap in a limit.
    pub fn limit(self, n: usize) -> Plan {
        Plan::Limit {
            input: Box::new(self),
            n,
        }
    }

    /// Wrap in a distinct.
    pub fn distinct(self) -> Plan {
        Plan::Distinct {
            input: Box::new(self),
        }
    }

    /// Base relations referenced anywhere in the plan.
    pub fn relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_relations(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_relations<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Plan::Scan { relation } => out.push(relation),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Rename { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Distinct { input } => input.collect_relations(out),
            Plan::Join { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Difference { left, right }
            | Plan::Product { left, right } => {
                left.collect_relations(out);
                right.collect_relations(out);
            }
        }
    }

    /// Direct input plans, left to right (empty for leaves).
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } => Vec::new(),
            Plan::Select { input, .. }
            | Plan::Project { input, .. }
            | Plan::Rename { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Distinct { input } => vec![input],
            Plan::Join { left, right, .. }
            | Plan::Union { left, right }
            | Plan::Difference { left, right }
            | Plan::Product { left, right } => vec![left, right],
        }
    }

    /// This operator's label alone, without its inputs — the per-node form
    /// of [`Plan`]'s `Display` rendering, used by profiles.
    pub fn node_label(&self) -> String {
        match self {
            Plan::Scan { relation } => format!("Scan({relation})"),
            Plan::Select { pred, .. } => format!("Select[{pred}]"),
            Plan::Project { columns, .. } => format!("Project[{}]", columns.join(",")),
            Plan::Join { on, .. } => {
                let conds: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                format!("Join[{}]", conds.join(" AND "))
            }
            Plan::Rename { mapping, .. } => {
                let ms: Vec<String> = mapping.iter().map(|(o, n)| format!("{o}->{n}")).collect();
                format!("Rename[{}]", ms.join(","))
            }
            Plan::Union { .. } => "Union".to_owned(),
            Plan::Difference { .. } => "Diff".to_owned(),
            Plan::Product { .. } => "Product".to_owned(),
            Plan::Sort { by, .. } => format!("Sort[{}]", by.join(",")),
            Plan::Limit { n, .. } => format!("Limit[{n}]"),
            Plan::Distinct { .. } => "Distinct".to_owned(),
        }
    }

    /// The access path this operator takes, for profile labels; empty for
    /// operators that touch no table and build no lookup structure.
    pub fn access_label(&self) -> &'static str {
        match self {
            Plan::Scan { .. } => "table scan",
            Plan::Join { .. } => "hash join (build right)",
            _ => "",
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plan::Scan { relation } => write!(f, "Scan({relation})"),
            Plan::Select { input, pred } => write!(f, "Select[{pred}]({input})"),
            Plan::Project { input, columns } => {
                write!(f, "Project[{}]({input})", columns.join(","))
            }
            Plan::Join { left, right, on } => {
                let conds: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                write!(f, "Join[{}]({left}, {right})", conds.join(" AND "))
            }
            Plan::Rename { input, mapping } => {
                let ms: Vec<String> = mapping.iter().map(|(o, n)| format!("{o}->{n}")).collect();
                write!(f, "Rename[{}]({input})", ms.join(","))
            }
            Plan::Union { left, right } => write!(f, "Union({left}, {right})"),
            Plan::Difference { left, right } => write!(f, "Diff({left}, {right})"),
            Plan::Product { left, right } => write!(f, "Product({left}, {right})"),
            Plan::Sort { input, by } => write!(f, "Sort[{}]({input})", by.join(",")),
            Plan::Limit { input, n } => write!(f, "Limit[{n}]({input})"),
            Plan::Distinct { input } => write!(f, "Distinct({input})"),
        }
    }
}

/// A materialized query result: named columns and rows of values.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names (possibly qualified `rel.attr`).
    pub columns: Vec<String>,
    /// Rows, each with `columns.len()` values.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// An empty result with the given columns.
    pub fn empty(columns: Vec<String>) -> Self {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a (possibly bare) column name.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        resolve_column(&self.columns, name)
    }

    /// The value of `column` in row `row`.
    pub fn value(&self, row: usize, column: &str) -> Result<&Value> {
        let idx = self.column_index(column)?;
        Ok(&self.rows[row][idx])
    }

    /// Render as an aligned text table (for examples and experiments).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, c) in self.columns.iter().enumerate() {
            out.push_str(&format!("{:w$}  ", c, w = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.columns.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl Database {
    /// Evaluate a logical plan to a materialized result.
    ///
    /// When tracing is enabled every operator contributes a
    /// `relational.execute` span (nested to mirror the plan tree); when it
    /// is off the only cost over the raw evaluator is one relaxed atomic
    /// load per operator node.
    pub fn execute(&self, plan: &Plan) -> Result<ResultSet> {
        let mut sp = trace::span("relational.execute");
        let mut inputs = Vec::with_capacity(2);
        for child in plan.children() {
            inputs.push(self.execute(child)?);
        }
        let rs = self.apply_operator(plan, inputs)?;
        if sp.is_recording() {
            sp.field("op", vo_obs::json::Json::str(plan.node_label()));
            sp.field("rows_out", vo_obs::json::Json::Int(rs.len() as i64));
        }
        Ok(rs)
    }

    /// Evaluate a plan and return both its result and an operator-tree
    /// profile: per node, rows in/out, inclusive wall time, and the access
    /// path taken. This is the engine behind `EXPLAIN ANALYZE`.
    pub fn execute_profiled(&self, plan: &Plan) -> Result<(ResultSet, ProfileNode)> {
        let start = Instant::now();
        let mut inputs = Vec::with_capacity(2);
        let mut child_profiles = Vec::with_capacity(2);
        for child in plan.children() {
            let (rs, prof) = self.execute_profiled(child)?;
            inputs.push(rs);
            child_profiles.push(prof);
        }
        let rows_in: u64 = inputs.iter().map(|r| r.len() as u64).sum();
        let rs = self.apply_operator(plan, inputs)?;
        let mut node = ProfileNode::new(plan.node_label());
        node.access_path = plan.access_label().to_owned();
        node.rows_in = rows_in;
        node.rows_out = rs.len() as u64;
        node.set_elapsed(start.elapsed());
        node.children = child_profiles;
        Ok((rs, node))
    }

    /// Apply one operator to already-evaluated inputs (one [`ResultSet`]
    /// per entry of [`Plan::children`], in order).
    fn apply_operator(&self, plan: &Plan, mut inputs: Vec<ResultSet>) -> Result<ResultSet> {
        match plan {
            Plan::Scan { relation } => {
                let table = self.table(relation)?;
                let columns: Vec<String> = table
                    .schema()
                    .attributes()
                    .iter()
                    .map(|a| format!("{}.{}", relation, a.name))
                    .collect();
                let rows: Vec<Vec<Value>> = table.scan().map(|t| t.values().to_vec()).collect();
                Ok(ResultSet { columns, rows })
            }
            Plan::Select { pred, .. } => {
                let mut rs = inputs.pop().unwrap();
                let cols = rs.columns.clone();
                let mut err = None;
                rs.rows.retain(|row| {
                    if err.is_some() {
                        return false;
                    }
                    match pred.eval_truth(&cols, row) {
                        Ok(t) => t.is_true(),
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    }
                });
                match err {
                    Some(e) => Err(e),
                    None => Ok(rs),
                }
            }
            Plan::Project { columns, .. } => {
                let rs = inputs.pop().unwrap();
                let indices: Vec<usize> = columns
                    .iter()
                    .map(|c| rs.column_index(c))
                    .collect::<Result<_>>()?;
                let out_cols: Vec<String> =
                    indices.iter().map(|&i| rs.columns[i].clone()).collect();
                let rows = rs
                    .rows
                    .iter()
                    .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
                    .collect();
                Ok(ResultSet {
                    columns: out_cols,
                    rows,
                })
            }
            Plan::Join { on, .. } => {
                let r = inputs.pop().unwrap();
                let l = inputs.pop().unwrap();
                if on.is_empty() {
                    return Err(Error::InvalidPlan(
                        "join requires at least one column pair (use Product otherwise)".into(),
                    ));
                }
                let l_idx: Vec<usize> = on
                    .iter()
                    .map(|(lc, _)| l.column_index(lc))
                    .collect::<Result<_>>()?;
                let r_idx: Vec<usize> = on
                    .iter()
                    .map(|(_, rc)| r.column_index(rc))
                    .collect::<Result<_>>()?;
                // build hash on the smaller side (right by convention here)
                let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
                for (ri, row) in r.rows.iter().enumerate() {
                    let k: Vec<Value> = r_idx.iter().map(|&i| row[i].clone()).collect();
                    // NULL never joins
                    if k.iter().any(|v| v.is_null()) {
                        continue;
                    }
                    index.entry(k).or_default().push(ri);
                }
                let mut columns = l.columns.clone();
                columns.extend(r.columns.iter().cloned());
                let mut rows = Vec::new();
                for lrow in &l.rows {
                    let k: Vec<Value> = l_idx.iter().map(|&i| lrow[i].clone()).collect();
                    if k.iter().any(|v| v.is_null()) {
                        continue;
                    }
                    if let Some(matches) = index.get(&k) {
                        for &ri in matches {
                            let mut row = lrow.clone();
                            row.extend(r.rows[ri].iter().cloned());
                            rows.push(row);
                        }
                    }
                }
                Ok(ResultSet { columns, rows })
            }
            Plan::Rename { mapping, .. } => {
                let mut rs = inputs.pop().unwrap();
                for (old, new) in mapping {
                    let idx = rs.column_index(old)?;
                    rs.columns[idx] = new.clone();
                }
                Ok(rs)
            }
            Plan::Union { .. } => {
                let r = inputs.pop().unwrap();
                let l = inputs.pop().unwrap();
                if l.columns.len() != r.columns.len() {
                    return Err(Error::InvalidPlan(format!(
                        "union arity mismatch: {} vs {}",
                        l.columns.len(),
                        r.columns.len()
                    )));
                }
                let mut rows = l.rows;
                rows.extend(r.rows);
                rows.sort();
                rows.dedup();
                Ok(ResultSet {
                    columns: l.columns,
                    rows,
                })
            }
            Plan::Difference { .. } => {
                let r = inputs.pop().unwrap();
                let l = inputs.pop().unwrap();
                if l.columns.len() != r.columns.len() {
                    return Err(Error::InvalidPlan(format!(
                        "difference arity mismatch: {} vs {}",
                        l.columns.len(),
                        r.columns.len()
                    )));
                }
                let rset: std::collections::BTreeSet<&Vec<Value>> = r.rows.iter().collect();
                let rows = l
                    .rows
                    .iter()
                    .filter(|row| !rset.contains(row))
                    .cloned()
                    .collect();
                Ok(ResultSet {
                    columns: l.columns,
                    rows,
                })
            }
            Plan::Product { .. } => {
                let r = inputs.pop().unwrap();
                let l = inputs.pop().unwrap();
                let mut columns = l.columns.clone();
                columns.extend(r.columns.iter().cloned());
                let mut rows = Vec::with_capacity(l.rows.len() * r.rows.len());
                for lrow in &l.rows {
                    for rrow in &r.rows {
                        let mut row = lrow.clone();
                        row.extend(rrow.iter().cloned());
                        rows.push(row);
                    }
                }
                Ok(ResultSet { columns, rows })
            }
            Plan::Sort { by, .. } => {
                let mut rs = inputs.pop().unwrap();
                let indices: Vec<usize> = by
                    .iter()
                    .map(|c| rs.column_index(c))
                    .collect::<Result<_>>()?;
                rs.rows.sort_by(|a, b| {
                    for &i in &indices {
                        let ord = a[i].cmp(&b[i]);
                        if ord != std::cmp::Ordering::Equal {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(rs)
            }
            Plan::Limit { n, .. } => {
                let mut rs = inputs.pop().unwrap();
                rs.rows.truncate(*n);
                Ok(rs)
            }
            Plan::Distinct { .. } => {
                let mut rs = inputs.pop().unwrap();
                rs.rows.sort();
                rs.rows.dedup();
                Ok(rs)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, RelationSchema};
    use crate::value::DataType;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_relation(
            RelationSchema::new(
                "DEPARTMENT",
                vec![AttributeDef::required("dept_name", DataType::Text)],
                &["dept_name"],
            )
            .unwrap(),
        )
        .unwrap();
        d.create_relation(
            RelationSchema::new(
                "COURSES",
                vec![
                    AttributeDef::required("course_id", DataType::Text),
                    AttributeDef::required("title", DataType::Text),
                    AttributeDef::required("dept_name", DataType::Text),
                    AttributeDef::required("units", DataType::Int),
                ],
                &["course_id"],
            )
            .unwrap(),
        )
        .unwrap();
        for dn in ["CS", "EE", "Math"] {
            d.insert("DEPARTMENT", vec![dn.into()]).unwrap();
        }
        d.insert(
            "COURSES",
            vec!["CS345".into(), "DB".into(), "CS".into(), 3.into()],
        )
        .unwrap();
        d.insert(
            "COURSES",
            vec!["CS101".into(), "Intro".into(), "CS".into(), 5.into()],
        )
        .unwrap();
        d.insert(
            "COURSES",
            vec!["EE282".into(), "Arch".into(), "EE".into(), 4.into()],
        )
        .unwrap();
        d
    }

    #[test]
    fn scan_qualifies_columns() {
        let d = db();
        let rs = d.execute(&Plan::scan("COURSES")).unwrap();
        assert_eq!(rs.columns[0], "COURSES.course_id");
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn select_project() {
        let d = db();
        let plan = Plan::scan("COURSES")
            .select(Expr::attr("dept_name").eq(Expr::lit("CS")))
            .project(vec!["course_id".into(), "units".into()]);
        let rs = d.execute(&plan).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.columns, vec!["COURSES.course_id", "COURSES.units"]);
    }

    #[test]
    fn hash_join() {
        let d = db();
        let plan = Plan::scan("COURSES").join(
            Plan::scan("DEPARTMENT"),
            vec![("COURSES.dept_name".into(), "DEPARTMENT.dept_name".into())],
        );
        let rs = d.execute(&plan).unwrap();
        assert_eq!(rs.len(), 3);
        assert_eq!(rs.columns.len(), 5);
        // every row's two dept_name columns agree
        for i in 0..rs.len() {
            assert_eq!(
                rs.value(i, "COURSES.dept_name").unwrap(),
                rs.value(i, "DEPARTMENT.dept_name").unwrap()
            );
        }
    }

    #[test]
    fn join_skips_nulls() {
        let mut d = db();
        d.create_relation(
            RelationSchema::new(
                "REF",
                vec![
                    AttributeDef::required("id", DataType::Int),
                    AttributeDef::nullable("dept_name", DataType::Text),
                ],
                &["id"],
            )
            .unwrap(),
        )
        .unwrap();
        d.insert("REF", vec![1.into(), Value::Null]).unwrap();
        d.insert("REF", vec![2.into(), "CS".into()]).unwrap();
        let plan = Plan::scan("REF").join(
            Plan::scan("DEPARTMENT"),
            vec![("REF.dept_name".into(), "DEPARTMENT.dept_name".into())],
        );
        let rs = d.execute(&plan).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.value(0, "REF.id").unwrap(), &Value::Int(2));
    }

    #[test]
    fn union_difference_distinct() {
        let d = db();
        let cs = Plan::scan("COURSES")
            .select(Expr::attr("dept_name").eq(Expr::lit("CS")))
            .project(vec!["dept_name".into()]);
        let ee = Plan::scan("COURSES")
            .select(Expr::attr("dept_name").eq(Expr::lit("EE")))
            .project(vec!["dept_name".into()]);
        let u = Plan::Union {
            left: Box::new(cs.clone()),
            right: Box::new(ee),
        };
        let rs = d.execute(&u).unwrap();
        assert_eq!(rs.len(), 2); // CS, EE deduped

        let all = Plan::scan("DEPARTMENT").project(vec!["dept_name".into()]);
        let diff = Plan::Difference {
            left: Box::new(all),
            right: Box::new(cs.distinct()),
        };
        let rs = d.execute(&diff).unwrap();
        assert_eq!(rs.len(), 2); // EE, Math
    }

    #[test]
    fn sort_and_limit() {
        let d = db();
        let plan = Plan::scan("COURSES")
            .sort(vec!["units".into()])
            .project(vec!["course_id".into()])
            .limit(1);
        let rs = d.execute(&plan).unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0][0], Value::text("CS345")); // 3 units is smallest
    }

    #[test]
    fn rename_changes_column() {
        let d = db();
        let plan =
            Plan::scan("DEPARTMENT").rename(vec![("DEPARTMENT.dept_name".into(), "d".into())]);
        let rs = d.execute(&plan).unwrap();
        assert_eq!(rs.columns, vec!["d"]);
    }

    #[test]
    fn product_counts() {
        let d = db();
        let plan = Plan::Product {
            left: Box::new(Plan::scan("DEPARTMENT")),
            right: Box::new(Plan::scan("COURSES")),
        };
        let rs = d.execute(&plan).unwrap();
        assert_eq!(rs.len(), 9);
    }

    #[test]
    fn union_arity_mismatch_rejected() {
        let d = db();
        let u = Plan::Union {
            left: Box::new(Plan::scan("DEPARTMENT")),
            right: Box::new(Plan::scan("COURSES")),
        };
        assert!(matches!(d.execute(&u), Err(Error::InvalidPlan(_))));
    }

    #[test]
    fn profiled_execution_matches_plain_and_measures() {
        let d = db();
        let plan = Plan::scan("COURSES")
            .select(Expr::attr("dept_name").eq(Expr::lit("CS")))
            .project(vec!["course_id".into()]);
        let plain = d.execute(&plan).unwrap();
        let (rs, prof) = d.execute_profiled(&plan).unwrap();
        assert_eq!(rs, plain);
        // tree shape mirrors the plan: Project -> Select -> Scan
        assert!(prof.label.starts_with("Project"));
        assert_eq!(prof.rows_in, 2);
        assert_eq!(prof.rows_out, 2);
        let select = &prof.children[0];
        assert!(select.label.starts_with("Select"));
        assert_eq!(select.rows_in, 3);
        assert_eq!(select.rows_out, 2);
        let scan = &select.children[0];
        assert_eq!(scan.label, "Scan(COURSES)");
        assert_eq!(scan.access_path, "table scan");
        assert_eq!(scan.rows_out, 3);
        // join nodes carry the hash access label
        let join = Plan::scan("COURSES").join(
            Plan::scan("DEPARTMENT"),
            vec![("COURSES.dept_name".into(), "DEPARTMENT.dept_name".into())],
        );
        let (_, jp) = d.execute_profiled(&join).unwrap();
        assert_eq!(jp.access_path, "hash join (build right)");
        assert_eq!(jp.rows_in, 6);
        assert_eq!(jp.rows_out, 3);
        // render and JSON both reflect the tree
        assert!(prof.render().contains("  Select"));
        assert!(prof.to_json().field("children").is_ok());
    }

    #[test]
    fn execute_emits_spans_when_traced() {
        let d = db();
        let _scope = vo_obs::trace::start_trace();
        d.execute(&Plan::scan("DEPARTMENT").distinct()).unwrap();
        let me = vo_obs::trace::current_thread_id();
        let mine: Vec<_> = vo_obs::trace::events()
            .into_iter()
            .filter(|e| e.thread == me && e.name == "relational.execute")
            .collect();
        assert!(mine.len() >= 2, "one span per operator node");
        assert!(mine.iter().any(|e| e
            .field("op")
            .and_then(|j| j.as_str().ok().map(String::from))
            == Some("Scan(DEPARTMENT)".into())));
    }

    #[test]
    fn relations_listing() {
        let plan = Plan::scan("A").join(Plan::scan("B"), vec![("x".into(), "y".into())]);
        assert_eq!(plan.relations(), vec!["A", "B"]);
    }

    #[test]
    fn table_string_renders() {
        let d = db();
        let rs = d.execute(&Plan::scan("DEPARTMENT")).unwrap();
        let s = rs.to_table_string();
        assert!(s.contains("DEPARTMENT.dept_name"));
        assert!(s.contains("'CS'"));
    }
}
