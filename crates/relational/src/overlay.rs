//! Delta overlays: read views that layer planned-but-uncommitted [`DbOp`]s
//! over a borrowed [`Database`] without cloning any base table.
//!
//! The update translators of the view-object model (paper §5) make every
//! decision against the database *as it will look* once the ops planned so
//! far have been applied. The original implementation obtained that view
//! by cloning the whole database per translation; [`DeltaDb`] provides the
//! same reads in O(delta) extra space:
//!
//! - each relation carries a small [`TableDelta`] — a key-ordered map of
//!   upserts (`Some(tuple)`) and deletions (`None`) shadowing the base;
//! - [`TableView`] merges base table and delta on every read, preserving
//!   primary-key iteration order and secondary-index acceleration (base
//!   hits come from the index; delta rows are scanned linearly, and the
//!   delta is by construction tiny relative to the base);
//! - [`DeltaDb::apply`] mirrors [`Table`]'s mutation semantics exactly —
//!   the same `KeyConflict` / `NoSuchTuple` errors fire against the merged
//!   view, so a plan that applies cleanly to the overlay applies cleanly
//!   to the base.
//!
//! The [`DbRead`] trait abstracts "something the planners can read": both
//! [`Database`] and [`DeltaDb`] implement it, so integrity planners and
//! translators run unchanged over a committed database or an overlay.
//!
//! Instrumentation: overlay construction counts `translate.overlay_created`
//! and every relation lookup through an overlay counts
//! `translate.overlay_reads` (see [`crate::stats`]).

use crate::database::{Database, DbOp};
use crate::error::{Error, Result};
use crate::schema::RelationSchema;
use crate::table::Table;
use crate::tuple::{Key, Tuple};
use crate::value::Value;
use std::collections::btree_map;
use std::collections::{BTreeMap, BTreeSet};
use std::iter::Peekable;
use std::sync::Mutex;

/// Uniform read access for integrity planners and update translators: a
/// committed [`Database`] and a [`DeltaDb`] overlay answer the same
/// lookups through [`TableView`]s.
pub trait DbRead {
    /// A merged read view of one relation.
    fn view(&self, relation: &str) -> Result<TableView<'_>>;
}

impl DbRead for Database {
    fn view(&self, relation: &str) -> Result<TableView<'_>> {
        Ok(TableView {
            base: self.table(relation)?,
            delta: empty_delta(),
        })
    }
}

/// Pending changes to one relation: `Some` entries shadow (or add) a tuple
/// at that key, `None` entries delete it. Key-ordered, so merged scans
/// stay deterministic.
#[derive(Debug, Clone, Default)]
pub struct TableDelta {
    rows: BTreeMap<Key, Option<Tuple>>,
}

impl TableDelta {
    /// Number of keys this delta shadows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the delta shadows nothing.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

fn empty_delta() -> &'static TableDelta {
    static EMPTY: TableDelta = TableDelta {
        rows: BTreeMap::new(),
    };
    &EMPTY
}

/// A read view layering planned-but-uncommitted [`DbOp`]s over a borrowed
/// [`Database`]. Construction is O(1); no base table is ever cloned.
///
/// The overlay also records which relations were *read* through it (the
/// read set). Together with the delta's key set (the write set) that is
/// exactly what first-committer-wins conflict validation
/// ([`Database::check_unchanged`]) needs: a transaction planned over this
/// overlay depends on no relation outside `read_set ∪ write_set`.
#[derive(Debug)]
pub struct DeltaDb<'base> {
    base: &'base Database,
    deltas: BTreeMap<String, TableDelta>,
    /// Relations read through [`DeltaDb::view`]. Interior-mutable because
    /// reads take `&self`; a `Mutex` (not `RefCell`) keeps the overlay
    /// `Sync` for the parallel instantiation workers.
    reads: Mutex<BTreeSet<String>>,
}

impl Clone for DeltaDb<'_> {
    fn clone(&self) -> Self {
        DeltaDb {
            base: self.base,
            deltas: self.deltas.clone(),
            reads: Mutex::new(self.reads.lock().expect("read-set lock").clone()),
        }
    }
}

// Overlays borrow a shared `&Database` and may be built per worker on top
// of it; keep them (and the views they hand out) thread-safe by
// construction for any base lifetime.
const _: fn() = vo_exec::assert_send_sync::<DeltaDb<'static>>;
const _: fn() = vo_exec::assert_send_sync::<TableView<'static>>;

impl<'base> DeltaDb<'base> {
    /// An empty overlay over `base`.
    pub fn new(base: &'base Database) -> Self {
        crate::stats::count_overlay_created();
        DeltaDb {
            base,
            deltas: BTreeMap::new(),
            reads: Mutex::new(BTreeSet::new()),
        }
    }

    /// The borrowed base database.
    pub fn base(&self) -> &'base Database {
        self.base
    }

    /// A merged read view of one relation. Records `relation` in the
    /// overlay's read set.
    pub fn view(&self, relation: &str) -> Result<TableView<'_>> {
        crate::stats::count_overlay_read();
        {
            let mut reads = self.reads.lock().expect("read-set lock");
            if !reads.contains(relation) {
                reads.insert(relation.to_owned());
            }
        }
        Ok(TableView {
            base: self.base.table(relation)?,
            delta: self.deltas.get(relation).unwrap_or_else(|| empty_delta()),
        })
    }

    /// Relations read through this overlay so far.
    pub fn read_set(&self) -> BTreeSet<String> {
        self.reads.lock().expect("read-set lock").clone()
    }

    /// Relations with pending writes in this overlay.
    pub fn write_set(&self) -> BTreeSet<String> {
        self.deltas.keys().cloned().collect()
    }

    /// Every relation this overlay depends on: reads ∪ pending writes.
    /// A transaction planned over the overlay commutes with any commit
    /// that leaves all of these relations untouched.
    pub fn touched_relations(&self) -> BTreeSet<String> {
        let mut all = self.read_set();
        all.extend(self.deltas.keys().cloned());
        all
    }

    /// Total number of delta entries across all relations.
    pub fn delta_len(&self) -> usize {
        self.deltas.values().map(TableDelta::len).sum()
    }

    /// True when no op has been applied to the overlay.
    pub fn is_clean(&self) -> bool {
        self.deltas.values().all(TableDelta::is_empty)
    }

    /// Apply one planned op to the overlay. Error semantics mirror
    /// [`Table`] exactly, judged against the merged view: duplicate
    /// inserts and colliding replacements are `KeyConflict`, missing
    /// delete/replace targets are `NoSuchTuple`, and tuples are
    /// re-validated against the relation schema.
    pub fn apply(&mut self, op: &DbOp) -> Result<()> {
        match op {
            DbOp::Insert { relation, tuple } => {
                let schema = self.base.table(relation)?.schema().clone();
                let tuple = Tuple::new(&schema, tuple.clone().into_values())?;
                let key = tuple.key(&schema);
                if self.view(relation)?.contains_key(&key) {
                    return Err(Error::KeyConflict {
                        relation: relation.clone(),
                        key: key.to_string(),
                    });
                }
                self.delta_mut(relation).rows.insert(key, Some(tuple));
            }
            DbOp::Delete { relation, key } => {
                if !self.view(relation)?.contains_key(key) {
                    return Err(Error::NoSuchTuple {
                        relation: relation.clone(),
                        key: key.to_string(),
                    });
                }
                self.delta_mut(relation).rows.insert(key.clone(), None);
            }
            DbOp::Replace {
                relation,
                old_key,
                tuple,
            } => {
                let schema = self.base.table(relation)?.schema().clone();
                let new = Tuple::new(&schema, tuple.clone().into_values())?;
                let new_key = new.key(&schema);
                let view = self.view(relation)?;
                if !view.contains_key(old_key) {
                    return Err(Error::NoSuchTuple {
                        relation: relation.clone(),
                        key: old_key.to_string(),
                    });
                }
                if new_key != *old_key && view.contains_key(&new_key) {
                    return Err(Error::KeyConflict {
                        relation: relation.clone(),
                        key: new_key.to_string(),
                    });
                }
                let delta = self.delta_mut(relation);
                if new_key != *old_key {
                    delta.rows.insert(old_key.clone(), None);
                }
                delta.rows.insert(new_key, Some(new));
            }
        }
        Ok(())
    }

    fn delta_mut(&mut self, relation: &str) -> &mut TableDelta {
        self.deltas.entry(relation.to_owned()).or_default()
    }
}

impl DbRead for DeltaDb<'_> {
    fn view(&self, relation: &str) -> Result<TableView<'_>> {
        DeltaDb::view(self, relation)
    }
}

/// A merged read view of one relation: the base [`Table`] shadowed by a
/// [`TableDelta`]. All accessors return references that borrow from the
/// underlying storage (lifetime `'a`), not from the view value, so views
/// are cheap to re-create per lookup.
#[derive(Debug, Clone, Copy)]
pub struct TableView<'a> {
    base: &'a Table,
    delta: &'a TableDelta,
}

impl<'a> TableView<'a> {
    /// The relation schema.
    pub fn schema(&self) -> &'a RelationSchema {
        self.base.schema()
    }

    /// Fetch by key through the delta.
    pub fn get(&self, key: &Key) -> Option<&'a Tuple> {
        match self.delta.rows.get(key) {
            Some(Some(t)) => Some(t),
            Some(None) => None,
            None => self.base.get(key),
        }
    }

    /// True when the merged view holds a tuple with this key.
    pub fn contains_key(&self, key: &Key) -> bool {
        self.get(key).is_some()
    }

    /// Number of tuples in the merged view.
    pub fn len(&self) -> usize {
        let mut n = self.base.len();
        for (key, entry) in &self.delta.rows {
            match (self.base.contains_key(key), entry) {
                (true, None) => n -= 1,
                (false, Some(_)) => n += 1,
                _ => {}
            }
        }
        n
    }

    /// True when the merged view holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate all tuples of the merged view in primary-key order.
    pub fn scan(&self) -> TableViewScan<'a> {
        TableViewScan {
            base: self.base.rows.iter().peekable(),
            delta: self.delta.rows.iter().peekable(),
        }
    }

    /// Tuples whose named attributes equal `values`, in primary-key order.
    /// Base hits use the table's secondary index when one exists; delta
    /// rows are filtered linearly (the delta is small by construction).
    pub fn find_by_attrs(&self, attrs: &[String], values: &[Value]) -> Result<Vec<&'a Tuple>> {
        let indices = self.base.schema().indices_of(attrs)?;
        Ok(self.find_by_indices(&indices, values))
    }

    /// Position-resolved form of [`TableView::find_by_attrs`].
    pub fn find_by_indices(&self, indices: &[usize], values: &[Value]) -> Vec<&'a Tuple> {
        if self.delta.rows.is_empty() {
            return self.base.find_by_indices(indices, values);
        }
        let schema = self.base.schema();
        let mut hits: BTreeMap<Key, &'a Tuple> = BTreeMap::new();
        for t in self.base.find_by_indices(indices, values) {
            let key = t.key(schema);
            if !self.delta.rows.contains_key(&key) {
                hits.insert(key, t);
            }
        }
        for (key, entry) in &self.delta.rows {
            if let Some(t) = entry {
                if indices
                    .iter()
                    .zip(values.iter())
                    .all(|(&i, v)| t.get(i) == v)
                {
                    hits.insert(key.clone(), t);
                }
            }
        }
        hits.into_values().collect()
    }

    /// Keys of tuples whose named attributes equal `values`.
    pub fn keys_by_attrs(&self, attrs: &[String], values: &[Value]) -> Result<Vec<Key>> {
        Ok(self
            .find_by_attrs(attrs, values)?
            .into_iter()
            .map(|t| t.key(self.base.schema()))
            .collect())
    }
}

/// Key-ordered merge iterator over a [`TableView`]: base rows not shadowed
/// by the delta, interleaved with the delta's upserts.
#[derive(Debug)]
pub struct TableViewScan<'a> {
    base: Peekable<btree_map::Iter<'a, Key, Tuple>>,
    delta: Peekable<btree_map::Iter<'a, Key, Option<Tuple>>>,
}

impl<'a> Iterator for TableViewScan<'a> {
    type Item = &'a Tuple;

    fn next(&mut self) -> Option<&'a Tuple> {
        loop {
            match (self.base.peek(), self.delta.peek()) {
                (Some((bk, _)), Some((dk, _))) => {
                    if bk < dk {
                        return self.base.next().map(|(_, t)| t);
                    }
                    if bk == dk {
                        self.base.next();
                    }
                    match self.delta.next() {
                        Some((_, Some(t))) => return Some(t),
                        _ => continue, // deletion: emit nothing for this key
                    }
                }
                (Some(_), None) => return self.base.next().map(|(_, t)| t),
                (None, Some(_)) => match self.delta.next() {
                    Some((_, Some(t))) => return Some(t),
                    Some((_, None)) => continue,
                    None => return None,
                },
                (None, None) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeDef;
    use crate::value::DataType;

    fn base() -> Database {
        let mut db = Database::new();
        db.create_relation(
            RelationSchema::new(
                "PEOPLE",
                vec![
                    AttributeDef::required("ssn", DataType::Int),
                    AttributeDef::required("name", DataType::Text),
                    AttributeDef::nullable("dept", DataType::Text),
                ],
                &["ssn"],
            )
            .unwrap(),
        )
        .unwrap();
        for (ssn, name, dept) in [(1, "ann", "CS"), (2, "bob", "EE"), (4, "dee", "CS")] {
            db.insert("PEOPLE", vec![ssn.into(), name.into(), dept.into()])
                .unwrap();
        }
        db
    }

    fn tuple(db: &Database, ssn: i64, name: &str, dept: &str) -> Tuple {
        let schema = db.table("PEOPLE").unwrap().schema().clone();
        Tuple::new(&schema, vec![ssn.into(), name.into(), dept.into()]).unwrap()
    }

    #[test]
    fn empty_overlay_reads_through() {
        let db = base();
        let overlay = DeltaDb::new(&db);
        let v = overlay.view("PEOPLE").unwrap();
        assert_eq!(v.len(), 3);
        assert!(v.contains_key(&Key::single(1)));
        let all: Vec<_> = v.scan().collect();
        assert_eq!(all.len(), 3);
        assert!(overlay.is_clean());
        assert!(overlay.view("NOPE").is_err());
    }

    #[test]
    fn insert_delete_replace_merge() {
        let db = base();
        let mut overlay = DeltaDb::new(&db);
        overlay
            .apply(&DbOp::Insert {
                relation: "PEOPLE".into(),
                tuple: tuple(&db, 3, "cam", "ME"),
            })
            .unwrap();
        overlay
            .apply(&DbOp::Delete {
                relation: "PEOPLE".into(),
                key: Key::single(2),
            })
            .unwrap();
        overlay
            .apply(&DbOp::Replace {
                relation: "PEOPLE".into(),
                old_key: Key::single(1),
                tuple: tuple(&db, 1, "ann", "EE"),
            })
            .unwrap();
        let v = overlay.view("PEOPLE").unwrap();
        assert_eq!(v.len(), 3);
        assert!(v.contains_key(&Key::single(3)));
        assert!(!v.contains_key(&Key::single(2)));
        assert_eq!(
            v.get(&Key::single(1)).unwrap().get(2),
            &Value::text("EE"),
            "replace shadows the base tuple"
        );
        // scan is merged and key-ordered: 1, 3, 4
        let keys: Vec<Key> = v.scan().map(|t| t.key(v.schema())).collect();
        assert_eq!(keys, vec![Key::single(1), Key::single(3), Key::single(4)]);
        // the base is untouched
        assert_eq!(db.table("PEOPLE").unwrap().len(), 3);
        assert!(db.table("PEOPLE").unwrap().contains_key(&Key::single(2)));
    }

    #[test]
    fn key_replacement_moves_tuple() {
        let db = base();
        let mut overlay = DeltaDb::new(&db);
        overlay
            .apply(&DbOp::Replace {
                relation: "PEOPLE".into(),
                old_key: Key::single(2),
                tuple: tuple(&db, 9, "bob", "EE"),
            })
            .unwrap();
        let v = overlay.view("PEOPLE").unwrap();
        assert!(!v.contains_key(&Key::single(2)));
        assert!(v.contains_key(&Key::single(9)));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn table_error_semantics_preserved() {
        let db = base();
        let mut overlay = DeltaDb::new(&db);
        // duplicate insert
        let err = overlay.apply(&DbOp::Insert {
            relation: "PEOPLE".into(),
            tuple: tuple(&db, 1, "dup", "CS"),
        });
        assert!(matches!(err, Err(Error::KeyConflict { .. })));
        // delete of a missing key
        let err = overlay.apply(&DbOp::Delete {
            relation: "PEOPLE".into(),
            key: Key::single(99),
        });
        assert!(matches!(err, Err(Error::NoSuchTuple { .. })));
        // replace colliding with a third live tuple
        let err = overlay.apply(&DbOp::Replace {
            relation: "PEOPLE".into(),
            old_key: Key::single(1),
            tuple: tuple(&db, 2, "ann", "CS"),
        });
        assert!(matches!(err, Err(Error::KeyConflict { .. })));
        // delete then re-insert the same key is legal
        overlay
            .apply(&DbOp::Delete {
                relation: "PEOPLE".into(),
                key: Key::single(1),
            })
            .unwrap();
        overlay
            .apply(&DbOp::Insert {
                relation: "PEOPLE".into(),
                tuple: tuple(&db, 1, "ann2", "CS"),
            })
            .unwrap();
        assert_eq!(
            overlay
                .view("PEOPLE")
                .unwrap()
                .get(&Key::single(1))
                .unwrap()
                .get(1),
            &Value::text("ann2")
        );
    }

    #[test]
    fn overlay_plan_applies_cleanly_to_base() {
        // whatever the overlay accepted must apply to the base verbatim
        let mut db = base();
        let ops = {
            let mut overlay = DeltaDb::new(&db);
            let plan = vec![
                DbOp::Insert {
                    relation: "PEOPLE".into(),
                    tuple: tuple(&db, 3, "cam", "ME"),
                },
                DbOp::Replace {
                    relation: "PEOPLE".into(),
                    old_key: Key::single(3),
                    tuple: tuple(&db, 5, "cam", "ME"),
                },
                DbOp::Delete {
                    relation: "PEOPLE".into(),
                    key: Key::single(5),
                },
            ];
            for op in &plan {
                overlay.apply(op).unwrap();
            }
            assert_eq!(overlay.view("PEOPLE").unwrap().len(), 3);
            plan
        };
        db.apply_all(&ops).unwrap();
        assert_eq!(db.table("PEOPLE").unwrap().len(), 3);
    }

    #[test]
    fn find_by_attrs_merges_index_and_delta() {
        let mut db = base();
        db.table_mut("PEOPLE")
            .unwrap()
            .create_index(&["dept".to_string()])
            .unwrap();
        let mut overlay = DeltaDb::new(&db);
        overlay
            .apply(&DbOp::Insert {
                relation: "PEOPLE".into(),
                tuple: tuple(&db, 3, "cam", "CS"),
            })
            .unwrap();
        overlay
            .apply(&DbOp::Replace {
                relation: "PEOPLE".into(),
                old_key: Key::single(1),
                tuple: tuple(&db, 1, "ann", "EE"),
            })
            .unwrap();
        let v = overlay.view("PEOPLE").unwrap();
        let cs = v
            .find_by_attrs(&["dept".to_string()], &[Value::text("CS")])
            .unwrap();
        // base CS rows were {1, 4}; 1 moved to EE in the delta, 3 arrived
        let keys: Vec<Key> = cs.iter().map(|t| t.key(v.schema())).collect();
        assert_eq!(keys, vec![Key::single(3), Key::single(4)]);
        let ee_keys = v
            .keys_by_attrs(&["dept".to_string()], &[Value::text("EE")])
            .unwrap();
        assert_eq!(ee_keys, vec![Key::single(1), Key::single(2)]);
    }

    #[test]
    fn dbread_is_uniform_over_database_and_overlay() {
        fn count(db: &impl DbRead) -> usize {
            db.view("PEOPLE").unwrap().scan().count()
        }
        let db = base();
        let mut overlay = DeltaDb::new(&db);
        assert_eq!(count(&db), 3);
        assert_eq!(count(&overlay), 3);
        overlay
            .apply(&DbOp::Delete {
                relation: "PEOPLE".into(),
                key: Key::single(4),
            })
            .unwrap();
        assert_eq!(count(&overlay), 2);
        assert_eq!(count(&db), 3);
    }

    #[test]
    fn overlay_counters_tick() {
        let db = base();
        let before = crate::stats::snapshot();
        let overlay = DeltaDb::new(&db);
        let _ = overlay.view("PEOPLE").unwrap();
        let after = crate::stats::snapshot();
        let d = before.delta(&after);
        assert!(d.overlay_created >= 1);
        assert!(d.overlay_reads >= 1);
    }
}
