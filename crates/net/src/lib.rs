//! PENGUIN as a network service.
//!
//! This crate puts a [`vo_penguin::Penguin`] system behind a TCP socket so
//! many clients can run VOQL concurrently. The design leans on the MVCC
//! facade the rest of the workspace already provides:
//!
//! * each connection pins a snapshot-isolated [`vo_penguin::Session`] at
//!   handshake — reads (`GET`, `SHOW …`, `PREPARE`) run against the pinned
//!   snapshot with **no lock held** and never block the writer;
//! * writes (`DELETE`/`UPDATE` statements, `COMMIT`, `APPLY`,
//!   `MATERIALIZE`, `WATCH`, `POLL_WATCH`) funnel through a single
//!   `Mutex<Penguin>` — the same single-writer discipline the embedded API
//!   has, now shared across connections;
//! * optimistic concurrency crosses the wire: `PREPARE` translates a batch
//!   against the pinned snapshot, `COMMIT` validates it at the head under
//!   first-committer-wins, and a loser sees a typed
//!   [`ErrorCode::Conflict`] carrying the base
//!   and head versions, exactly like the embedded
//!   [`vo_penguin::Penguin::commit_prepared`].
//!
//! The wire format is deliberately boring: a frame is
//! `[len: u32 LE][crc32(payload): u32 LE][payload]` — the same
//! length-plus-checksum armor `vo-store`'s WAL records wear — and the
//! payload is one JSON document encoded with the in-tree `vo_obs::json`
//! codec. No external dependencies anywhere.
//!
//! Robustness guarantees (exercised by the fuzz tests in [`frame`] and the
//! socket-level tests in `tests/net_e2e.rs`): fabricated lengths, truncated
//! frames, CRC bit-flips, and oversized payloads all surface as typed
//! errors and a clean close — never a panic, never a hang, and never an
//! unbounded allocation (a frame larger than the cap is rejected from its
//! header alone).

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

mod conn;

pub use client::{ClientOptions, HelloInfo, VoClient, VoqlResult};
pub use frame::{read_frame, write_frame, DEFAULT_MAX_FRAME_BYTES};
pub use proto::{
    ErrorCode, Request, RequestBody, Response, ResponseBody, WireError, PROTOCOL_VERSION,
};
pub use server::{ServerOptions, ServerStats, VoServer};

use vo_obs::json::JsonError;

/// Everything that can go wrong on the transport or protocol layer.
///
/// Errors produced by the *remote* side arrive as [`NetError::Remote`]
/// carrying the typed [`WireError`]; everything else is local.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// A frame header announced a payload larger than the configured cap.
    /// Detected before any payload allocation.
    FrameTooLarge {
        /// Announced payload size.
        bytes: u64,
        /// Configured cap.
        max: u64,
    },
    /// Payload bytes did not match the header checksum.
    CrcMismatch {
        /// Checksum from the header.
        expected: u32,
        /// Checksum of the bytes actually received.
        found: u32,
    },
    /// The peer closed mid-frame.
    Truncated {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes received before the close.
        got: usize,
    },
    /// The connection is gone (clean close, or a prior error tore it down).
    Disconnected,
    /// Payload was not valid JSON, or not the JSON shape the protocol wants.
    Json(String),
    /// The peer violated the protocol (bad correlation id, wrong message
    /// kind, handshake out of order).
    Protocol(String),
    /// The server answered with a typed error.
    Remote(WireError),
}

impl NetError {
    /// True for [`NetError::Remote`] with the given code — the idiom tests
    /// and retry loops use (`err.is_code(ErrorCode::Busy)`).
    pub fn is_code(&self, code: ErrorCode) -> bool {
        matches!(self, NetError::Remote(w) if w.code == code)
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::FrameTooLarge { bytes, max } => {
                write!(f, "frame of {bytes} bytes exceeds cap of {max}")
            }
            NetError::CrcMismatch { expected, found } => {
                write!(
                    f,
                    "frame crc mismatch: header {expected:#010x}, payload {found:#010x}"
                )
            }
            NetError::Truncated { expected, got } => {
                write!(
                    f,
                    "frame truncated: expected {expected} more bytes, got {got}"
                )
            }
            NetError::Disconnected => write!(f, "connection closed"),
            NetError::Json(msg) => write!(f, "bad payload: {msg}"),
            NetError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            NetError::Remote(w) => write!(f, "server error [{}]: {}", w.code.as_str(), w.message),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<JsonError> for NetError {
    fn from(e: JsonError) -> Self {
        NetError::Json(e.0)
    }
}

/// Result alias for the network layer.
pub type NetResult<T> = std::result::Result<T, NetError>;
