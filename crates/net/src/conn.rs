//! Per-connection serving: handshake, request dispatch, cleanup.
//!
//! Each connection owns a pinned [`Session`], so every read-only request
//! (`GET`, `SHOW …`, `PREPARE`) sees one frozen version of the database no
//! matter what the writer commits meanwhile — the network mirror of the
//! embedded snapshot-isolation contract. The pin moves only when the
//! client sends `PIN`; sequential requests on one connection are
//! byte-stable against each other.
//!
//! Server-side per-connection resources are handle-addressed and cleaned
//! up on disconnect: prepared batches are one-shot handles consumed by
//! `COMMIT`, and watch subscriptions are dropped from the shared system
//! when the socket goes away, so an impolite client cannot leak journal
//! cursors.

use crate::frame::{read_frame_cancellable, write_frame, ServerRead, HEADER_BYTES};
use crate::proto::{
    ErrorCode, Request, RequestBody, Response, ResponseBody, WireError, PROTOCOL_VERSION,
};
use crate::server::{
    m_bytes_read, m_bytes_written, m_request_micros, m_requests_error, m_requests_ok,
    m_requests_rejected, Shared,
};
use crate::NetError;
use std::collections::BTreeMap;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vo_core::update::pipeline::PreparedBatch;
use vo_obs::json::Json;
use vo_obs::trace;
use vo_penguin::{Session, VoqlOutcome, VoqlStatement, WatchId};

struct ConnState {
    session: Session,
    prepared: BTreeMap<u64, (String, PreparedBatch)>,
    next_handle: u64,
    watches: BTreeMap<u64, (String, WatchId)>,
    next_watch: u64,
}

/// Serve one admitted socket to completion.
pub(crate) fn serve(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
    // Short read timeout = the stop-flag poll tick; patience for a started
    // frame is enforced separately by the cancellable reader.
    let _ = stream.set_read_timeout(Some(shared.opts.idle_tick));
    let mut sp = trace::span("net.accept");
    if sp.is_recording() {
        if let Ok(peer) = stream.peer_addr() {
            sp.field("peer", Json::str(peer.to_string()));
        }
    }
    let Some(mut state) = handshake(shared, &mut stream) else {
        return;
    };
    serve_loop(shared, &mut stream, &mut state);
    if !state.watches.is_empty() {
        let mut penguin = shared.penguin();
        for (_, (_, id)) in state.watches {
            penguin.unwatch(id);
        }
    }
}

/// Read one frame; `None` means the connection is done (close, stop, or a
/// framing error that was answered best-effort).
fn read_request_frame(shared: &Arc<Shared>, stream: &mut TcpStream) -> Option<Vec<u8>> {
    match read_frame_cancellable(
        stream,
        shared.opts.max_frame_bytes,
        shared.opts.read_timeout,
        &|| shared.stopping(),
    ) {
        Ok(ServerRead::Frame(payload)) => {
            let on_wire = (payload.len() + HEADER_BYTES) as u64;
            shared
                .tallies
                .bytes_read
                .fetch_add(on_wire, Ordering::Relaxed);
            m_bytes_read().add(on_wire);
            Some(payload)
        }
        Ok(ServerRead::Closed | ServerRead::Stopped) => None,
        Err(e) => {
            // The stream may be desynchronized past this point, so the
            // typed error is a parting gift: send, then close.
            shared
                .tallies
                .requests_error
                .fetch_add(1, Ordering::Relaxed);
            m_requests_error().inc();
            let response = Response {
                id: 0,
                result: Err(wire_from_net(&e)),
            };
            let _ = write_response(shared, stream, &response);
            None
        }
    }
}

fn handshake(shared: &Arc<Shared>, stream: &mut TcpStream) -> Option<ConnState> {
    let payload = read_request_frame(shared, stream)?;
    let request = match decode_request(&payload) {
        Ok(r) => r,
        Err(e) => {
            answer_error(shared, stream, 0, wire_from_net(&e));
            return None;
        }
    };
    let RequestBody::Hello { secret, proto } = &request.body else {
        answer_error(
            shared,
            stream,
            request.id,
            WireError::new(ErrorCode::BadRequest, "first request must be HELLO"),
        );
        return None;
    };
    if *proto != PROTOCOL_VERSION {
        answer_error(
            shared,
            stream,
            request.id,
            WireError::new(
                ErrorCode::Unsupported,
                format!("protocol {proto} not supported (server speaks {PROTOCOL_VERSION})"),
            ),
        );
        return None;
    }
    if shared.opts.secret.is_some() && *secret != shared.opts.secret {
        answer_error(
            shared,
            stream,
            request.id,
            WireError::new(ErrorCode::Auth, "bad or missing shared secret"),
        );
        return None;
    }
    let session = shared.penguin().session();
    let version = session.version();
    let state = ConnState {
        session,
        prepared: BTreeMap::new(),
        next_handle: 1,
        watches: BTreeMap::new(),
        next_watch: 1,
    };
    let hello = Response {
        id: request.id,
        result: Ok(ResponseBody::Hello {
            server: concat!("penguin-vo/", env!("CARGO_PKG_VERSION")).to_owned(),
            proto: PROTOCOL_VERSION,
            version,
        }),
    };
    if !write_response(shared, stream, &hello) {
        return None;
    }
    shared.tallies.requests_ok.fetch_add(1, Ordering::Relaxed);
    m_requests_ok().inc();
    Some(state)
}

fn serve_loop(shared: &Arc<Shared>, stream: &mut TcpStream, state: &mut ConnState) {
    loop {
        let Some(payload) = read_request_frame(shared, stream) else {
            return;
        };
        let request = match decode_request(&payload) {
            Ok(r) => r,
            Err(e) => {
                // The frame itself was sound, so the stream is still
                // synchronized: answer and keep serving.
                answer_error(shared, stream, 0, wire_from_net(&e));
                continue;
            }
        };
        match request.body {
            RequestBody::Bye => {
                let response = Response {
                    id: request.id,
                    result: Ok(ResponseBody::Done),
                };
                let _ = write_response(shared, stream, &response);
                shared.tallies.requests_ok.fetch_add(1, Ordering::Relaxed);
                m_requests_ok().inc();
                return;
            }
            RequestBody::Hello { .. } => {
                answer_error(
                    shared,
                    stream,
                    request.id,
                    WireError::new(ErrorCode::BadRequest, "connection already authenticated"),
                );
                continue;
            }
            body => {
                if !handle(shared, stream, state, request.id, body) {
                    return;
                }
            }
        }
    }
}

/// Gate, dispatch, meter, respond. Returns `false` when the socket died.
fn handle(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    state: &mut ConnState,
    id: u64,
    body: RequestBody,
) -> bool {
    if !shared.try_acquire_inflight() {
        shared
            .tallies
            .requests_rejected
            .fetch_add(1, Ordering::Relaxed);
        m_requests_rejected().inc();
        let response = Response {
            id,
            result: Err(WireError::new(
                ErrorCode::Busy,
                format!(
                    "server at its limit of {} in-flight requests; retry",
                    shared.opts.max_inflight
                ),
            )),
        };
        return write_response(shared, stream, &response);
    }
    let started = Instant::now();
    let mut sp = trace::span("net.request");
    if sp.is_recording() {
        sp.field("op", Json::str(body.op()));
    }
    let result = dispatch(shared, state, body);
    shared.release_inflight();
    m_request_micros().record(started.elapsed().as_micros() as u64);
    match &result {
        Ok(_) => {
            shared.tallies.requests_ok.fetch_add(1, Ordering::Relaxed);
            m_requests_ok().inc();
        }
        Err(e) => {
            if sp.is_recording() {
                sp.field("error", Json::str(e.code.as_str()));
            }
            shared
                .tallies
                .requests_error
                .fetch_add(1, Ordering::Relaxed);
            m_requests_error().inc();
        }
    }
    write_response(shared, stream, &Response { id, result })
}

fn dispatch(
    shared: &Arc<Shared>,
    state: &mut ConnState,
    body: RequestBody,
) -> Result<ResponseBody, WireError> {
    match body {
        RequestBody::Voql { src } => {
            // Parse on the pinned session (no lock); route by statement
            // kind: reads stay on the snapshot, writes go to the head.
            let stmt = state
                .session
                .parse_voql(&src)
                .map_err(|e| WireError::from(&e))?;
            match stmt {
                VoqlStatement::Get { .. }
                | VoqlStatement::ShowObjects
                | VoqlStatement::ShowObject(_)
                | VoqlStatement::ShowSchema => {
                    match state
                        .session
                        .execute_voql(&stmt)
                        .map_err(|e| WireError::from(&e))?
                    {
                        VoqlOutcome::Instances(instances) => Ok(ResponseBody::Instances(instances)),
                        VoqlOutcome::Text(text) => Ok(ResponseBody::Text(text)),
                        other => Err(WireError::new(
                            ErrorCode::Internal,
                            format!("read statement produced write outcome {other:?}"),
                        )),
                    }
                }
                VoqlStatement::Delete { .. } | VoqlStatement::Update { .. } => {
                    // Re-run at the head: the write must see and validate
                    // against current state, not the connection's pin.
                    let mut penguin = shared.penguin();
                    match vo_penguin::run_voql(&mut penguin, &src)
                        .map_err(|e| WireError::from(&e))?
                    {
                        VoqlOutcome::Deleted(n) => Ok(ResponseBody::Deleted(n as u64)),
                        VoqlOutcome::Updated(n) => Ok(ResponseBody::Updated(n as u64)),
                        other => Err(WireError::new(
                            ErrorCode::Internal,
                            format!("write statement produced read outcome {other:?}"),
                        )),
                    }
                }
            }
        }
        RequestBody::Pin => {
            state.session = shared.penguin().session();
            Ok(ResponseBody::Pinned {
                version: state.session.version(),
            })
        }
        RequestBody::Prepare { object, requests } => {
            let prepared = state
                .session
                .prepare_batch(&object, requests)
                .map_err(|e| WireError::from(&e))?;
            let handle = state.next_handle;
            state.next_handle += 1;
            let response = ResponseBody::Prepared {
                handle,
                base_version: prepared.base_version,
                touched: prepared.touched.iter().cloned().collect(),
            };
            state.prepared.insert(handle, (object, prepared));
            Ok(response)
        }
        RequestBody::Commit { handle } => {
            let (object, prepared) = state.prepared.remove(&handle).ok_or_else(|| {
                WireError::new(
                    ErrorCode::NotFound,
                    format!("no prepared batch with handle {handle} (handles are one-shot)"),
                )
            })?;
            let outcome = shared
                .penguin()
                .commit_prepared(&object, prepared)
                .map_err(|e| WireError::from(&e))?;
            Ok(ResponseBody::Committed {
                requests: outcome.outcomes.len() as u64,
                total_ops: outcome.total_ops as u64,
            })
        }
        RequestBody::Apply { object, requests } => {
            let outcome = shared
                .penguin()
                .apply_batch(&object, requests)
                .map_err(|e| WireError::from(&e))?;
            Ok(ResponseBody::Committed {
                requests: outcome.outcomes.len() as u64,
                total_ops: outcome.total_ops as u64,
            })
        }
        RequestBody::Materialize { object } => {
            let mut penguin = shared.penguin();
            let instances = penguin
                .materialize(&object)
                .map_err(|e| WireError::from(&e))?
                .len();
            Ok(ResponseBody::Materialized {
                instances: instances as u64,
            })
        }
        RequestBody::Watch { object } => {
            let id = shared
                .penguin()
                .watch(&object)
                .map_err(|e| WireError::from(&e))?;
            let watch = state.next_watch;
            state.next_watch += 1;
            state.watches.insert(watch, (object, id));
            Ok(ResponseBody::Watching { watch })
        }
        RequestBody::PollWatch { watch } => {
            let (object, id) = state.watches.get(&watch).ok_or_else(|| {
                WireError::new(ErrorCode::NotFound, format!("no watch with handle {watch}"))
            })?;
            let mut penguin = shared.penguin();
            penguin.refresh(object).map_err(|e| WireError::from(&e))?;
            let changes = penguin.poll_watch(*id).map_err(|e| WireError::from(&e))?;
            Ok(ResponseBody::Changes(changes))
        }
        RequestBody::Unwatch { watch } => {
            let (_, id) = state.watches.remove(&watch).ok_or_else(|| {
                WireError::new(ErrorCode::NotFound, format!("no watch with handle {watch}"))
            })?;
            shared.penguin().unwatch(id);
            Ok(ResponseBody::Done)
        }
        RequestBody::Health => {
            let penguin = shared.penguin();
            let mut inputs = penguin.health_inputs();
            inputs.net_active_connections = Some(shared.active.load(Ordering::Relaxed) as u64);
            inputs.net_connection_limit = Some(shared.opts.max_connections as u64);
            let report = penguin.health_policy().evaluate(&inputs);
            Ok(ResponseBody::Health(report.to_json()))
        }
        RequestBody::Metrics => Ok(ResponseBody::Metrics(vo_obs::metrics::expose_text())),
        RequestBody::Stats => Ok(ResponseBody::Stats(shared.stats().to_json())),
        RequestBody::Sleep { millis } => {
            if !shared.opts.enable_debug {
                return Err(WireError::new(
                    ErrorCode::Unsupported,
                    "SLEEP is only available on debug-enabled servers",
                ));
            }
            std::thread::sleep(Duration::from_millis(millis.min(5_000)));
            Ok(ResponseBody::Done)
        }
        RequestBody::Hello { .. } | RequestBody::Bye => Err(WireError::new(
            ErrorCode::BadRequest,
            "control op routed to dispatch",
        )),
    }
}

fn decode_request(payload: &[u8]) -> Result<Request, NetError> {
    let text = std::str::from_utf8(payload)
        .map_err(|_| NetError::Json("payload is not UTF-8".to_owned()))?;
    let json = vo_obs::json::parse(text)?;
    Request::from_json(&json)
}

fn answer_error(shared: &Arc<Shared>, stream: &mut TcpStream, id: u64, error: WireError) {
    shared
        .tallies
        .requests_error
        .fetch_add(1, Ordering::Relaxed);
    m_requests_error().inc();
    let response = Response {
        id,
        result: Err(error),
    };
    let _ = write_response(shared, stream, &response);
}

/// Frame and send a response; on success account the bytes. A response
/// too big for the frame cap degrades to a typed `too_large` error so the
/// connection survives. Returns `false` when the socket is dead.
fn write_response(shared: &Arc<Shared>, stream: &mut TcpStream, response: &Response) -> bool {
    let payload = response.to_json().compact();
    match write_frame(stream, payload.as_bytes(), shared.opts.max_frame_bytes) {
        Ok(n) => {
            shared
                .tallies
                .bytes_written
                .fetch_add(n as u64, Ordering::Relaxed);
            m_bytes_written().add(n as u64);
            true
        }
        Err(NetError::FrameTooLarge { bytes, max }) => {
            let fallback = Response {
                id: response.id,
                result: Err(WireError::new(
                    ErrorCode::TooLarge,
                    format!("response of {bytes} bytes exceeds the {max}-byte frame cap"),
                )),
            };
            let payload = fallback.to_json().compact();
            match write_frame(stream, payload.as_bytes(), shared.opts.max_frame_bytes) {
                Ok(n) => {
                    shared
                        .tallies
                        .bytes_written
                        .fetch_add(n as u64, Ordering::Relaxed);
                    m_bytes_written().add(n as u64);
                    true
                }
                Err(_) => false,
            }
        }
        Err(_) => false,
    }
}

fn wire_from_net(e: &NetError) -> WireError {
    match e {
        NetError::FrameTooLarge { .. } => WireError::new(ErrorCode::TooLarge, e.to_string()),
        NetError::CrcMismatch { .. } | NetError::Truncated { .. } => {
            WireError::new(ErrorCode::BadFrame, e.to_string())
        }
        NetError::Json(_) | NetError::Protocol(_) => {
            WireError::new(ErrorCode::BadRequest, e.to_string())
        }
        other => WireError::new(ErrorCode::Internal, other.to_string()),
    }
}
