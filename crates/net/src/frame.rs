//! Length-prefixed, checksummed frames over a byte stream.
//!
//! One frame is `[len: u32 LE][crc32(payload): u32 LE][payload]`, the same
//! armor `vo-store` wraps around WAL records — and the checksum is the same
//! [`vo_store::crc32::crc32`]. `len` counts payload bytes only, so a reader
//! can reject an oversized frame from the eight-byte header **before**
//! allocating anything: a fabricated 4 GiB length costs the attacker a
//! typed error, not the server's memory.
//!
//! Two readers live here. [`read_frame`] is the strict, blocking one the
//! client uses: any stall is an I/O error. [`read_frame_cancellable`] is
//! the server's: it tolerates unlimited idle time *between* frames (polling
//! a stop flag each tick so shutdown is prompt), but once the first byte of
//! a frame arrives the peer has `patience` to deliver the rest — a
//! slow-loris connection is cut off, it cannot park a worker forever.

use crate::{NetError, NetResult};
use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};
use vo_store::crc32::crc32;

/// Default cap on a single frame's payload: 1 MiB.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// Header size: 4 bytes of length + 4 bytes of CRC.
pub const HEADER_BYTES: usize = 8;

/// Write one frame; returns the total bytes put on the wire.
///
/// Rejects a payload over `max` locally — a peer honoring the same cap
/// would refuse it anyway, better to fail before transmitting.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: usize) -> NetResult<usize> {
    if payload.len() > max {
        return Err(NetError::FrameTooLarge {
            bytes: payload.len() as u64,
            max: max as u64,
        });
    }
    let mut header = [0u8; HEADER_BYTES];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(HEADER_BYTES + payload.len())
}

/// Read one frame, strictly: block until a full frame arrives or the
/// stream errors. `Ok(None)` means the peer closed cleanly *between*
/// frames; a close mid-frame is [`NetError::Truncated`].
pub fn read_frame(r: &mut impl Read, max: usize) -> NetResult<Option<Vec<u8>>> {
    let mut header = [0u8; HEADER_BYTES];
    match read_full(r, &mut header)? {
        Fill::Eof { got: 0 } => return Ok(None),
        Fill::Eof { got } => {
            return Err(NetError::Truncated {
                expected: HEADER_BYTES - got,
                got,
            })
        }
        Fill::Done => {}
    }
    let (len, crc) = decode_header(&header, max)?;
    let mut payload = vec![0u8; len];
    match read_full(r, &mut payload)? {
        Fill::Eof { got } => {
            return Err(NetError::Truncated {
                expected: len - got,
                got,
            })
        }
        Fill::Done => {}
    }
    check_crc(&payload, crc)?;
    Ok(Some(payload))
}

/// What [`read_frame_cancellable`] observed.
#[derive(Debug)]
pub enum ServerRead {
    /// A complete, checksum-verified payload.
    Frame(Vec<u8>),
    /// The peer closed cleanly between frames.
    Closed,
    /// The stop flag went up while the connection was idle.
    Stopped,
}

/// Read one frame from a stream whose read timeout is set to a short tick.
///
/// Between frames the connection may idle forever — every tick the `stop`
/// callback is polled so server shutdown does not wait on quiet clients.
/// Once a frame has started, the peer has `patience` to finish it;
/// exceeding that is an I/O timeout error (the connection is torn down).
pub fn read_frame_cancellable(
    r: &mut impl Read,
    max: usize,
    patience: Duration,
    stop: &dyn Fn() -> bool,
) -> NetResult<ServerRead> {
    let mut header = [0u8; HEADER_BYTES];
    let mut started: Option<Instant> = None;
    match read_full_patient(r, &mut header, patience, stop, &mut started)? {
        Patient::Eof { got: 0 } => return Ok(ServerRead::Closed),
        Patient::Eof { got } => {
            return Err(NetError::Truncated {
                expected: HEADER_BYTES - got,
                got,
            })
        }
        Patient::Stopped => return Ok(ServerRead::Stopped),
        Patient::Done => {}
    }
    let (len, crc) = decode_header(&header, max)?;
    let mut payload = vec![0u8; len];
    match read_full_patient(r, &mut payload, patience, stop, &mut started)? {
        Patient::Eof { got } => {
            return Err(NetError::Truncated {
                expected: len - got,
                got,
            })
        }
        // Mid-frame stop: the frame will never be served; treat as stop.
        Patient::Stopped => return Ok(ServerRead::Stopped),
        Patient::Done => {}
    }
    check_crc(&payload, crc)?;
    Ok(ServerRead::Frame(payload))
}

fn decode_header(header: &[u8; HEADER_BYTES], max: usize) -> NetResult<(usize, u32)> {
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as u64;
    if len > max as u64 {
        return Err(NetError::FrameTooLarge {
            bytes: len,
            max: max as u64,
        });
    }
    let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
    Ok((len as usize, crc))
}

fn check_crc(payload: &[u8], expected: u32) -> NetResult<()> {
    let found = crc32(payload);
    if found != expected {
        return Err(NetError::CrcMismatch { expected, found });
    }
    Ok(())
}

enum Fill {
    Done,
    Eof { got: usize },
}

fn read_full(r: &mut impl Read, buf: &mut [u8]) -> NetResult<Fill> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(Fill::Eof { got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Done)
}

enum Patient {
    Done,
    Eof { got: usize },
    Stopped,
}

fn read_full_patient(
    r: &mut impl Read,
    buf: &mut [u8],
    patience: Duration,
    stop: &dyn Fn() -> bool,
    started: &mut Option<Instant>,
) -> NetResult<Patient> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => return Ok(Patient::Eof { got }),
            Ok(n) => {
                got += n;
                started.get_or_insert_with(Instant::now);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if stop() {
                    return Ok(Patient::Stopped);
                }
                if let Some(t0) = *started {
                    if t0.elapsed() > patience {
                        return Err(NetError::Io(std::io::Error::new(
                            ErrorKind::TimedOut,
                            "peer stalled mid-frame",
                        )));
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Patient::Done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes(payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, payload, DEFAULT_MAX_FRAME_BYTES).unwrap();
        out
    }

    #[test]
    fn roundtrip_including_empty_and_back_to_back() {
        let mut wire = Vec::new();
        for payload in [&b""[..], b"x", b"{\"id\":1}", &[0u8; 4096]] {
            write_frame(&mut wire, payload, DEFAULT_MAX_FRAME_BYTES).unwrap();
        }
        let mut r = Cursor::new(wire);
        for payload in [&b""[..], b"x", b"{\"id\":1}", &[0u8; 4096]] {
            let got = read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES)
                .unwrap()
                .unwrap();
            assert_eq!(got, payload);
        }
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .is_none());
    }

    #[test]
    fn fabricated_length_is_rejected_from_the_header_alone() {
        // A header announcing u32::MAX bytes: the reader must error without
        // attempting the allocation (the "payload" here is 3 bytes).
        let mut wire = u32::MAX.to_le_bytes().to_vec();
        wire.extend_from_slice(&0u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        match read_frame(&mut Cursor::new(wire), DEFAULT_MAX_FRAME_BYTES) {
            Err(NetError::FrameTooLarge { bytes, max }) => {
                assert_eq!(bytes, u64::from(u32::MAX));
                assert_eq!(max, DEFAULT_MAX_FRAME_BYTES as u64);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_write_is_rejected_locally() {
        let mut sink = Vec::new();
        match write_frame(&mut sink, &[0u8; 100], 64) {
            Err(NetError::FrameTooLarge {
                bytes: 100,
                max: 64,
            }) => {}
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
        assert!(sink.is_empty(), "nothing may reach the wire");
    }

    #[test]
    fn crc_bit_flip_is_detected() {
        let mut wire = frame_bytes(b"important payload");
        let last = wire.len() - 1;
        wire[last] ^= 0x40; // flip one payload bit
        match read_frame(&mut Cursor::new(wire), DEFAULT_MAX_FRAME_BYTES) {
            Err(NetError::CrcMismatch { expected, found }) => assert_ne!(expected, found),
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_reports_missing_bytes() {
        // Cut mid-payload.
        let wire = frame_bytes(b"0123456789");
        let cut = &wire[..HEADER_BYTES + 4];
        match read_frame(&mut Cursor::new(cut.to_vec()), DEFAULT_MAX_FRAME_BYTES) {
            Err(NetError::Truncated {
                expected: 6,
                got: 4,
            }) => {}
            other => panic!("expected Truncated{{6,4}}, got {other:?}"),
        }
        // Cut mid-header.
        let cut = &wire[..3];
        match read_frame(&mut Cursor::new(cut.to_vec()), DEFAULT_MAX_FRAME_BYTES) {
            Err(NetError::Truncated {
                expected: 5,
                got: 3,
            }) => {}
            other => panic!("expected Truncated{{5,3}}, got {other:?}"),
        }
    }

    /// Deterministic fuzz: feed 500 random byte soups to the reader. Every
    /// outcome must be a typed error or a clean EOF — never a panic, and
    /// never an allocation beyond the frame cap (enforced by using a tiny
    /// cap so a "successful" giant length would OOM loudly if attempted).
    #[test]
    fn random_garbage_never_panics() {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            // xorshift64* — deterministic, no external PRNG.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545f4914f6cdd1d)
        };
        for round in 0..500 {
            let len = (next() % 64) as usize;
            let soup: Vec<u8> = (0..len).map(|_| (next() & 0xff) as u8).collect();
            let mut r = Cursor::new(soup);
            loop {
                match read_frame(&mut r, 1 << 16) {
                    Ok(Some(_)) => continue, // a soup can legitimately frame-decode
                    Ok(None) => break,
                    Err(
                        NetError::FrameTooLarge { .. }
                        | NetError::CrcMismatch { .. }
                        | NetError::Truncated { .. },
                    ) => break,
                    Err(other) => panic!("round {round}: unexpected error {other:?}"),
                }
            }
        }
    }

    #[test]
    fn cancellable_reader_honors_stop_while_idle() {
        // A reader that always times out, as an idle socket would.
        struct AlwaysTimeout;
        impl Read for AlwaysTimeout {
            fn read(&mut self, _: &mut [u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "tick"))
            }
        }
        let out = read_frame_cancellable(
            &mut AlwaysTimeout,
            DEFAULT_MAX_FRAME_BYTES,
            Duration::from_secs(5),
            &|| true,
        )
        .unwrap();
        assert!(matches!(out, ServerRead::Stopped));
    }

    #[test]
    fn cancellable_reader_cuts_off_a_stalled_frame() {
        // Half a header, then silence: patience must expire with an error
        // rather than parking forever.
        struct Stall {
            fed: bool,
        }
        impl Read for Stall {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.fed {
                    Err(std::io::Error::new(ErrorKind::WouldBlock, "tick"))
                } else {
                    self.fed = true;
                    buf[..4].copy_from_slice(&8u32.to_le_bytes());
                    Ok(4)
                }
            }
        }
        let out = read_frame_cancellable(
            &mut Stall { fed: false },
            DEFAULT_MAX_FRAME_BYTES,
            Duration::from_millis(0),
            &|| false,
        );
        match out {
            Err(NetError::Io(e)) => assert_eq!(e.kind(), ErrorKind::TimedOut),
            other => panic!("expected timeout, got {other:?}"),
        }
    }
}
