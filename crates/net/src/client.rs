//! A blocking client for the PENGUIN wire protocol.
//!
//! [`VoClient`] is deliberately simple: one socket, one request in flight,
//! correlation ids checked on every response. When a request fails at the
//! transport layer the socket is marked dead and — with
//! [`ClientOptions::reconnect`] on — the *next* request dials and
//! re-handshakes transparently. Reconnection restores the transport only:
//! the server pins a **fresh** session for the new connection and any
//! prepared-batch or watch handles from the old one are gone, exactly as
//! if the client had disconnected politely. Code that depends on a pinned
//! snapshot should treat a [`NetError::Disconnected`]/[`NetError::Io`]
//! answer as "re-pin and re-prepare".

use crate::frame::{read_frame, write_frame};
use crate::proto::{Request, RequestBody, Response, ResponseBody, PROTOCOL_VERSION};
use crate::{NetError, NetResult};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use vo_core::instance::VoInstance;
use vo_core::maintain::InstanceChange;
use vo_core::update::UpdateRequest;
use vo_obs::json::Json;

/// Knobs for [`VoClient::connect`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Shared secret to present in `HELLO`.
    pub secret: Option<String>,
    /// Dial timeout.
    pub connect_timeout: Duration,
    /// Per-request socket read/write timeout.
    pub io_timeout: Duration,
    /// Cap on one frame's payload, both directions.
    pub max_frame_bytes: usize,
    /// Redial transparently on the next request after a transport failure.
    pub reconnect: bool,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            secret: None,
            connect_timeout: Duration::from_secs(5),
            io_timeout: Duration::from_secs(10),
            max_frame_bytes: crate::frame::DEFAULT_MAX_FRAME_BYTES,
            reconnect: true,
        }
    }
}

/// What the server said in its `HELLO` response.
#[derive(Debug, Clone, PartialEq)]
pub struct HelloInfo {
    /// Server identification string, e.g. `penguin-vo/0.1.0`.
    pub server: String,
    /// Server protocol version.
    pub proto: i64,
    /// Database version this connection's session is pinned at.
    pub version: u64,
}

/// Outcome of [`VoClient::voql`], mirroring [`vo_penguin::VoqlOutcome`]
/// across the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum VoqlResult {
    /// Instances returned by `GET`.
    Instances(Vec<VoInstance>),
    /// Instances deleted.
    Deleted(u64),
    /// Instances updated.
    Updated(u64),
    /// `SHOW …` text.
    Text(String),
}

/// A blocking connection to a [`crate::VoServer`].
#[derive(Debug)]
pub struct VoClient {
    addr: String,
    opts: ClientOptions,
    stream: Option<TcpStream>,
    next_id: u64,
    hello: Option<HelloInfo>,
}

impl VoClient {
    /// Dial `addr` (e.g. `"127.0.0.1:7878"`) and perform the handshake.
    pub fn connect(addr: impl Into<String>, opts: ClientOptions) -> NetResult<VoClient> {
        let mut client = VoClient {
            addr: addr.into(),
            opts,
            stream: None,
            next_id: 1,
            hello: None,
        };
        client.dial()?;
        Ok(client)
    }

    /// The `HELLO` payload of the current connection, when one is up.
    pub fn hello(&self) -> Option<&HelloInfo> {
        self.hello.as_ref()
    }

    /// True when the transport is currently connected. A dead transport
    /// with [`ClientOptions::reconnect`] heals on the next request.
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    fn dial(&mut self) -> NetResult<()> {
        self.stream = None;
        self.hello = None;
        let target = self.addr.to_socket_addrs()?.next().ok_or_else(|| {
            NetError::Protocol(format!("address `{}` resolves to nothing", self.addr))
        })?;
        let stream = TcpStream::connect_timeout(&target, self.opts.connect_timeout)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(self.opts.io_timeout))?;
        stream.set_write_timeout(Some(self.opts.io_timeout))?;
        self.stream = Some(stream);
        let id = self.fresh_id();
        let body = RequestBody::Hello {
            secret: self.opts.secret.clone(),
            proto: PROTOCOL_VERSION,
        };
        match self.roundtrip(id, &body) {
            Ok(ResponseBody::Hello {
                server,
                proto,
                version,
            }) => {
                self.hello = Some(HelloInfo {
                    server,
                    proto,
                    version,
                });
                Ok(())
            }
            Ok(other) => {
                self.stream = None;
                Err(NetError::Protocol(format!(
                    "handshake answered with unexpected {other:?}"
                )))
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Send one request and wait for its response. Heals a dead transport
    /// first when reconnection is enabled; marks the transport dead on any
    /// transport-layer failure (typed server errors leave it healthy).
    pub fn request(&mut self, body: RequestBody) -> NetResult<ResponseBody> {
        if self.stream.is_none() {
            if !self.opts.reconnect {
                return Err(NetError::Disconnected);
            }
            self.dial()?;
        }
        let id = self.fresh_id();
        let result = self.roundtrip(id, &body);
        if matches!(
            result,
            Err(NetError::Io(_)
                | NetError::Disconnected
                | NetError::Truncated { .. }
                | NetError::CrcMismatch { .. }
                | NetError::Protocol(_))
        ) {
            self.stream = None;
            self.hello = None;
        }
        result
    }

    fn roundtrip(&mut self, id: u64, body: &RequestBody) -> NetResult<ResponseBody> {
        let stream = self.stream.as_mut().ok_or(NetError::Disconnected)?;
        let request = Request {
            id,
            body: body.clone(),
        };
        write_frame(
            stream,
            request.to_json().compact().as_bytes(),
            self.opts.max_frame_bytes,
        )?;
        let payload =
            read_frame(stream, self.opts.max_frame_bytes)?.ok_or(NetError::Disconnected)?;
        let text = std::str::from_utf8(&payload)
            .map_err(|_| NetError::Json("response is not UTF-8".to_owned()))?;
        let response = Response::from_json(&vo_obs::json::parse(text)?)?;
        // id 0 marks a connection-level error the server sent before it
        // could attribute a request (admission rejection, broken frame).
        if response.id != id && response.id != 0 {
            return Err(NetError::Protocol(format!(
                "response correlates to id {}, expected {id}",
                response.id
            )));
        }
        response.result.map_err(NetError::Remote)
    }

    fn expect_done(&mut self, body: RequestBody) -> NetResult<()> {
        match self.request(body)? {
            ResponseBody::Done => Ok(()),
            other => Err(unexpected("done", &other)),
        }
    }

    // ------------------------------------------------------ typed calls --

    /// Run one VOQL statement.
    pub fn voql(&mut self, src: &str) -> NetResult<VoqlResult> {
        match self.request(RequestBody::Voql { src: src.into() })? {
            ResponseBody::Instances(instances) => Ok(VoqlResult::Instances(instances)),
            ResponseBody::Deleted(n) => Ok(VoqlResult::Deleted(n)),
            ResponseBody::Updated(n) => Ok(VoqlResult::Updated(n)),
            ResponseBody::Text(text) => Ok(VoqlResult::Text(text)),
            other => Err(unexpected("voql outcome", &other)),
        }
    }

    /// Re-pin the connection's session at the server's current head;
    /// returns the pinned version.
    pub fn pin(&mut self) -> NetResult<u64> {
        match self.request(RequestBody::Pin)? {
            ResponseBody::Pinned { version } => Ok(version),
            other => Err(unexpected("pinned", &other)),
        }
    }

    /// Translate a batch against the pinned snapshot server-side; returns
    /// `(handle, base_version, touched relations)`.
    pub fn prepare(
        &mut self,
        object: &str,
        requests: Vec<UpdateRequest>,
    ) -> NetResult<(u64, u64, Vec<String>)> {
        match self.request(RequestBody::Prepare {
            object: object.into(),
            requests,
        })? {
            ResponseBody::Prepared {
                handle,
                base_version,
                touched,
            } => Ok((handle, base_version, touched)),
            other => Err(unexpected("prepared", &other)),
        }
    }

    /// Commit a prepared batch; returns `(requests, total_ops)`. A
    /// first-committer-wins loss surfaces as [`NetError::Remote`] with
    /// [`crate::ErrorCode::Conflict`].
    pub fn commit(&mut self, handle: u64) -> NetResult<(u64, u64)> {
        match self.request(RequestBody::Commit { handle })? {
            ResponseBody::Committed {
                requests,
                total_ops,
            } => Ok((requests, total_ops)),
            other => Err(unexpected("committed", &other)),
        }
    }

    /// Translate and commit a batch directly at the head.
    pub fn apply(&mut self, object: &str, requests: Vec<UpdateRequest>) -> NetResult<(u64, u64)> {
        match self.request(RequestBody::Apply {
            object: object.into(),
            requests,
        })? {
            ResponseBody::Committed {
                requests,
                total_ops,
            } => Ok((requests, total_ops)),
            other => Err(unexpected("committed", &other)),
        }
    }

    /// Materialize an object server-side; returns its instance count.
    pub fn materialize(&mut self, object: &str) -> NetResult<u64> {
        match self.request(RequestBody::Materialize {
            object: object.into(),
        })? {
            ResponseBody::Materialized { instances } => Ok(instances),
            other => Err(unexpected("materialized", &other)),
        }
    }

    /// Subscribe to instance-level changes; returns the watch handle.
    pub fn watch(&mut self, object: &str) -> NetResult<u64> {
        match self.request(RequestBody::Watch {
            object: object.into(),
        })? {
            ResponseBody::Watching { watch } => Ok(watch),
            other => Err(unexpected("watching", &other)),
        }
    }

    /// Refresh the watched view server-side and drain pending changes.
    pub fn poll_watch(&mut self, watch: u64) -> NetResult<Vec<InstanceChange>> {
        match self.request(RequestBody::PollWatch { watch })? {
            ResponseBody::Changes(changes) => Ok(changes),
            other => Err(unexpected("changes", &other)),
        }
    }

    /// Drop a watch subscription.
    pub fn unwatch(&mut self, watch: u64) -> NetResult<()> {
        self.expect_done(RequestBody::Unwatch { watch })
    }

    /// Evaluate the server's health policy; returns the report JSON.
    pub fn health(&mut self) -> NetResult<Json> {
        match self.request(RequestBody::Health)? {
            ResponseBody::Health(report) => Ok(report),
            other => Err(unexpected("health", &other)),
        }
    }

    /// Text exposition of the server's metrics registry.
    pub fn metrics(&mut self) -> NetResult<String> {
        match self.request(RequestBody::Metrics)? {
            ResponseBody::Metrics(text) => Ok(text),
            other => Err(unexpected("metrics", &other)),
        }
    }

    /// Server admission/traffic counters as JSON.
    pub fn stats(&mut self) -> NetResult<Json> {
        match self.request(RequestBody::Stats)? {
            ResponseBody::Stats(report) => Ok(report),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Debug-only: hold an in-flight permit server-side for `millis`.
    pub fn sleep(&mut self, millis: u64) -> NetResult<()> {
        self.expect_done(RequestBody::Sleep { millis })
    }

    /// Polite goodbye: `BYE`, then drop the transport. Errors are
    /// swallowed — closing a dead connection is fine.
    pub fn close(&mut self) {
        if self.stream.is_some() {
            let _ = self.expect_done(RequestBody::Bye);
        }
        self.stream = None;
        self.hello = None;
    }
}

impl Drop for VoClient {
    fn drop(&mut self) {
        self.close();
    }
}

fn unexpected(wanted: &str, got: &ResponseBody) -> NetError {
    NetError::Protocol(format!("expected {wanted} response, got {got:?}"))
}
