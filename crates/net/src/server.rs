//! The TCP server: accept loop, bounded worker pool, admission control.
//!
//! Concurrency model, in one paragraph: the accept thread admits sockets
//! into a bounded queue; `workers` threads each pop one socket and serve it
//! to completion (one request in flight per connection — the protocol is
//! strictly request/response). Reads run on the connection's pinned
//! [`vo_penguin::Session`] without any lock; writes take the single
//! `Mutex<Penguin>`. Admission control is typed, not silent: a socket past
//! `max_connections` is told [`ErrorCode::ConnLimit`], a socket past the
//! queue depth — and a request past `max_inflight` — is told
//! [`ErrorCode::Busy`], each as a proper response frame before the close,
//! so clients can distinguish "come back later" from a crash.
//!
//! Every admission decision is visible twice: in the process-wide metrics
//! registry (`net.connections.*`, `net.requests.*`, `net.bytes.*`,
//! `net.request.micros`) and in the per-server [`ServerStats`] snapshot
//! that the `STATS` request exposes over the wire.

use crate::conn;
use crate::frame::write_frame;
use crate::proto::{ErrorCode, Response, WireError};
use crate::NetResult;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;
use vo_obs::json::Json;
use vo_obs::metrics::{self, Counter, Histogram};
use vo_penguin::Penguin;

pub(crate) fn m_conns_accepted() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("net.connections.accepted"))
}

pub(crate) fn m_conns_rejected() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("net.connections.rejected"))
}

pub(crate) fn m_requests_ok() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("net.requests.ok"))
}

pub(crate) fn m_requests_error() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("net.requests.error"))
}

pub(crate) fn m_requests_rejected() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("net.requests.rejected"))
}

pub(crate) fn m_bytes_read() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("net.bytes.read"))
}

pub(crate) fn m_bytes_written() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("net.bytes.written"))
}

pub(crate) fn m_request_micros() -> Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    *H.get_or_init(|| metrics::histogram("net.request.micros"))
}

/// Knobs for [`VoServer::start`]. Plain fields; spread from the default:
/// `ServerOptions { workers: 8, ..ServerOptions::default() }`.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Address to bind; port 0 picks a free one (read it back via
    /// [`VoServer::addr`]).
    pub bind: String,
    /// Shared secret every `HELLO` must present; `None` disables auth.
    pub secret: Option<String>,
    /// Admitted-connection ceiling (serving + queued). Excess sockets get
    /// a typed `conn_limit` error and a close.
    pub max_connections: usize,
    /// Worker threads; also the number of connections served truly
    /// concurrently.
    pub workers: usize,
    /// Admitted sockets allowed to wait for a free worker. Excess gets a
    /// typed `busy` error and a close.
    pub queue_depth: usize,
    /// Requests allowed to execute concurrently across all connections.
    /// Excess requests (not connections) get a typed `busy` error — the
    /// connection survives and may retry.
    pub max_inflight: usize,
    /// Cap on one frame's payload, both directions.
    pub max_frame_bytes: usize,
    /// Once a frame has started arriving, how long the peer gets to finish
    /// it (slow-loris guard). Idle time *between* frames is unlimited.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Poll interval for the stop flag on idle connections — bounds
    /// shutdown latency, not throughput.
    pub idle_tick: Duration,
    /// Enable debug ops (`SLEEP`). Never turn this on outside tests.
    pub enable_debug: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            bind: "127.0.0.1:0".to_owned(),
            secret: None,
            max_connections: 64,
            workers: 4,
            queue_depth: 16,
            max_inflight: 64,
            max_frame_bytes: crate::frame::DEFAULT_MAX_FRAME_BYTES,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_tick: Duration::from_millis(25),
            enable_debug: false,
        }
    }
}

/// Point-in-time server counters, also served over the wire by `STATS`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Sockets admitted (served or queued).
    pub conns_accepted: u64,
    /// Sockets turned away at admission (`conn_limit`, or `busy` because
    /// the accept queue was full). Handshake failures (bad secret, wrong
    /// protocol) count under `requests_error` instead — the socket was
    /// admitted and answered.
    pub conns_rejected: u64,
    /// Requests answered successfully.
    pub requests_ok: u64,
    /// Requests answered with a typed error (except `busy`).
    pub requests_error: u64,
    /// Requests refused with `busy` by the in-flight gate.
    pub requests_rejected: u64,
    /// Payload + header bytes received.
    pub bytes_read: u64,
    /// Payload + header bytes sent.
    pub bytes_written: u64,
    /// Connections currently admitted.
    pub active_connections: u64,
    /// Requests currently executing.
    pub inflight: u64,
}

impl ServerStats {
    /// Encode as JSON (the `STATS` response payload).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("conns_accepted", Json::Int(self.conns_accepted as i64)),
            ("conns_rejected", Json::Int(self.conns_rejected as i64)),
            ("requests_ok", Json::Int(self.requests_ok as i64)),
            ("requests_error", Json::Int(self.requests_error as i64)),
            (
                "requests_rejected",
                Json::Int(self.requests_rejected as i64),
            ),
            ("bytes_read", Json::Int(self.bytes_read as i64)),
            ("bytes_written", Json::Int(self.bytes_written as i64)),
            (
                "active_connections",
                Json::Int(self.active_connections as i64),
            ),
            ("inflight", Json::Int(self.inflight as i64)),
        ])
    }
}

#[derive(Default)]
pub(crate) struct Tallies {
    pub(crate) conns_accepted: AtomicU64,
    pub(crate) conns_rejected: AtomicU64,
    pub(crate) requests_ok: AtomicU64,
    pub(crate) requests_error: AtomicU64,
    pub(crate) requests_rejected: AtomicU64,
    pub(crate) bytes_read: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
}

/// State shared by the accept thread, the workers, and the facade.
pub(crate) struct Shared {
    pub(crate) penguin: Mutex<Penguin>,
    pub(crate) opts: ServerOptions,
    pub(crate) stop: AtomicBool,
    pub(crate) active: AtomicUsize,
    pub(crate) inflight: AtomicUsize,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    pub(crate) tallies: Tallies,
}

impl Shared {
    /// The single-writer facade. Lock poisoning is recovered — a panic in
    /// one request must not brick the server for every other client.
    pub(crate) fn penguin(&self) -> MutexGuard<'_, Penguin> {
        self.penguin.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub(crate) fn stopping(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Try to take one in-flight permit; `false` means the caller must
    /// answer `busy`.
    pub(crate) fn try_acquire_inflight(&self) -> bool {
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.opts.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        true
    }

    pub(crate) fn release_inflight(&self) {
        self.inflight.fetch_sub(1, Ordering::AcqRel);
    }

    pub(crate) fn stats(&self) -> ServerStats {
        ServerStats {
            conns_accepted: self.tallies.conns_accepted.load(Ordering::Relaxed),
            conns_rejected: self.tallies.conns_rejected.load(Ordering::Relaxed),
            requests_ok: self.tallies.requests_ok.load(Ordering::Relaxed),
            requests_error: self.tallies.requests_error.load(Ordering::Relaxed),
            requests_rejected: self.tallies.requests_rejected.load(Ordering::Relaxed),
            bytes_read: self.tallies.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.tallies.bytes_written.load(Ordering::Relaxed),
            active_connections: self.active.load(Ordering::Relaxed) as u64,
            inflight: self.inflight.load(Ordering::Relaxed) as u64,
        }
    }
}

/// A running PENGUIN network server. Dropping it shuts it down.
pub struct VoServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl VoServer {
    /// Bind, spawn the accept thread and the worker pool, and start
    /// serving `penguin`.
    pub fn start(penguin: Penguin, mut opts: ServerOptions) -> NetResult<VoServer> {
        opts.workers = opts.workers.max(1);
        opts.max_inflight = opts.max_inflight.max(1);
        opts.max_connections = opts.max_connections.max(1);
        let listener = TcpListener::bind(&opts.bind)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            penguin: Mutex::new(penguin),
            opts,
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            tallies: Tallies::default(),
        });
        let workers = (0..shared.opts.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vo-net-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vo-net-accept".to_owned())
                .spawn(move || accept_loop(&shared, listener))
                .expect("spawn accept thread")
        };
        Ok(VoServer {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot the admission and traffic counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Run `f` against the served system under the writer lock — the
    /// in-process escape hatch tests use to seed data or assert state
    /// while the server runs.
    pub fn with_penguin<T>(&self, f: impl FnOnce(&mut Penguin) -> T) -> T {
        f(&mut self.shared.penguin())
    }

    /// Stop accepting, wake every idle connection, and join all threads.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.shared.queue_cv.notify_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for VoServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: TcpListener) {
    for stream in listener.incoming() {
        if shared.stopping() {
            break;
        }
        let Ok(stream) = stream else { continue };
        admit(shared, stream);
    }
}

fn admit(shared: &Arc<Shared>, stream: TcpStream) {
    if shared.active.load(Ordering::Acquire) >= shared.opts.max_connections {
        reject(
            shared,
            stream,
            ErrorCode::ConnLimit,
            "connection limit reached",
        );
        return;
    }
    let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
    if queue.len() >= shared.opts.queue_depth {
        drop(queue);
        reject(
            shared,
            stream,
            ErrorCode::Busy,
            "all workers busy and the accept queue is full",
        );
        return;
    }
    shared.active.fetch_add(1, Ordering::AcqRel);
    shared
        .tallies
        .conns_accepted
        .fetch_add(1, Ordering::Relaxed);
    m_conns_accepted().inc();
    queue.push_back(stream);
    drop(queue);
    shared.queue_cv.notify_one();
}

/// Turn a socket away with a typed error frame (id 0: no request was
/// read), best-effort — the peer may already be gone.
fn reject(shared: &Arc<Shared>, mut stream: TcpStream, code: ErrorCode, message: &str) {
    shared
        .tallies
        .conns_rejected
        .fetch_add(1, Ordering::Relaxed);
    m_conns_rejected().inc();
    let _ = stream.set_write_timeout(Some(shared.opts.write_timeout));
    let response = Response {
        id: 0,
        result: Err(WireError::new(code, message)),
    };
    let payload = response.to_json().compact();
    let _ = write_frame(&mut stream, payload.as_bytes(), shared.opts.max_frame_bytes);
    // Drain whatever the client already sent (typically its HELLO) before
    // dropping the socket. Closing with unread bytes in the receive buffer
    // makes the kernel send an RST, which can discard the typed error frame
    // we just wrote before the client gets to read it.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    // Runs on the accept thread: cap the drain so a stalling peer cannot
    // hold up admission for longer than a second.
    let drain = shared.opts.write_timeout.min(Duration::from_secs(1));
    let _ = stream.set_read_timeout(Some(drain));
    let mut sink = [0u8; 1024];
    loop {
        match std::io::Read::read(&mut stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if shared.stopping() {
                    return;
                }
                if let Some(s) = queue.pop_front() {
                    break s;
                }
                queue = shared
                    .queue_cv
                    .wait_timeout(queue, shared.opts.idle_tick)
                    .unwrap_or_else(|p| p.into_inner())
                    .0;
            }
        };
        conn::serve(shared, stream);
        shared.active.fetch_sub(1, Ordering::AcqRel);
    }
}
