//! The request/response vocabulary and its JSON codecs.
//!
//! Every frame payload is one JSON document. Requests carry a client-chosen
//! correlation `id` the response echoes back; the body is discriminated by
//! an `"op"` string (requests) or a `"kind"` string (successful responses).
//! Failures travel as a typed [`WireError`]: a machine-readable
//! [`ErrorCode`], a human message, and optional structured `data` — a
//! commit conflict, for instance, carries the relation plus base and head
//! versions so a client can decide whether to re-prepare.
//!
//! Instances and update requests reuse the `vo-core` codecs, so what a GET
//! returns over the wire decodes into the *same* [`VoInstance`] tree the
//! embedded API hands out — the e2e suite leans on that for its
//! byte-for-byte oracle comparison.

use crate::{NetError, NetResult};
use vo_core::instance::VoInstance;
use vo_core::maintain::{ChangeKind, InstanceChange};
use vo_core::update::error::UpdateError;
use vo_core::update::UpdateRequest;
use vo_obs::json::Json;
use vo_relational::error::Error;
use vo_relational::tuple::Key;

/// Version of this wire vocabulary; sent in `HELLO` both ways.
pub const PROTOCOL_VERSION: i64 = 1;

// -------------------------------------------------------------- requests --

/// One client request: correlation id plus body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The operation.
    pub body: RequestBody,
}

/// Everything a client can ask for.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Handshake: must be the first request on a connection.
    Hello {
        /// Shared secret; must match the server's, when it has one.
        secret: Option<String>,
        /// Client protocol version.
        proto: i64,
    },
    /// Run one VOQL statement. Reads execute on the connection's pinned
    /// session; writes go through the head.
    Voql {
        /// VOQL source text.
        src: String,
    },
    /// Re-pin the connection's session at the current committed head.
    Pin,
    /// Translate a batch against the pinned snapshot without committing.
    Prepare {
        /// Object name.
        object: String,
        /// The update requests.
        requests: Vec<UpdateRequest>,
    },
    /// Commit a previously prepared batch (first-committer-wins).
    Commit {
        /// Handle from the `Prepared` response. One-shot.
        handle: u64,
    },
    /// Translate and commit a batch directly at the head.
    Apply {
        /// Object name.
        object: String,
        /// The update requests.
        requests: Vec<UpdateRequest>,
    },
    /// Materialize an object's instances server-side.
    Materialize {
        /// Object name.
        object: String,
    },
    /// Subscribe to instance-level changes of a materialized object.
    Watch {
        /// Object name.
        object: String,
    },
    /// Refresh the watched view and drain this watcher's pending changes.
    PollWatch {
        /// Handle from the `Watching` response.
        watch: u64,
    },
    /// Drop a watch subscription.
    Unwatch {
        /// Handle from the `Watching` response.
        watch: u64,
    },
    /// Evaluate the health policy (connection saturation included).
    Health,
    /// Text exposition of every metric.
    Metrics,
    /// Server counters: connections, requests, bytes.
    Stats,
    /// Hold this request's in-flight permit for `millis` — debug servers
    /// only; exists so backpressure is testable deterministically.
    Sleep {
        /// How long to hold the permit (capped server-side).
        millis: u64,
    },
    /// Polite goodbye; the server answers `Done` and closes.
    Bye,
}

impl RequestBody {
    /// The wire op string (also the span label for `net.request`).
    pub fn op(&self) -> &'static str {
        match self {
            RequestBody::Hello { .. } => "HELLO",
            RequestBody::Voql { .. } => "VOQL",
            RequestBody::Pin => "PIN",
            RequestBody::Prepare { .. } => "PREPARE",
            RequestBody::Commit { .. } => "COMMIT",
            RequestBody::Apply { .. } => "APPLY",
            RequestBody::Materialize { .. } => "MATERIALIZE",
            RequestBody::Watch { .. } => "WATCH",
            RequestBody::PollWatch { .. } => "POLL_WATCH",
            RequestBody::Unwatch { .. } => "UNWATCH",
            RequestBody::Health => "HEALTH",
            RequestBody::Metrics => "METRICS",
            RequestBody::Stats => "STATS",
            RequestBody::Sleep { .. } => "SLEEP",
            RequestBody::Bye => "BYE",
        }
    }
}

impl Request {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id", Json::Int(self.id as i64)),
            ("op", Json::str(self.body.op())),
        ];
        match &self.body {
            RequestBody::Hello { secret, proto } => {
                let s = match secret {
                    Some(s) => Json::str(s.clone()),
                    None => Json::Null,
                };
                pairs.push(("secret", s));
                pairs.push(("proto", Json::Int(*proto)));
            }
            RequestBody::Voql { src } => pairs.push(("src", Json::str(src.clone()))),
            RequestBody::Prepare { object, requests } | RequestBody::Apply { object, requests } => {
                pairs.push(("object", Json::str(object.clone())));
                pairs.push((
                    "requests",
                    Json::Arr(requests.iter().map(|r| r.to_json()).collect()),
                ));
            }
            RequestBody::Commit { handle } => pairs.push(("handle", Json::Int(*handle as i64))),
            RequestBody::Materialize { object } | RequestBody::Watch { object } => {
                pairs.push(("object", Json::str(object.clone())))
            }
            RequestBody::PollWatch { watch } | RequestBody::Unwatch { watch } => {
                pairs.push(("watch", Json::Int(*watch as i64)))
            }
            RequestBody::Sleep { millis } => pairs.push(("millis", Json::Int(*millis as i64))),
            RequestBody::Pin
            | RequestBody::Health
            | RequestBody::Metrics
            | RequestBody::Stats
            | RequestBody::Bye => {}
        }
        Json::obj(pairs)
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> NetResult<Self> {
        let id = wire_u64(json.field("id")?)?;
        let op = json.field("op")?.as_str()?.to_owned();
        let body = match op.as_str() {
            "HELLO" => RequestBody::Hello {
                secret: match json.field("secret")? {
                    Json::Null => None,
                    other => Some(other.as_str()?.to_owned()),
                },
                proto: json.field("proto")?.as_i64()?,
            },
            "VOQL" => RequestBody::Voql {
                src: json.field("src")?.as_str()?.to_owned(),
            },
            "PIN" => RequestBody::Pin,
            "PREPARE" | "APPLY" => {
                let object = json.field("object")?.as_str()?.to_owned();
                let requests = json
                    .field("requests")?
                    .elements()?
                    .iter()
                    .map(|r| UpdateRequest::from_json(r).map_err(|e| NetError::Json(e.to_string())))
                    .collect::<NetResult<Vec<_>>>()?;
                if op == "PREPARE" {
                    RequestBody::Prepare { object, requests }
                } else {
                    RequestBody::Apply { object, requests }
                }
            }
            "COMMIT" => RequestBody::Commit {
                handle: wire_u64(json.field("handle")?)?,
            },
            "MATERIALIZE" => RequestBody::Materialize {
                object: json.field("object")?.as_str()?.to_owned(),
            },
            "WATCH" => RequestBody::Watch {
                object: json.field("object")?.as_str()?.to_owned(),
            },
            "POLL_WATCH" => RequestBody::PollWatch {
                watch: wire_u64(json.field("watch")?)?,
            },
            "UNWATCH" => RequestBody::Unwatch {
                watch: wire_u64(json.field("watch")?)?,
            },
            "HEALTH" => RequestBody::Health,
            "METRICS" => RequestBody::Metrics,
            "STATS" => RequestBody::Stats,
            "SLEEP" => RequestBody::Sleep {
                millis: wire_u64(json.field("millis")?)?,
            },
            "BYE" => RequestBody::Bye,
            other => return Err(NetError::Json(format!("unknown op `{other}`"))),
        };
        Ok(Request { id, body })
    }
}

// ------------------------------------------------------------- responses --

/// One server response: the request's id plus a result.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Correlation id of the request answered (0 for connection-level
    /// failures sent before any request decoded).
    pub id: u64,
    /// Outcome.
    pub result: Result<ResponseBody, WireError>,
}

/// Everything a successful request can return.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseBody {
    /// Handshake accepted.
    Hello {
        /// Server identification string.
        server: String,
        /// Server protocol version.
        proto: i64,
        /// Version the connection's session was pinned at.
        version: u64,
    },
    /// Instances returned by a VOQL `GET`.
    Instances(Vec<VoInstance>),
    /// Informational text (`SHOW …`).
    Text(String),
    /// Instances deleted by a VOQL `DELETE`.
    Deleted(u64),
    /// Instances updated by a VOQL `UPDATE`.
    Updated(u64),
    /// Session re-pinned.
    Pinned {
        /// Version of the new snapshot.
        version: u64,
    },
    /// Batch translated against the pinned snapshot.
    Prepared {
        /// One-shot handle to pass to `COMMIT`.
        handle: u64,
        /// Version the preparation read.
        base_version: u64,
        /// Relations the translators consulted (the conflict footprint).
        touched: Vec<String>,
    },
    /// Batch committed (via `COMMIT` or `APPLY`).
    Committed {
        /// Requests in the batch.
        requests: u64,
        /// Relational ops the translation produced.
        total_ops: u64,
    },
    /// Object materialized server-side.
    Materialized {
        /// Instances in the fresh view.
        instances: u64,
    },
    /// Watch subscription established.
    Watching {
        /// Handle to pass to `POLL_WATCH` / `UNWATCH`.
        watch: u64,
    },
    /// Instance-level changes drained by `POLL_WATCH`.
    Changes(Vec<InstanceChange>),
    /// Health report, as its JSON rendering.
    Health(Json),
    /// Prometheus-style text exposition of every metric.
    Metrics(String),
    /// Server counters.
    Stats(Json),
    /// Acknowledgement with no payload (`UNWATCH`, `SLEEP`, `BYE`).
    Done,
}

impl ResponseBody {
    fn kind(&self) -> &'static str {
        match self {
            ResponseBody::Hello { .. } => "hello",
            ResponseBody::Instances(_) => "instances",
            ResponseBody::Text(_) => "text",
            ResponseBody::Deleted(_) => "deleted",
            ResponseBody::Updated(_) => "updated",
            ResponseBody::Pinned { .. } => "pinned",
            ResponseBody::Prepared { .. } => "prepared",
            ResponseBody::Committed { .. } => "committed",
            ResponseBody::Materialized { .. } => "materialized",
            ResponseBody::Watching { .. } => "watching",
            ResponseBody::Changes(_) => "changes",
            ResponseBody::Health(_) => "health",
            ResponseBody::Metrics(_) => "metrics",
            ResponseBody::Stats(_) => "stats",
            ResponseBody::Done => "done",
        }
    }
}

impl Response {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("id", Json::Int(self.id as i64))];
        match &self.result {
            Ok(body) => {
                pairs.push(("ok", Json::Bool(true)));
                pairs.push(("kind", Json::str(body.kind())));
                match body {
                    ResponseBody::Hello {
                        server,
                        proto,
                        version,
                    } => {
                        pairs.push(("server", Json::str(server.clone())));
                        pairs.push(("proto", Json::Int(*proto)));
                        pairs.push(("version", Json::Int(*version as i64)));
                    }
                    ResponseBody::Instances(instances) => pairs.push((
                        "instances",
                        Json::Arr(instances.iter().map(|i| i.to_json()).collect()),
                    )),
                    ResponseBody::Text(t) | ResponseBody::Metrics(t) => {
                        pairs.push(("text", Json::str(t.clone())))
                    }
                    ResponseBody::Deleted(n) | ResponseBody::Updated(n) => {
                        pairs.push(("count", Json::Int(*n as i64)))
                    }
                    ResponseBody::Pinned { version } => {
                        pairs.push(("version", Json::Int(*version as i64)))
                    }
                    ResponseBody::Prepared {
                        handle,
                        base_version,
                        touched,
                    } => {
                        pairs.push(("handle", Json::Int(*handle as i64)));
                        pairs.push(("base_version", Json::Int(*base_version as i64)));
                        pairs.push((
                            "touched",
                            Json::Arr(touched.iter().map(|t| Json::str(t.clone())).collect()),
                        ));
                    }
                    ResponseBody::Committed {
                        requests,
                        total_ops,
                    } => {
                        pairs.push(("requests", Json::Int(*requests as i64)));
                        pairs.push(("total_ops", Json::Int(*total_ops as i64)));
                    }
                    ResponseBody::Materialized { instances } => {
                        pairs.push(("count", Json::Int(*instances as i64)))
                    }
                    ResponseBody::Watching { watch } => {
                        pairs.push(("watch", Json::Int(*watch as i64)))
                    }
                    ResponseBody::Changes(changes) => pairs.push((
                        "changes",
                        Json::Arr(changes.iter().map(change_to_json).collect()),
                    )),
                    ResponseBody::Health(j) | ResponseBody::Stats(j) => {
                        pairs.push(("report", j.clone()))
                    }
                    ResponseBody::Done => {}
                }
            }
            Err(err) => {
                pairs.push(("ok", Json::Bool(false)));
                pairs.push(("error", err.to_json()));
            }
        }
        Json::obj(pairs)
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> NetResult<Self> {
        let id = wire_u64(json.field("id")?)?;
        if !json.field("ok")?.as_bool()? {
            return Ok(Response {
                id,
                result: Err(WireError::from_json(json.field("error")?)?),
            });
        }
        let kind = json.field("kind")?.as_str()?.to_owned();
        let body = match kind.as_str() {
            "hello" => ResponseBody::Hello {
                server: json.field("server")?.as_str()?.to_owned(),
                proto: json.field("proto")?.as_i64()?,
                version: wire_u64(json.field("version")?)?,
            },
            "instances" => ResponseBody::Instances(
                json.field("instances")?
                    .elements()?
                    .iter()
                    .map(|i| VoInstance::from_json(i).map_err(|e| NetError::Json(e.to_string())))
                    .collect::<NetResult<Vec<_>>>()?,
            ),
            "text" => ResponseBody::Text(json.field("text")?.as_str()?.to_owned()),
            "metrics" => ResponseBody::Metrics(json.field("text")?.as_str()?.to_owned()),
            "deleted" => ResponseBody::Deleted(wire_u64(json.field("count")?)?),
            "updated" => ResponseBody::Updated(wire_u64(json.field("count")?)?),
            "pinned" => ResponseBody::Pinned {
                version: wire_u64(json.field("version")?)?,
            },
            "prepared" => ResponseBody::Prepared {
                handle: wire_u64(json.field("handle")?)?,
                base_version: wire_u64(json.field("base_version")?)?,
                touched: json
                    .field("touched")?
                    .elements()?
                    .iter()
                    .map(|t| Ok(t.as_str()?.to_owned()))
                    .collect::<NetResult<Vec<_>>>()?,
            },
            "committed" => ResponseBody::Committed {
                requests: wire_u64(json.field("requests")?)?,
                total_ops: wire_u64(json.field("total_ops")?)?,
            },
            "materialized" => ResponseBody::Materialized {
                instances: wire_u64(json.field("count")?)?,
            },
            "watching" => ResponseBody::Watching {
                watch: wire_u64(json.field("watch")?)?,
            },
            "changes" => ResponseBody::Changes(
                json.field("changes")?
                    .elements()?
                    .iter()
                    .map(change_from_json)
                    .collect::<NetResult<Vec<_>>>()?,
            ),
            "health" => ResponseBody::Health(json.field("report")?.clone()),
            "stats" => ResponseBody::Stats(json.field("report")?.clone()),
            "done" => ResponseBody::Done,
            other => return Err(NetError::Json(format!("unknown response kind `{other}`"))),
        };
        Ok(Response {
            id,
            result: Ok(body),
        })
    }
}

fn change_to_json(c: &InstanceChange) -> Json {
    let kind = match c.kind {
        ChangeKind::Inserted => "inserted",
        ChangeKind::Removed => "removed",
        ChangeKind::Updated => "updated",
    };
    Json::obj(vec![
        ("pivot", c.pivot.to_json()),
        ("kind", Json::str(kind)),
    ])
}

fn change_from_json(json: &Json) -> NetResult<InstanceChange> {
    let kind = match json.field("kind")?.as_str()? {
        "inserted" => ChangeKind::Inserted,
        "removed" => ChangeKind::Removed,
        "updated" => ChangeKind::Updated,
        other => return Err(NetError::Json(format!("unknown change kind `{other}`"))),
    };
    Ok(InstanceChange {
        pivot: Key::from_json(json.field("pivot")?).map_err(|e| NetError::Json(e.to_string()))?,
        kind,
    })
}

fn wire_u64(json: &Json) -> NetResult<u64> {
    let i = json.as_i64()?;
    u64::try_from(i).map_err(|_| NetError::Json(format!("expected non-negative integer, got {i}")))
}

// ---------------------------------------------------------- typed errors --

/// Machine-readable failure category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Handshake secret missing or wrong.
    Auth,
    /// The server is at its in-flight or queue capacity; retry later.
    Busy,
    /// The server is at its connection limit.
    ConnLimit,
    /// The request frame exceeded the server's size cap.
    TooLarge,
    /// The frame failed checksum or framing validation.
    BadFrame,
    /// The request decoded but is malformed or out of order.
    BadRequest,
    /// VOQL failed to parse; `data.position` carries the byte offset.
    Parse,
    /// First-committer-wins rejected a commit; `data` carries `relation`,
    /// `base_version`, `head_version`.
    Conflict,
    /// Named object, relation, tuple, or handle does not exist.
    NotFound,
    /// The operation is disabled on this server (e.g. `SLEEP` outside
    /// debug mode).
    Unsupported,
    /// Server-side failure not attributable to the request.
    Internal,
}

impl ErrorCode {
    /// Wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Auth => "auth",
            ErrorCode::Busy => "busy",
            ErrorCode::ConnLimit => "conn_limit",
            ErrorCode::TooLarge => "too_large",
            ErrorCode::BadFrame => "bad_frame",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Parse => "parse",
            ErrorCode::Conflict => "conflict",
            ErrorCode::NotFound => "not_found",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> NetResult<Self> {
        Ok(match s {
            "auth" => ErrorCode::Auth,
            "busy" => ErrorCode::Busy,
            "conn_limit" => ErrorCode::ConnLimit,
            "too_large" => ErrorCode::TooLarge,
            "bad_frame" => ErrorCode::BadFrame,
            "bad_request" => ErrorCode::BadRequest,
            "parse" => ErrorCode::Parse,
            "conflict" => ErrorCode::Conflict,
            "not_found" => ErrorCode::NotFound,
            "unsupported" => ErrorCode::Unsupported,
            "internal" => ErrorCode::Internal,
            other => return Err(NetError::Json(format!("unknown error code `{other}`"))),
        })
    }
}

/// A typed error crossing the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Category.
    pub code: ErrorCode,
    /// Human-readable message.
    pub message: String,
    /// Structured extras (conflict versions, parse offsets, …).
    pub data: Option<Json>,
}

impl WireError {
    /// A bare coded error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
            data: None,
        }
    }

    /// Attach structured data.
    pub fn with_data(mut self, data: Json) -> Self {
        self.data = Some(data);
        self
    }

    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("code", Json::str(self.code.as_str())),
            ("message", Json::str(self.message.clone())),
        ];
        if let Some(data) = &self.data {
            pairs.push(("data", data.clone()));
        }
        Json::obj(pairs)
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> NetResult<Self> {
        Ok(WireError {
            code: ErrorCode::from_str(json.field("code")?.as_str()?)?,
            message: json.field("message")?.as_str()?.to_owned(),
            data: json.field("data").ok().cloned(),
        })
    }
}

impl From<&Error> for WireError {
    fn from(e: &Error) -> Self {
        match e {
            Error::SqlParse { position, message } => WireError::new(
                ErrorCode::Parse,
                format!("parse error at byte {position}: {message}"),
            )
            .with_data(Json::obj(vec![("position", Json::Int(*position as i64))])),
            Error::Conflict {
                relation,
                base_version,
                head_version,
            } => WireError::new(ErrorCode::Conflict, e.to_string()).with_data(Json::obj(vec![
                ("relation", Json::str(relation.clone())),
                ("base_version", Json::Int(*base_version as i64)),
                ("head_version", Json::Int(*head_version as i64)),
            ])),
            Error::NoSuchRelation(_)
            | Error::NoSuchAttribute { .. }
            | Error::NoSuchTuple { .. } => WireError::new(ErrorCode::NotFound, e.to_string()),
            // A rolled-back transaction reports its cause's category.
            Error::Rolledback(inner) => WireError::from(inner.as_ref()),
            Error::Storage(_) | Error::Serialization(_) | Error::JournalOverflow { .. } => {
                WireError::new(ErrorCode::Internal, e.to_string())
            }
            _ => WireError::new(ErrorCode::BadRequest, e.to_string()),
        }
    }
}

impl From<&UpdateError> for WireError {
    fn from(e: &UpdateError) -> Self {
        let mut wire = WireError::from(e.source.as_ref());
        wire.message = e.to_string();
        let step = Json::str(format!("{:?}", e.step).to_lowercase());
        wire.data = Some(match wire.data.take() {
            Some(Json::Obj(mut pairs)) => {
                pairs.push(("step".to_owned(), step));
                Json::Obj(pairs)
            }
            _ => Json::obj(vec![("step", step)]),
        });
        wire
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vo_relational::value::Value;

    fn roundtrip_request(req: Request) {
        let json = req.to_json();
        let parsed = vo_obs::json::parse(&json.compact()).unwrap();
        assert_eq!(Request::from_json(&parsed).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let json = resp.to_json();
        let parsed = vo_obs::json::parse(&json.compact()).unwrap();
        assert_eq!(Response::from_json(&parsed).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        for body in [
            RequestBody::Hello {
                secret: Some("s3cret".into()),
                proto: PROTOCOL_VERSION,
            },
            RequestBody::Hello {
                secret: None,
                proto: PROTOCOL_VERSION,
            },
            RequestBody::Voql {
                src: "GET omega WHERE level = 'graduate'".into(),
            },
            RequestBody::Pin,
            RequestBody::Commit { handle: 7 },
            RequestBody::Materialize {
                object: "omega".into(),
            },
            RequestBody::Watch {
                object: "omega".into(),
            },
            RequestBody::PollWatch { watch: 3 },
            RequestBody::Unwatch { watch: 3 },
            RequestBody::Health,
            RequestBody::Metrics,
            RequestBody::Stats,
            RequestBody::Sleep { millis: 250 },
            RequestBody::Bye,
        ] {
            roundtrip_request(Request { id: 42, body });
        }
    }

    #[test]
    fn responses_roundtrip() {
        for result in [
            Ok(ResponseBody::Hello {
                server: "penguin-vo/0.1.0".into(),
                proto: PROTOCOL_VERSION,
                version: 12,
            }),
            Ok(ResponseBody::Text("3 objects".into())),
            Ok(ResponseBody::Deleted(2)),
            Ok(ResponseBody::Updated(1)),
            Ok(ResponseBody::Pinned { version: 9 }),
            Ok(ResponseBody::Prepared {
                handle: 1,
                base_version: 9,
                touched: vec!["COURSES".into(), "GRADES".into()],
            }),
            Ok(ResponseBody::Committed {
                requests: 2,
                total_ops: 5,
            }),
            Ok(ResponseBody::Materialized { instances: 4 }),
            Ok(ResponseBody::Watching { watch: 1 }),
            Ok(ResponseBody::Changes(vec![InstanceChange {
                pivot: Key::new(vec![Value::text("CS101")]),
                kind: ChangeKind::Updated,
            }])),
            Ok(ResponseBody::Metrics("# counters\n".into())),
            Ok(ResponseBody::Done),
            Err(WireError::new(ErrorCode::Busy, "server saturated")),
            Err(
                WireError::new(ErrorCode::Conflict, "validation failed").with_data(Json::obj(
                    vec![
                        ("relation", Json::str("COURSES")),
                        ("base_version", Json::Int(9)),
                        ("head_version", Json::Int(11)),
                    ],
                )),
            ),
        ] {
            roundtrip_response(Response { id: 7, result });
        }
    }

    #[test]
    fn conflict_error_maps_to_typed_code_with_versions() {
        let err = Error::Conflict {
            relation: "COURSES".into(),
            base_version: 4,
            head_version: 6,
        };
        let wire = WireError::from(&err);
        assert_eq!(wire.code, ErrorCode::Conflict);
        let data = wire.data.unwrap();
        assert_eq!(data.field("relation").unwrap().as_str().unwrap(), "COURSES");
        assert_eq!(data.field("base_version").unwrap().as_i64().unwrap(), 4);
        assert_eq!(data.field("head_version").unwrap().as_i64().unwrap(), 6);
    }

    #[test]
    fn parse_error_carries_byte_offset() {
        let err = Error::SqlParse {
            position: 10,
            message: "expected WHERE".into(),
        };
        let wire = WireError::from(&err);
        assert_eq!(wire.code, ErrorCode::Parse);
        assert_eq!(
            wire.data
                .unwrap()
                .field("position")
                .unwrap()
                .as_i64()
                .unwrap(),
            10
        );
    }

    #[test]
    fn rolledback_reports_the_inner_category() {
        let err = Error::Rolledback(Box::new(Error::NoSuchTuple {
            relation: "COURSES".into(),
            key: "CS999".into(),
        }));
        assert_eq!(WireError::from(&err).code, ErrorCode::NotFound);
    }
}
