//! # vo-exec — zero-dependency scoped parallel execution
//!
//! A std-only execution layer for the set-at-a-time instantiation engine:
//! no rayon, no channels, no unsafe — just [`std::thread::scope`], a
//! contiguous partition planner, and an order-preserving chunk mapper.
//!
//! The unit of parallelism in the view-object model is the **pivot
//! tuple**: every instance is derived from exactly one pivot tuple plus
//! edge-plan probes against a shared immutable database, with no
//! cross-instance data dependency. That makes "partition the pivot set
//! into `k` contiguous chunks, run the probe pipeline per chunk, and
//! concatenate per-chunk results in chunk order" both trivially
//! deterministic (output is byte-identical to the sequential pass) and
//! embarrassingly parallel.
//!
//! Three pieces:
//!
//! - [`partition`]: split `len` items into at most `k` contiguous,
//!   near-equal ranges (never an empty range);
//! - [`map_chunks`]: run a fallible chunk closure over a slice on scoped
//!   worker threads and splice results back in chunk order;
//! - [`Parallelism`]: the user-facing knob (`Off | Fixed(n) | Auto`) that
//!   resolves to a worker count against the machine
//!   ([`std::thread::available_parallelism`]) and the workload size, with
//!   a sequential fallback below [`MIN_AUTO_ITEMS`] so small objects never
//!   pay thread spawn.

use std::num::NonZeroUsize;
use std::ops::Range;

/// Below this many items, [`Parallelism::Auto`] resolves to one worker:
/// spawning threads for a handful of pivots costs more than it saves.
pub const MIN_AUTO_ITEMS: usize = 512;

/// Target minimum chunk size for [`Parallelism::Auto`]: the worker count
/// is capped so no chunk shrinks below this many items.
pub const MIN_AUTO_CHUNK: usize = 128;

/// Degree-of-parallelism knob for pivot-partitioned instantiation.
///
/// `Auto` is the production default: all available cores, capped by the
/// partition count so every worker has a meaningful chunk, and a
/// sequential fallback for small inputs. `Fixed(n)` is explicit caller
/// intent and is honored even on tiny inputs (clamped only to the item
/// count, since a chunk must be non-empty). `Off` always runs the
/// sequential path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Always sequential.
    Off,
    /// Exactly `n` workers (clamped to the item count; `Fixed(0)` acts
    /// like `Off`).
    Fixed(usize),
    /// `available_parallelism`, capped so chunks keep at least
    /// [`MIN_AUTO_CHUNK`] items; sequential below [`MIN_AUTO_ITEMS`].
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolve to a concrete worker count for `items` work units.
    /// Always at least 1; never more than `items` (except on empty input,
    /// where it is 1 so callers can unconditionally divide).
    pub fn workers_for(&self, items: usize) -> usize {
        match *self {
            Parallelism::Off => 1,
            Parallelism::Fixed(n) => n.clamp(1, items.max(1)),
            Parallelism::Auto => {
                if items < MIN_AUTO_ITEMS {
                    return 1;
                }
                let avail = available_parallelism();
                avail.min(items / MIN_AUTO_CHUNK).max(1)
            }
        }
    }

    /// Read the knob from the `VO_PARALLELISM` environment variable (see
    /// [`Parallelism::parse`]). Unset or unparseable → `None`.
    pub fn from_env() -> Option<Parallelism> {
        Parallelism::parse(&std::env::var("VO_PARALLELISM").ok()?)
    }

    /// Parse a knob setting: `off`/`0` → `Off`, `auto` → `Auto`, a
    /// positive integer `n` → `Fixed(n)`.
    pub fn parse(raw: &str) -> Option<Parallelism> {
        let v = raw.trim();
        if v.eq_ignore_ascii_case("off") || v == "0" {
            return Some(Parallelism::Off);
        }
        if v.eq_ignore_ascii_case("auto") {
            return Some(Parallelism::Auto);
        }
        v.parse::<usize>().ok().map(Parallelism::Fixed)
    }
}

/// This machine's available parallelism (1 when the query fails).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Split `len` items into at most `chunks` contiguous, near-equal ranges
/// covering `0..len` in order. The first `len % k` ranges carry one extra
/// item. Never returns an empty range: `len == 0` yields no ranges, and
/// `chunks` is clamped to `len`.
pub fn partition(len: usize, chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let k = chunks.clamp(1, len);
    let base = len / k;
    let extra = len % k;
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

/// Run `f` over contiguous chunks of `items` on up to `workers` scoped
/// threads and return the concatenation of the per-chunk outputs **in
/// chunk order** — element order is identical to
/// `f(0, items)` run sequentially, whenever `f` maps each chunk
/// independently.
///
/// `f` receives `(chunk_index, chunk)` and may fail; the first error in
/// chunk order wins (all chunks still run to completion — scoped threads
/// are always joined). With one worker (or one chunk) `f` runs inline on
/// the calling thread: the sequential path stays allocation- and
/// spawn-free. A panicking chunk propagates the panic to the caller after
/// the scope joins the remaining workers.
pub fn map_chunks<T, R, E, F>(items: &[T], workers: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &[T]) -> Result<Vec<R>, E> + Sync,
{
    let ranges = partition(items.len(), workers);
    match ranges.len() {
        0 => return Ok(Vec::new()),
        1 => return f(0, items),
        _ => {}
    }
    let results: Vec<Result<Vec<R>, E>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let chunk = &items[r.clone()];
                let f = &f;
                scope.spawn(move || f(i, chunk))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// Compile-time `Send + Sync` witness. Use it to pin a type's
/// thread-safety so a future `Rc`/`RefCell` regression fails to build:
///
/// ```
/// use vo_exec::assert_send_sync;
/// struct Shared(Vec<u64>);
/// const _: fn() = assert_send_sync::<Shared>;
/// ```
pub fn assert_send_sync<T: Send + Sync>() {}

/// Compile-time `Send` witness for types that cross threads by move but
/// are not shared (`Sync`): a facade handed to a server thread, a value
/// sent through a channel.
///
/// ```
/// use vo_exec::assert_send;
/// struct Owned(std::cell::Cell<u64>);
/// const _: fn() = assert_send::<Owned>;
/// ```
pub fn assert_send<T: Send>() {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn partition_covers_contiguously() {
        for len in [0usize, 1, 2, 7, 100, 101] {
            for k in [1usize, 2, 3, 7, 64] {
                let ranges = partition(len, k);
                if len == 0 {
                    assert!(ranges.is_empty());
                    continue;
                }
                assert!(ranges.len() <= k);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                assert!(ranges.iter().all(|r| !r.is_empty()));
                // near-equal: sizes differ by at most one
                let sizes: Vec<usize> = ranges.iter().map(ExactSizeIterator::len).collect();
                let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(hi - lo <= 1, "len={len} k={k} sizes={sizes:?}");
            }
        }
    }

    #[test]
    fn map_chunks_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for workers in [1usize, 2, 3, 7, 16] {
            let out: Vec<u64> = map_chunks(&items, workers, |_, chunk| {
                Ok::<_, ()>(chunk.iter().map(|v| v * 2).collect())
            })
            .unwrap();
            assert_eq!(out, items.iter().map(|v| v * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_chunks_runs_every_chunk_on_some_thread() {
        let items: Vec<usize> = (0..64).collect();
        let calls = AtomicUsize::new(0);
        let out = map_chunks(&items, 4, |idx, chunk| {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok::<_, ()>(vec![(idx, chunk.len())])
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert_eq!(out.len(), 4);
        assert_eq!(out.iter().map(|&(_, n)| n).sum::<usize>(), 64);
        // chunk indexes come back in order
        assert_eq!(
            out.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
    }

    #[test]
    fn map_chunks_first_error_in_chunk_order_wins() {
        let items: Vec<usize> = (0..100).collect();
        let err = map_chunks(&items, 4, |idx, _| {
            if idx >= 1 {
                Err(format!("chunk {idx} failed"))
            } else {
                Ok(vec![idx])
            }
        })
        .unwrap_err();
        assert_eq!(err, "chunk 1 failed");
    }

    #[test]
    fn map_chunks_empty_input() {
        let items: Vec<u64> = Vec::new();
        let out: Vec<u64> = map_chunks(&items, 8, |_, c| Ok::<_, ()>(c.to_vec())).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn map_chunks_single_worker_runs_inline() {
        let items = [1u64, 2, 3];
        let caller = std::thread::current().id();
        map_chunks(&items, 1, |_, c| {
            assert_eq!(std::thread::current().id(), caller);
            Ok::<_, ()>(c.to_vec())
        })
        .unwrap();
    }

    #[test]
    fn parallelism_resolution() {
        assert_eq!(Parallelism::Off.workers_for(1_000_000), 1);
        assert_eq!(Parallelism::Fixed(4).workers_for(1_000_000), 4);
        // Fixed is honored on small inputs (clamped to item count only)
        assert_eq!(Parallelism::Fixed(4).workers_for(3), 3);
        assert_eq!(Parallelism::Fixed(4).workers_for(0), 1);
        assert_eq!(Parallelism::Fixed(0).workers_for(10), 1);
        // Auto falls back to sequential below the threshold...
        assert_eq!(Parallelism::Auto.workers_for(MIN_AUTO_ITEMS - 1), 1);
        // ...and above it never exceeds the machine or the chunk floor
        let w = Parallelism::Auto.workers_for(100_000);
        assert!(w >= 1 && w <= available_parallelism());
        assert!(Parallelism::Auto.workers_for(MIN_AUTO_ITEMS) * MIN_AUTO_CHUNK <= MIN_AUTO_ITEMS);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }

    #[test]
    fn parallelism_parses_knob_settings() {
        assert_eq!(Parallelism::parse("off"), Some(Parallelism::Off));
        assert_eq!(Parallelism::parse("0"), Some(Parallelism::Off));
        assert_eq!(Parallelism::parse("Auto"), Some(Parallelism::Auto));
        assert_eq!(Parallelism::parse(" 4 "), Some(Parallelism::Fixed(4)));
        assert_eq!(Parallelism::parse("banana"), None);
    }

    #[test]
    fn parallelism_larger_chunks_saturate_machine() {
        // at >= avail * MIN_AUTO_CHUNK items, Auto uses every core
        let avail = available_parallelism();
        let items = (avail * MIN_AUTO_CHUNK).max(MIN_AUTO_ITEMS);
        assert_eq!(Parallelism::Auto.workers_for(items), avail);
    }
}
