//! Structured operator-tree profiles for `EXPLAIN ANALYZE` and
//! `Penguin::profile()`.
//!
//! A [`ProfileNode`] mirrors one node of an executed operator tree (a
//! relational algebra operator, an instantiation edge step, a translate
//! phase) and carries the measurements the paper's cost arguments are
//! about: rows in/out, wall time, and the access path taken.

use crate::json::Json;
use std::time::Duration;

/// One node of an executed operator tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileNode {
    /// Operator label, e.g. `Join[a=b]` or `Probe(GRADES)`.
    pub label: String,
    /// Access path taken, e.g. `index probe`, `hash fallback`, `table scan`;
    /// empty for operators without a table access.
    pub access_path: String,
    /// Rows entering the operator (sum over inputs).
    pub rows_in: u64,
    /// Rows produced.
    pub rows_out: u64,
    /// Inclusive wall time in microseconds (children included).
    pub elapsed_us: u64,
    /// Input operators, left to right.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// A node with just a label.
    pub fn new(label: impl Into<String>) -> Self {
        ProfileNode {
            label: label.into(),
            ..ProfileNode::default()
        }
    }

    /// Set the inclusive elapsed time from a [`Duration`].
    pub fn set_elapsed(&mut self, d: Duration) {
        self.elapsed_us = d.as_micros() as u64;
    }

    /// Total node count of the subtree (including `self`).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(ProfileNode::size).sum::<usize>()
    }

    /// True when `pred` holds for any node of the subtree.
    pub fn any(&self, pred: &dyn Fn(&ProfileNode) -> bool) -> bool {
        pred(self) || self.children.iter().any(|c| c.any(pred))
    }

    /// Depth-first search for the first node whose label contains `needle`.
    pub fn find(&self, needle: &str) -> Option<&ProfileNode> {
        if self.label.contains(needle) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(needle))
    }

    /// Render the subtree as an indented text table, one operator per line:
    ///
    /// ```text
    /// Project[course_id]  (rows_in=2 rows_out=2 time=14us)
    ///   Select[dept_name = 'CS']  (rows_in=3 rows_out=2 time=11us)
    ///     Scan(COURSES)  (rows_in=0 rows_out=3 time=4us access=table scan)
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.label);
        out.push_str(&format!(
            "  (rows_in={} rows_out={} time={}us",
            self.rows_in, self.rows_out, self.elapsed_us
        ));
        if !self.access_path.is_empty() {
            out.push_str(&format!(" access={}", self.access_path));
        }
        out.push_str(")\n");
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    /// The subtree as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("label", Json::str(self.label.clone())),
            ("rows_in", Json::Int(self.rows_in as i64)),
            ("rows_out", Json::Int(self.rows_out as i64)),
            ("elapsed_us", Json::Int(self.elapsed_us as i64)),
        ];
        if !self.access_path.is_empty() {
            pairs.push(("access_path", Json::str(self.access_path.clone())));
        }
        pairs.push((
            "children",
            Json::Arr(self.children.iter().map(ProfileNode::to_json).collect()),
        ));
        Json::obj(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ProfileNode {
        let mut scan = ProfileNode::new("Scan(COURSES)");
        scan.access_path = "table scan".into();
        scan.rows_out = 3;
        let mut select = ProfileNode::new("Select[dept = 'CS']");
        select.rows_in = 3;
        select.rows_out = 2;
        select.elapsed_us = 11;
        select.children.push(scan);
        select
    }

    #[test]
    fn render_indents_and_labels() {
        let s = sample().render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("Select[dept = 'CS']"));
        assert!(lines[0].contains("rows_in=3 rows_out=2 time=11us"));
        assert!(lines[1].starts_with("  Scan(COURSES)"));
        assert!(lines[1].contains("access=table scan"));
    }

    #[test]
    fn queries_over_the_tree() {
        let p = sample();
        assert_eq!(p.size(), 2);
        assert!(p.any(&|n| n.access_path == "table scan"));
        assert!(!p.any(&|n| n.access_path == "index probe"));
        assert_eq!(p.find("Scan").unwrap().rows_out, 3);
        assert!(p.find("Join").is_none());
    }

    #[test]
    fn json_shape() {
        let j = sample().to_json();
        assert_eq!(
            j.field("children").unwrap().elements().unwrap()[0]
                .field("access_path")
                .unwrap()
                .as_str()
                .unwrap(),
            "table scan"
        );
        // access_path omitted when empty
        assert!(j.field("access_path").is_err());
    }
}
