//! A minimal JSON document model, parser, and pretty-printer.
//!
//! The catalog layer persists whole PENGUIN systems (schema + data +
//! objects + translators) as JSON, and the observability layer exports
//! traces, metrics, and profiles through the same document model. Rather
//! than depend on an external serialization framework, the persisted type
//! closure is small enough to hand-code against this document model:
//! [`Json`] is the tree, [`parse`] reads a string, [`Json::pretty`]
//! renders one with stable, human-diffable formatting, and
//! [`Json::compact`] renders a single line (for JSONL streams).
//!
//! Integers and floats are kept as distinct variants so `i64` values
//! round-trip exactly; floats print with Rust's shortest-roundtrip
//! formatting.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// An error from the JSON layer (parse failure or shape mismatch).
///
/// Deliberately a plain message: callers living in richer error taxonomies
/// convert via their own `From<JsonError>` impls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for the JSON layer.
pub type Result<T> = std::result::Result<T, JsonError>;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fraction or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Look up a field of an object; error if missing or not an object.
    pub fn field(&self, name: &str) -> Result<&Json> {
        match self {
            Json::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| bad(format!("missing field `{name}`"))),
            other => Err(bad(format!(
                "expected object with field `{name}`, got {}",
                other.kind()
            ))),
        }
    }

    /// The array elements; error for non-arrays.
    pub fn elements(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(bad(format!("expected array, got {}", other.kind()))),
        }
    }

    /// The object entries; error for non-objects.
    pub fn entries(&self) -> Result<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Ok(pairs),
            other => Err(bad(format!("expected object, got {}", other.kind()))),
        }
    }

    /// The string payload; error otherwise.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(bad(format!("expected string, got {}", other.kind()))),
        }
    }

    /// The integer payload; error otherwise.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Json::Int(i) => Ok(*i),
            other => Err(bad(format!("expected integer, got {}", other.kind()))),
        }
    }

    /// `usize` convenience over [`Json::as_i64`].
    pub fn as_usize(&self) -> Result<usize> {
        let i = self.as_i64()?;
        usize::try_from(i).map_err(|_| bad(format!("expected non-negative integer, got {i}")))
    }

    /// The numeric payload widened to `f64`; error otherwise.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Json::Int(i) => Ok(*i as f64),
            Json::Float(x) => Ok(*x),
            other => Err(bad(format!("expected number, got {}", other.kind()))),
        }
    }

    /// The boolean payload; error otherwise.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(bad(format!("expected bool, got {}", other.kind()))),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Render with two-space indentation and `\n` line endings.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Render on a single line with no insignificant whitespace — the shape
    /// used for JSONL trace exports and per-measurement bench records.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => write_float(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    pub(crate) fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => write_float(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    // JSON has no literals for non-finite numbers; encode them as tagged
    // strings and let the Value codec recognise them on the way back in.
    if x.is_nan() {
        out.push_str("\"NaN\"");
    } else if x.is_infinite() {
        out.push_str(if x > 0.0 { "\"inf\"" } else { "\"-inf\"" });
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a fraction marker so the parser reads it back as Float.
        let _ = write!(out, "{x:.1}");
    } else {
        let _ = write!(out, "{x}");
    }
}

pub(crate) fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn bad(msg: impl Into<String>) -> JsonError {
    JsonError(msg.into())
}

/// Parse a JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Json> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(bad(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(bad(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(bad(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json> {
        if depth > MAX_DEPTH {
            return Err(bad("document nested too deeply"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(bad(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(bad(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut pairs: Vec<(String, Json)> = Vec::new();
        let mut seen = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(bad(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(bad(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(bad("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(bad("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000C}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(bad("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| bad("invalid unicode escape"))?);
                        }
                        other => return Err(bad(format!("invalid escape `\\{}`", other as char))),
                    }
                }
                b if b < 0x20 => return Err(bad("control character in string")),
                // Plain ASCII (the `"` / `\` / control cases matched above).
                b if b < 0x80 => s.push(b as char),
                _ => {
                    // Multi-byte UTF-8: back up one byte and decode just
                    // the next character (at most 4 bytes) — validating
                    // the whole remaining input here would make string
                    // parsing quadratic.
                    self.pos -= 1;
                    let end = (self.pos + 4).min(self.bytes.len());
                    let rest = &self.bytes[self.pos..end];
                    let c = match std::str::from_utf8(rest) {
                        Ok(text) => text.chars().next(),
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&rest[..e.valid_up_to()])
                                .unwrap()
                                .chars()
                                .next()
                        }
                        Err(_) => None,
                    };
                    let c = c.ok_or_else(|| bad("invalid UTF-8 in string"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(bad("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| bad("invalid unicode escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| bad("invalid unicode escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| bad(format!("invalid number `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| bad(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for src in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.pretty()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn nested_roundtrip() {
        let v = Json::obj(vec![
            ("name", Json::str("GRADES")),
            (
                "rows",
                Json::Arr(vec![
                    Json::Arr(vec![Json::Int(1), Json::Null, Json::Float(2.5)]),
                    Json::Arr(vec![]),
                ]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn compact_is_single_line_and_roundtrips() {
        let v = Json::obj(vec![
            ("metric", Json::str("bench.instantiate")),
            ("value", Json::Float(12.5)),
            ("tags", Json::Arr(vec![Json::Int(1), Json::Null])),
        ]);
        let line = v.compact();
        assert!(!line.contains('\n'));
        assert_eq!(
            line,
            "{\"metric\":\"bench.instantiate\",\"value\":12.5,\"tags\":[1,null]}"
        );
        assert_eq!(parse(&line).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\nbreak \"quoted\" back\\slash tab\t unicode ü 🦀";
        let v = Json::str(s);
        let parsed = parse(&v.pretty()).unwrap();
        assert_eq!(parsed.as_str().unwrap(), s);
    }

    #[test]
    fn surrogate_pair_parses() {
        assert_eq!(parse("\"\\ud83e\\udd80\"").unwrap().as_str().unwrap(), "🦀");
    }

    #[test]
    fn malformed_inputs_rejected() {
        for src in [
            "{not json",
            "[1, 2",
            "{\"a\": }",
            "\"unterminated",
            "12trailing",
            "[1] extra",
            "{\"a\":1,\"a\":2}",
            "nul",
            "--1",
        ] {
            assert!(parse(src).is_err(), "accepted {src:?}");
        }
    }

    #[test]
    fn float_shape_preserved() {
        // Integral floats keep a fraction marker so they parse back as Float.
        assert_eq!(parse(&Json::Float(2.0).pretty()).unwrap(), Json::Float(2.0));
        assert_eq!(parse(&Json::Int(2).pretty()).unwrap(), Json::Int(2));
    }

    #[test]
    fn i64_extremes_roundtrip() {
        for i in [i64::MIN, i64::MAX, 0, -1] {
            assert_eq!(parse(&Json::Int(i).pretty()).unwrap(), Json::Int(i));
        }
    }

    #[test]
    fn nonfinite_floats_encode_as_strings() {
        assert_eq!(Json::Float(f64::NAN).pretty(), "\"NaN\"");
        assert_eq!(Json::Float(f64::INFINITY).pretty(), "\"inf\"");
    }

    #[test]
    fn deep_nesting_rejected() {
        let src = "[".repeat(200) + &"]".repeat(200);
        assert!(parse(&src).is_err());
    }
}
