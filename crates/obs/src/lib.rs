//! # vo-obs — observability substrate for the PENGUIN stack
//!
//! Zero-dependency tracing, metrics, and profiling shared by every layer
//! of the view-object reproduction:
//!
//! - [`trace`] — a span-based tracer: thread-local span stacks, monotonic
//!   timings, a bounded global event collector, and JSONL export. Off by
//!   default; each instrumentation point costs one relaxed atomic load
//!   while disabled.
//! - [`metrics`] — a registry of named counters and log₂-bucket latency
//!   histograms with interned `&'static` atomic handles, so hot-path
//!   increments cost the same as hand-rolled statics.
//! - [`profile`] — the operator-tree profile returned by
//!   `EXPLAIN ANALYZE` and `Penguin::profile()`: rows in/out, wall time,
//!   and the access path per node.
//! - [`json`] — the in-tree JSON document model (moved here from
//!   `vo-relational` so every layer, including this one, can share it
//!   without a dependency cycle).
//! - [`sink`] — the telemetry pipeline: pluggable [`sink::TelemetrySink`]s
//!   (buffered JSONL file, in-memory) fed by a [`sink::TelemetryPipeline`]
//!   that drains the trace ring with head-based trace sampling while
//!   always keeping error and slow spans.
//! - [`slowlog`] — a bounded ring of spans that crossed a per-name
//!   duration threshold, kept with full fields regardless of sampling.
//! - [`health`] — a programmable [`health::HealthPolicy`] turning journal
//!   lag, persistence lag, view staleness, WAL growth, recovery outcome
//!   and cache hit ratios into an Ok/Degraded/Unhealthy
//!   [`health::HealthReport`] with machine-readable reasons.
//!
//! This crate sits below `vo-relational` and therefore depends on nothing
//! in the workspace.

pub mod health;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod slowlog;
pub mod trace;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::health::{
        HealthInputs, HealthPolicy, HealthReason, HealthReport, HealthStatus, StalenessInput,
    };
    pub use crate::json::{Json, JsonError};
    pub use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot};
    pub use crate::profile::ProfileNode;
    pub use crate::sink::{
        DrainStats, FileSink, MemorySink, SamplingPolicy, TelemetryPipeline, TelemetrySink,
    };
    pub use crate::slowlog::SlowOp;
    pub use crate::trace::{SpanEvent, SpanGuard, TraceScope, Verbosity};
}
