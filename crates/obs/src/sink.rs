//! The telemetry pipeline: drain the trace ring through a sampling
//! policy into an export sink.
//!
//! The tracer collects spans into a bounded in-process ring
//! ([`crate::trace`]); that is fine for tests and ad-hoc debugging but
//! useless for operating a long-running system — nothing leaves the
//! process, and the ring silently evicts under load. This module adds the
//! missing export leg:
//!
//! - [`TelemetrySink`] — where exported lines go. [`FileSink`] appends
//!   buffered JSONL to a file; [`MemorySink`] collects lines in memory
//!   for tests (clone the sink before boxing to keep an inspection
//!   handle).
//! - [`SamplingPolicy`] — head-based sampling: keep 1-in-N *traces*
//!   (grouped by [`SpanEvent::root`], so a kept trace is kept whole on
//!   each thread's subtree), while always keeping spans that crossed
//!   their slow-log threshold ([`crate::slowlog`]) and spans carrying an
//!   `error` field. The pipeline pushes the same rate into the tracer's
//!   record-time head sampler ([`trace::set_head_sample`]) so sampled-out
//!   traces skip field storage, clock reads, and ring pushes entirely;
//!   the drain-time filter re-applies the identical hash as a backstop
//!   and to discard thresholded-but-not-slow spans of dropped traces.
//! - [`TelemetryPipeline`] — owns a sink, a policy, and a
//!   [`trace::TraceScope`] keeping the tracer enabled;
//!   [`TelemetryPipeline::drain`] moves everything out of the ring,
//!   filters, writes one compact JSON object per line, and flushes.
//!
//! Configure from the environment with `VO_TELEMETRY` (see
//! [`TelemetryPipeline::from_env`]):
//!
//! ```text
//! VO_TELEMETRY=/var/log/penguin/trace.jsonl,sample=16
//! ```

use crate::json::Json;
use crate::trace::{self, SpanEvent, TraceScope};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

fn kept_counter() -> crate::metrics::Counter {
    static C: OnceLock<crate::metrics::Counter> = OnceLock::new();
    *C.get_or_init(|| crate::metrics::counter("obs.telemetry.kept"))
}

fn sampled_out_counter() -> crate::metrics::Counter {
    static C: OnceLock<crate::metrics::Counter> = OnceLock::new();
    *C.get_or_init(|| crate::metrics::counter("obs.telemetry.sampled_out"))
}

fn flush_counter() -> crate::metrics::Counter {
    static C: OnceLock<crate::metrics::Counter> = OnceLock::new();
    *C.get_or_init(|| crate::metrics::counter("obs.telemetry.flushes"))
}

/// Destination of exported telemetry lines. Implementations buffer as
/// they like; [`TelemetrySink::flush`] must make previous writes
/// observable (file contents, memory vector, ...).
pub trait TelemetrySink: Send {
    /// Append one line (without the trailing newline).
    fn write_line(&mut self, line: &str) -> io::Result<()>;
    /// Flush any buffered lines to the backing medium.
    fn flush(&mut self) -> io::Result<()>;
}

/// A buffered JSONL file sink (append mode; the file is created if
/// missing).
#[derive(Debug)]
pub struct FileSink {
    path: PathBuf,
    writer: BufWriter<std::fs::File>,
}

impl FileSink {
    /// Open `path` for appending, creating parent directories as needed.
    pub fn create(path: impl Into<PathBuf>) -> io::Result<FileSink> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        Ok(FileSink {
            path,
            writer: BufWriter::new(file),
        })
    }

    /// The file this sink appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl TelemetrySink for FileSink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// An in-memory sink for tests. Cloning shares the underlying buffer, so
/// keep a clone before handing the sink to a pipeline and inspect
/// [`MemorySink::lines`] afterwards.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl MemorySink {
    /// A fresh, empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Copy of every line written so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().unwrap().clone()
    }

    /// Number of lines written so far.
    pub fn len(&self) -> usize {
        self.lines.lock().unwrap().len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.lines.lock().unwrap().is_empty()
    }
}

impl TelemetrySink for MemorySink {
    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.lines.lock().unwrap().push(line.to_owned());
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Head-based sampling policy applied at drain time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingPolicy {
    /// Keep one in this many traces (grouped by [`SpanEvent::root`]);
    /// `0` and `1` both mean "keep everything".
    pub sample_every: u64,
    /// Always keep spans that crossed their [`crate::slowlog`] threshold.
    pub keep_slow: bool,
    /// Always keep spans and events carrying an `error` field.
    pub keep_errors: bool,
    /// Record per-row debug events ([`trace::debug_event_with`] — probe
    /// steps, enumeration criteria) while this pipeline is attached.
    /// Off by default: per-row events cost more than the operations they
    /// annotate, so a production pipeline runs the tracer at
    /// [`trace::Verbosity::Info`].
    pub debug_events: bool,
}

impl Default for SamplingPolicy {
    /// Keep everything; slow and error spans exempt from any sampling;
    /// per-row debug events off.
    fn default() -> Self {
        SamplingPolicy {
            sample_every: 1,
            keep_slow: true,
            keep_errors: true,
            debug_events: false,
        }
    }
}

impl SamplingPolicy {
    /// Keep 1-in-`n` traces (slow/error spans still always kept).
    pub fn one_in(n: u64) -> SamplingPolicy {
        SamplingPolicy {
            sample_every: n.max(1),
            ..SamplingPolicy::default()
        }
    }

    /// Whether `event` survives this policy.
    pub fn keeps(&self, event: &SpanEvent) -> bool {
        if self.keep_errors && event.field("error").is_some() {
            return true;
        }
        if self.keep_slow && crate::slowlog::crossed(event).is_some() {
            return true;
        }
        if self.sample_every <= 1 {
            return true;
        }
        // Same hash as the tracer's record-time head sampler
        // ([`trace::set_head_sample`]), so drain and record agree on
        // which traces survive.
        trace::mix(event.root).is_multiple_of(self.sample_every)
    }
}

/// What one [`TelemetryPipeline::drain`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrainStats {
    /// Events taken out of the trace ring.
    pub drained: u64,
    /// Events written to the sink.
    pub kept: u64,
    /// Events discarded by the sampling policy — at drain time, plus
    /// spans the tracer's record-time head sampler never collected.
    pub sampled_out: u64,
    /// Ring evictions since tracing started (events lost *before* any
    /// drain could see them — a signal the flush cadence is too slow).
    pub ring_dropped: u64,
}

/// A telemetry pipeline: trace ring → sampling policy → sink.
///
/// Holding a pipeline keeps tracing enabled (it owns a
/// [`TraceScope`]); dropping it drains and flushes one last time,
/// best-effort. The trace ring is process-global, so run at most one
/// pipeline per process — two would steal events from each other.
pub struct TelemetryPipeline {
    sink: Box<dyn TelemetrySink>,
    policy: SamplingPolicy,
    totals: DrainStats,
    /// Verbosity in force before this pipeline attached; restored on drop.
    prev_verbosity: trace::Verbosity,
    /// Head-sampling rate in force before this pipeline attached;
    /// restored on drop.
    prev_head_sample: u64,
    _scope: TraceScope,
}

impl std::fmt::Debug for TelemetryPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryPipeline")
            .field("policy", &self.policy)
            .field("totals", &self.totals)
            .finish_non_exhaustive()
    }
}

impl TelemetryPipeline {
    /// Build a pipeline over `sink` with `policy`, enabling tracing for
    /// the pipeline's lifetime. The tracer's verbosity follows
    /// [`SamplingPolicy::debug_events`], and its record-time head sampler
    /// is set to the policy's `sample_every` so sampled-out traces cost
    /// almost nothing to begin with (both settings are restored when the
    /// pipeline drops).
    pub fn new(sink: Box<dyn TelemetrySink>, policy: SamplingPolicy) -> TelemetryPipeline {
        let prev_verbosity = trace::set_verbosity(if policy.debug_events {
            trace::Verbosity::Debug
        } else {
            trace::Verbosity::Info
        });
        let prev_head_sample = trace::set_head_sample(policy.sample_every);
        TelemetryPipeline {
            sink,
            policy,
            totals: DrainStats::default(),
            prev_verbosity,
            prev_head_sample,
            _scope: trace::start_trace(),
        }
    }

    /// Build a pipeline from the `VO_TELEMETRY` environment variable, if
    /// set. Format: `<path>[,sample=N][,no-slow][,no-errors][,debug]` —
    /// a JSONL file path, optionally followed by the sampling rate
    /// (default 1 = keep everything), opt-outs of the always-keep rules,
    /// and `debug` to also record per-row debug events. Returns `None`
    /// when unset or empty; a malformed value or unopenable path yields
    /// the error.
    pub fn from_env() -> Option<io::Result<TelemetryPipeline>> {
        let spec = std::env::var("VO_TELEMETRY").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        Some(Self::from_spec(&spec))
    }

    /// Parse a `VO_TELEMETRY`-format spec (see
    /// [`TelemetryPipeline::from_env`]).
    pub fn from_spec(spec: &str) -> io::Result<TelemetryPipeline> {
        let mut parts = spec.split(',');
        let path = parts.next().unwrap_or("").trim();
        if path.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "VO_TELEMETRY: empty sink path",
            ));
        }
        let mut policy = SamplingPolicy::default();
        for part in parts {
            let part = part.trim();
            if let Some(n) = part.strip_prefix("sample=") {
                policy.sample_every = n.parse::<u64>().map_err(|_| {
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("VO_TELEMETRY: bad sample rate `{n}`"),
                    )
                })?;
            } else if part == "no-slow" {
                policy.keep_slow = false;
            } else if part == "no-errors" {
                policy.keep_errors = false;
            } else if part == "debug" {
                policy.debug_events = true;
            } else if !part.is_empty() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("VO_TELEMETRY: unknown option `{part}`"),
                ));
            }
        }
        Ok(TelemetryPipeline::new(
            Box::new(FileSink::create(path)?),
            policy,
        ))
    }

    /// The sampling policy in force.
    pub fn policy(&self) -> SamplingPolicy {
        self.policy
    }

    /// Replace the sampling policy (applies from the next drain; the
    /// tracer verbosity and head-sampling rate follow the new policy).
    pub fn set_policy(&mut self, policy: SamplingPolicy) {
        self.policy = policy;
        trace::set_verbosity(if policy.debug_events {
            trace::Verbosity::Debug
        } else {
            trace::Verbosity::Info
        });
        trace::set_head_sample(policy.sample_every);
    }

    /// Lifetime totals across every drain so far.
    pub fn totals(&self) -> DrainStats {
        self.totals
    }

    /// Move every collected event out of the trace ring, write the ones
    /// the sampling policy keeps as compact JSONL, and flush the sink.
    pub fn drain(&mut self) -> io::Result<DrainStats> {
        let events = trace::take();
        let mut stats = DrainStats {
            drained: events.len() as u64,
            // spans the record-time head sampler never collected count as
            // sampled out — they were dropped by this pipeline's policy
            sampled_out: trace::take_head_skipped(),
            ring_dropped: trace::dropped(),
            ..DrainStats::default()
        };
        let mut line = String::with_capacity(256);
        for event in &events {
            if self.policy.keeps(event) {
                line.clear();
                event.write_jsonl(&mut line);
                self.sink.write_line(&line)?;
                stats.kept += 1;
            } else {
                stats.sampled_out += 1;
            }
        }
        self.sink.flush()?;
        kept_counter().add(stats.kept);
        sampled_out_counter().add(stats.sampled_out);
        flush_counter().inc();
        self.totals.drained += stats.drained;
        self.totals.kept += stats.kept;
        self.totals.sampled_out += stats.sampled_out;
        self.totals.ring_dropped = stats.ring_dropped;
        Ok(stats)
    }

    /// Export one extra, non-span JSONL line through the same sink (the
    /// facade uses this for health-transition records); subject to no
    /// sampling.
    pub fn emit_json(&mut self, value: &Json) -> io::Result<()> {
        self.sink.write_line(&value.compact())?;
        self.sink.flush()
    }
}

impl Drop for TelemetryPipeline {
    /// Final drain + flush, best-effort: telemetry loss on teardown must
    /// never turn into a panic or mask the real error path. Restores the
    /// tracer verbosity the pipeline found at attach time.
    fn drop(&mut self) {
        let _ = self.drain();
        trace::set_verbosity(self.prev_verbosity);
        trace::set_head_sample(self.prev_head_sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slowlog;
    use crate::trace::test_serial;
    use std::time::Duration;

    #[test]
    fn memory_sink_pipeline_roundtrips_jsonl() {
        let _serial = test_serial();
        let sink = MemorySink::new();
        let handle = sink.clone();
        let mut pipe = TelemetryPipeline::new(Box::new(sink), SamplingPolicy::default());
        trace::take(); // isolate from earlier tests' leftovers
        {
            let mut s = trace::span("test.sink.op");
            s.field("rows", Json::Int(5));
        }
        let stats = pipe.drain().unwrap();
        assert_eq!(stats.sampled_out, 0);
        assert!(stats.kept >= 1);
        let lines = handle.lines();
        let mine: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("test.sink.op"))
            .collect();
        assert_eq!(mine.len(), 1);
        let parsed = crate::json::parse(mine[0]).unwrap();
        assert_eq!(
            parsed.field("name").unwrap().as_str().unwrap(),
            "test.sink.op"
        );
        assert_eq!(
            parsed
                .field("fields")
                .unwrap()
                .field("rows")
                .unwrap()
                .as_i64()
                .unwrap(),
            5
        );
    }

    #[test]
    fn sampling_keeps_whole_traces() {
        let _serial = test_serial();
        let sink = MemorySink::new();
        let handle = sink.clone();
        let mut pipe = TelemetryPipeline::new(Box::new(sink), SamplingPolicy::one_in(4));
        trace::take();
        const TRACES: usize = 64;
        for _ in 0..TRACES {
            let _root = trace::span("test.sample.root");
            let _child = trace::span("test.sample.child");
        }
        pipe.drain().unwrap();
        let lines = handle.lines();
        let mut kept_roots = std::collections::BTreeMap::<i64, (u64, u64)>::new();
        for line in lines.iter().filter(|l| l.contains("test.sample.")) {
            let v = crate::json::parse(line).unwrap();
            let root = v.field("root").unwrap().as_i64().unwrap();
            let name = v.field("name").unwrap().as_str().unwrap().to_owned();
            let e = kept_roots.entry(root).or_default();
            if name.ends_with("root") {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        // every kept trace is complete: the root and its child together
        for (root, (roots, children)) in &kept_roots {
            assert_eq!(*roots, 1, "root {root}");
            assert_eq!(*children, 1, "root {root}");
        }
        // and roughly 1-in-4 of the traces survived (binomially spread)
        assert!(!kept_roots.is_empty());
        assert!(
            kept_roots.len() < TRACES / 2,
            "sampling kept {} of {TRACES} traces",
            kept_roots.len()
        );
    }

    #[test]
    fn slow_and_error_spans_bypass_sampling() {
        let _serial = test_serial();
        let sink = MemorySink::new();
        let handle = sink.clone();
        // sample_every = u64::MAX: nothing survives except the exempt spans
        let mut pipe = TelemetryPipeline::new(
            Box::new(sink),
            SamplingPolicy {
                sample_every: u64::MAX,
                ..SamplingPolicy::default()
            },
        );
        trace::take();
        slowlog::threshold("test.sink.slow", Duration::from_micros(1));
        {
            let _s = trace::span("test.sink.slow");
            std::thread::sleep(Duration::from_millis(2));
        }
        trace::event_with("test.sink.error", || vec![("error", Json::str("boom"))]);
        {
            let _s = trace::span("test.sink.plain");
        }
        let stats = pipe.drain().unwrap();
        assert!(stats.sampled_out >= 1);
        let lines = handle.lines();
        assert!(lines.iter().any(|l| l.contains("test.sink.slow")));
        assert!(lines.iter().any(|l| l.contains("test.sink.error")));
        assert!(!lines.iter().any(|l| l.contains("test.sink.plain")));
        slowlog::clear_threshold("test.sink.slow");
        slowlog::clear();
    }

    #[test]
    fn file_sink_appends_parseable_lines() {
        let _serial = test_serial();
        let path = std::env::temp_dir().join(format!(
            "vo_obs_sink_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_file(&path).ok();
        {
            let mut pipe = TelemetryPipeline::new(
                Box::new(FileSink::create(&path).unwrap()),
                SamplingPolicy::default(),
            );
            trace::take();
            {
                let _s = trace::span("test.sink.file");
            }
            pipe.drain().unwrap();
            // drop drains again (empty) and flushes
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        let mine: Vec<&str> = contents
            .lines()
            .filter(|l| l.contains("test.sink.file"))
            .collect();
        assert_eq!(mine.len(), 1);
        crate::json::parse(mine[0]).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pipeline_runs_tracer_at_info_and_restores_verbosity() {
        let _serial = test_serial();
        let base = trace::verbosity();
        {
            let _pipe =
                TelemetryPipeline::new(Box::new(MemorySink::new()), SamplingPolicy::default());
            assert_eq!(trace::verbosity(), trace::Verbosity::Info);
            // per-row debug events are skipped under a production pipeline
            trace::debug_event_with("test.sink.debug_gated", || {
                panic!("debug closure must not run at Info")
            });
        }
        assert_eq!(trace::verbosity(), base);
        let mut pipe = TelemetryPipeline::new(
            Box::new(MemorySink::new()),
            SamplingPolicy {
                debug_events: true,
                ..SamplingPolicy::default()
            },
        );
        assert_eq!(trace::verbosity(), trace::Verbosity::Debug);
        pipe.set_policy(SamplingPolicy::default());
        assert_eq!(trace::verbosity(), trace::Verbosity::Info);
        drop(pipe);
        assert_eq!(trace::verbosity(), base);
    }

    #[test]
    fn from_spec_parses_options_and_rejects_junk() {
        let _serial = test_serial();
        let path = std::env::temp_dir().join(format!("vo_obs_spec_{}.jsonl", std::process::id()));
        std::fs::remove_file(&path).ok();
        let spec = format!("{},sample=16,no-slow,debug", path.display());
        let pipe = TelemetryPipeline::from_spec(&spec).unwrap();
        assert_eq!(pipe.policy().sample_every, 16);
        assert!(!pipe.policy().keep_slow);
        assert!(pipe.policy().keep_errors);
        assert!(pipe.policy().debug_events);
        drop(pipe);
        assert!(TelemetryPipeline::from_spec("").is_err());
        assert!(TelemetryPipeline::from_spec("x.jsonl,sample=abc").is_err());
        assert!(TelemetryPipeline::from_spec("x.jsonl,wat").is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file("x.jsonl").ok();
    }
}
