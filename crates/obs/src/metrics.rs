//! A process-global metrics registry: named counters and log₂-bucket
//! latency histograms.
//!
//! Handles are interned once ([`counter`], [`histogram`]) and are plain
//! `&'static` atomics afterwards, so hot-path increments cost the same as
//! a hand-rolled `static AtomicU64` — the registry only takes its lock at
//! registration and snapshot time. Names are dotted by layer:
//! `relational.index_probes`, `penguin.plan_cache.hits`,
//! `bench.instantiate.batched_us`.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Histogram bucket count: bucket 0 holds value 0, bucket `b ≥ 1` holds
/// values with exactly `b` significant bits, i.e. `[2^(b-1), 2^b - 1]`.
pub const BUCKETS: usize = 65;

/// A registered counter handle; cheap to copy, relaxed-atomic to bump.
#[derive(Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A registered gauge handle: a last-write-wins level (queue depth,
/// live WAL segment count, bytes on disk) rather than a monotone count.
/// Cheap to copy, relaxed-atomic to set.
#[derive(Clone, Copy)]
pub struct Gauge(&'static AtomicU64);

impl Gauge {
    /// Set the current level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` to the level.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` from the level (saturating at zero).
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// A registered histogram handle over log₂ buckets.
#[derive(Clone, Copy)]
pub struct Histogram(&'static HistogramCells);

struct HistogramCells {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The log₂ bucket index of a value: 0 for 0, else the number of
/// significant bits.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// The inclusive lower bound of a bucket.
pub fn bucket_floor(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        let cells = self.0;
        cells.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        cells.count.fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(v, Ordering::Relaxed);
        cells.min.fetch_min(v, Ordering::Relaxed);
        cells.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a duration in whole microseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let cells = self.0;
        let count = cells.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: cells.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                cells.min.load(Ordering::Relaxed)
            },
            max: cells.max.load(Ordering::Relaxed),
            buckets: cells
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, c)| {
                    let n = c.load(Ordering::Relaxed);
                    (n > 0).then_some((bucket_floor(i), n))
                })
                .collect(),
        }
    }

    /// Zero every cell.
    pub fn reset(&self) {
        let cells = self.0;
        for b in &cells.buckets {
            b.store(0, Ordering::Relaxed);
        }
        cells.count.store(0, Ordering::Relaxed);
        cells.sum.store(0, Ordering::Relaxed);
        cells.min.store(u64::MAX, Ordering::Relaxed);
        cells.max.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        write!(f, "Histogram(count={} sum={})", s.count, s.sum)
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Non-empty buckets as `(inclusive lower bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate the `q`-quantile (`0.0 ≤ q ≤ 1.0`) by linear
    /// interpolation inside the covering log₂ bucket.
    ///
    /// The target rank `q·count` is located in the cumulative bucket
    /// counts; within the bucket `[floor, 2·floor − 1]` the estimate
    /// interpolates linearly by rank. The result is clamped to the exact
    /// recorded `[min, max]`, so `quantile(0.0) == min` and
    /// `quantile(1.0) == max`; an empty histogram estimates 0. Error is
    /// bounded by the bucket width (a factor of 2 in the value).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for &(lo, n) in &self.buckets {
            if (cum + n) as f64 >= target {
                let hi = if lo == 0 { 0 } else { lo.saturating_mul(2) - 1 };
                let f = ((target - cum as f64) / n as f64).clamp(0.0, 1.0);
                let est = lo as f64 + f * (hi - lo) as f64;
                return est.clamp(self.min as f64, self.max as f64);
            }
            cum += n;
        }
        self.max as f64
    }

    /// The snapshot as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::Int(self.count as i64)),
            ("sum", Json::Int(self.sum as i64)),
            ("min", Json::Int(self.min as i64)),
            ("max", Json::Int(self.max as i64)),
            (
                "buckets",
                Json::Arr(
                    self.buckets
                        .iter()
                        .map(|&(lo, n)| Json::Arr(vec![Json::Int(lo as i64), Json::Int(n as i64)]))
                        .collect(),
                ),
            ),
        ])
    }
}

struct RegistryInner {
    counters: BTreeMap<String, &'static AtomicU64>,
    gauges: BTreeMap<String, &'static AtomicU64>,
    histograms: BTreeMap<String, &'static HistogramCells>,
}

fn registry() -> &'static Mutex<RegistryInner> {
    static R: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    R.get_or_init(|| {
        Mutex::new(RegistryInner {
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
        })
    })
}

/// Register (or fetch) the counter named `name`.
pub fn counter(name: &str) -> Counter {
    let mut r = registry().lock().unwrap();
    if let Some(c) = r.counters.get(name) {
        return Counter(c);
    }
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    r.counters.insert(name.to_owned(), cell);
    Counter(cell)
}

/// Register (or fetch) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut r = registry().lock().unwrap();
    if let Some(g) = r.gauges.get(name) {
        return Gauge(g);
    }
    let cell: &'static AtomicU64 = Box::leak(Box::new(AtomicU64::new(0)));
    r.gauges.insert(name.to_owned(), cell);
    Gauge(cell)
}

/// Register (or fetch) the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    let mut r = registry().lock().unwrap();
    if let Some(h) = r.histograms.get(name) {
        return Histogram(h);
    }
    let cells: &'static HistogramCells = Box::leak(Box::new(HistogramCells::new()));
    r.histograms.insert(name.to_owned(), cells);
    Histogram(cells)
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The snapshot as a JSON object
    /// `{counters: {...}, gauges: {...}, histograms: {...}}`.
    ///
    /// Deterministic: every section renders sorted by metric name (the
    /// snapshot stores them in `BTreeMap`s), never in registration order,
    /// so two exported snapshots diff cleanly line-by-line.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Int(v as i64)))
                        .collect(),
                ),
            ),
            (
                "gauges",
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Int(v as i64)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), h.to_json()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// A metric name in Prometheus form: every character outside
/// `[a-zA-Z0-9_:]` becomes `_` (dotted registry names flatten to
/// underscores).
fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

impl MetricsSnapshot {
    /// Render the snapshot as Prometheus-style exposition text, sorted by
    /// metric name (counters first, then gauges, then histograms).
    ///
    /// Counters become `# TYPE <name> counter` plus one sample line,
    /// gauges `# TYPE <name> gauge` likewise. Histograms become
    /// summaries: `{quantile="0.5|0.9|0.99"}` estimate lines (see
    /// [`HistogramSnapshot::quantile`]) plus `_sum`, `_count`, `_min` and
    /// `_max` samples. The output is deterministic for a given snapshot,
    /// so two exports diff cleanly.
    pub fn expose_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, value) in &self.gauges {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, h) in &self.histograms {
            let n = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {n} summary");
            for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                let _ = writeln!(out, "{n}{{quantile=\"{label}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
            let _ = writeln!(out, "{n}_min {}", h.min);
            let _ = writeln!(out, "{n}_max {}", h.max);
        }
        out
    }
}

/// Snapshot every registered metric and render it as Prometheus-style
/// exposition text — the pull-based counterpart of the telemetry
/// pipeline's push-based JSONL export.
pub fn expose_text() -> String {
    snapshot_all().expose_text()
}

/// Snapshot every registered metric.
pub fn snapshot_all() -> MetricsSnapshot {
    let r = registry().lock().unwrap();
    MetricsSnapshot {
        counters: r
            .counters
            .iter()
            .map(|(k, c)| (k.clone(), c.load(Ordering::Relaxed)))
            .collect(),
        gauges: r
            .gauges
            .iter()
            .map(|(k, g)| (k.clone(), g.load(Ordering::Relaxed)))
            .collect(),
        histograms: r
            .histograms
            .iter()
            .map(|(k, h)| (k.clone(), Histogram(h).snapshot()))
            .collect(),
    }
}

/// Reset every registered metric to zero.
pub fn reset_all() {
    let r = registry().lock().unwrap();
    for c in r.counters.values() {
        c.store(0, Ordering::Relaxed);
    }
    for g in r.gauges.values() {
        g.store(0, Ordering::Relaxed);
    }
    for h in r.histograms.values() {
        Histogram(h).reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_and_accumulate() {
        let a = counter("test.metrics.alpha");
        let b = counter("test.metrics.alpha");
        let before = a.get();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), before + 3);
        assert!(snapshot_all().counters.contains_key("test.metrics.alpha"));
    }

    #[test]
    fn bucketing_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(11), 1024);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = histogram("test.metrics.latency");
        h.reset();
        for v in [0, 1, 3, 100, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 204);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert!((s.mean() - 40.8).abs() < 1e-9);
        // buckets: 0 -> 1, [1,1] -> 1, [2,3] -> 1, [64,127] -> 2
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 1), (64, 2)]);
        let j = s.to_json();
        assert_eq!(j.field("count").unwrap().as_i64().unwrap(), 5);
    }

    #[test]
    fn quantile_interpolates_and_clamps() {
        // empty → 0
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);

        // a single repeated value: every quantile is that value
        let h = histogram("test.metrics.q_single");
        h.reset();
        for _ in 0..10 {
            h.record(37);
        }
        let s = h.snapshot();
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 37.0, "q={q}");
        }

        // uniform 1..=100: estimates land within the covering bucket and
        // the endpoints are exact
        let h = histogram("test.metrics.q_uniform");
        h.reset();
        for v in 1..=100 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        let p50 = s.quantile(0.5);
        assert!((32.0..=63.0).contains(&p50), "p50={p50}");
        let p90 = s.quantile(0.9);
        assert!((64.0..=100.0).contains(&p90), "p90={p90}");
        // monotone in q
        let mut prev = 0.0;
        for i in 0..=20 {
            let v = s.quantile(i as f64 / 20.0);
            assert!(
                v >= prev,
                "q={} went backwards: {v} < {prev}",
                i as f64 / 20.0
            );
            prev = v;
        }
        // out-of-range q clamps rather than panicking
        assert_eq!(s.quantile(-1.0), 1.0);
        assert_eq!(s.quantile(2.0), 100.0);
    }

    #[test]
    fn gauges_set_and_expose() {
        let g = gauge("test.metrics.gauge_level");
        let g2 = gauge("test.metrics.gauge_level");
        g.set(10);
        g2.add(5);
        g2.sub(3);
        assert_eq!(g.get(), 12);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        g.set(42);
        let snap = snapshot_all();
        assert_eq!(snap.gauges.get("test.metrics.gauge_level"), Some(&42));
        let text = snap.expose_text();
        assert!(text.contains("# TYPE test_metrics_gauge_level gauge"));
        assert!(text.lines().any(|l| l == "test_metrics_gauge_level 42"));
        let j = snap.to_json();
        assert_eq!(
            j.field("gauges")
                .unwrap()
                .field("test.metrics.gauge_level")
                .unwrap()
                .as_i64()
                .unwrap(),
            42
        );
    }

    #[test]
    fn exposition_covers_registry_and_stays_sorted() {
        counter("test.metrics.expose_counter").add(7);
        let h = histogram("test.metrics.expose_hist");
        h.reset();
        for v in [10, 20, 30] {
            h.record(v);
        }
        let text = expose_text();
        assert!(text.contains("# TYPE test_metrics_expose_counter counter"));
        assert!(text.contains("# TYPE test_metrics_expose_hist summary"));
        assert!(text.contains("test_metrics_expose_hist{quantile=\"0.5\"}"));
        assert!(text.contains("test_metrics_expose_hist_sum 60"));
        assert!(text.contains("test_metrics_expose_hist_count 3"));
        // sample lines for counters carry their value
        assert!(text
            .lines()
            .any(|l| l.starts_with("test_metrics_expose_counter ")));
        // deterministic: two renders of the same snapshot are identical
        let snap = snapshot_all();
        assert_eq!(snap.expose_text(), snap.expose_text());
        // counter sample names are sorted (they come from a BTreeMap)
        let counter_names: Vec<&str> = snap.counters.keys().map(|s| s.as_str()).collect();
        let mut sorted = counter_names.clone();
        sorted.sort_unstable();
        assert_eq!(counter_names, sorted);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_sorted() {
        // registration order must not leak into the export: counters and
        // histograms render sorted by name regardless of interning order
        counter("test.metrics.det_zz").inc();
        counter("test.metrics.det_aa").inc();
        let j = snapshot_all().to_json().compact();
        let zz = j.find("test.metrics.det_zz").unwrap();
        let aa = j.find("test.metrics.det_aa").unwrap();
        assert!(aa < zz, "counters must render in name order");
        assert_eq!(j, snapshot_all().to_json().compact());
    }

    #[test]
    fn snapshot_json_renders() {
        counter("test.metrics.json").inc();
        let j = snapshot_all().to_json();
        assert!(j
            .field("counters")
            .unwrap()
            .field("test.metrics.json")
            .is_ok());
        // compact form stays one line
        assert!(!j.compact().contains('\n'));
    }
}
