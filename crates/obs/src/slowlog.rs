//! The slow-operation log: a bounded ring of spans whose duration crossed
//! a per-name threshold.
//!
//! Telemetry sampling may legitimately drop most spans, and the trace
//! ring evicts old ones — but an operator diagnosing tail latency wants
//! the outliers *kept*, with their fields intact. The slow log hooks the
//! tracer's record path: every closing span is checked against the
//! threshold registered for its name ([`threshold`]), and crossers are
//! copied into a separate bounded ring ([`take`] / [`entries`]) that
//! neither sampling nor trace-ring eviction touches.
//!
//! Cost when unused: one relaxed atomic load per recorded span (and
//! recording itself only happens while tracing is enabled, so the
//! tracing-off hot path is unchanged). Thresholds are process-global,
//! like the tracer and the metrics registry.

use crate::trace::SpanEvent;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Default ring capacity: enough to hold a burst of outliers without
/// growing unbounded on a pathological workload.
pub const DEFAULT_CAPACITY: usize = 256;

/// Number of registered thresholds — the fast-path guard that keeps
/// [`observe`] at one relaxed load when the slow log is unused.
static THRESHOLD_COUNT: AtomicU64 = AtomicU64::new(0);

/// One threshold-crossing span, with its full fields retained.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowOp {
    /// The span exactly as the tracer recorded it.
    pub event: SpanEvent,
    /// The threshold (µs) it crossed, for context in exports.
    pub threshold_us: u64,
}

impl SlowOp {
    /// The slow op as a JSON object: the span's export shape plus the
    /// crossed threshold.
    pub fn to_json(&self) -> crate::json::Json {
        let mut j = self.event.to_json();
        if let crate::json::Json::Obj(pairs) = &mut j {
            pairs.push((
                "threshold_us".to_owned(),
                crate::json::Json::Int(self.threshold_us as i64),
            ));
        }
        j
    }
}

struct SlowLog {
    thresholds: BTreeMap<&'static str, u64>,
    ring: VecDeque<SlowOp>,
    capacity: usize,
    dropped: u64,
}

fn log() -> &'static Mutex<SlowLog> {
    static L: OnceLock<Mutex<SlowLog>> = OnceLock::new();
    L.get_or_init(|| {
        Mutex::new(SlowLog {
            thresholds: BTreeMap::new(),
            ring: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        })
    })
}

/// Register (or tighten/loosen) the slow threshold for spans named
/// `name`: any such span closing with a duration of at least `min` is
/// copied into the slow log. Names are the tracer's `&'static` span
/// names (`"penguin.apply_batch"`, `"maintain.refresh"`, ...).
pub fn threshold(name: &'static str, min: Duration) {
    let mut l = log().lock().unwrap();
    if l.thresholds
        .insert(name, min.as_micros().max(1) as u64)
        .is_none()
    {
        THRESHOLD_COUNT.fetch_add(1, Ordering::Relaxed);
    }
}

/// Remove the threshold for `name`; returns whether one was registered.
pub fn clear_threshold(name: &str) -> bool {
    let mut l = log().lock().unwrap();
    let removed = l.thresholds.remove(name).is_some();
    if removed {
        THRESHOLD_COUNT.fetch_sub(1, Ordering::Relaxed);
    }
    removed
}

/// The registered threshold for `name`, if any.
pub fn threshold_for(name: &str) -> Option<Duration> {
    if THRESHOLD_COUNT.load(Ordering::Relaxed) == 0 {
        return None;
    }
    log()
        .lock()
        .unwrap()
        .thresholds
        .get(name)
        .map(|&us| Duration::from_micros(us))
}

/// The threshold `event` crossed, if its name has one and its duration
/// reached it — the "always keep" predicate shared with the telemetry
/// sampler.
pub fn crossed(event: &SpanEvent) -> Option<u64> {
    if THRESHOLD_COUNT.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let l = log().lock().unwrap();
    match l.thresholds.get(event.name) {
        Some(&us) if event.dur_us >= us => Some(us),
        _ => None,
    }
}

/// Tracer hook: copy `event` into the ring when it crossed its name's
/// threshold. One relaxed load when no thresholds are registered.
pub(crate) fn observe(event: &SpanEvent) {
    if THRESHOLD_COUNT.load(Ordering::Relaxed) == 0 {
        return;
    }
    let mut l = log().lock().unwrap();
    let Some(&us) = l.thresholds.get(event.name) else {
        return;
    };
    if event.dur_us < us {
        return;
    }
    if l.ring.len() >= l.capacity {
        l.ring.pop_front();
        l.dropped += 1;
    }
    let op = SlowOp {
        event: event.clone(),
        threshold_us: us,
    };
    l.ring.push_back(op);
    crate::metrics::counter("obs.slowlog.recorded").inc();
}

/// Drain and return every logged slow op (oldest first).
pub fn take() -> Vec<SlowOp> {
    log().lock().unwrap().ring.drain(..).collect()
}

/// Copy the logged slow ops without draining them.
pub fn entries() -> Vec<SlowOp> {
    log().lock().unwrap().ring.iter().cloned().collect()
}

/// Discard all logged slow ops (thresholds stay registered).
pub fn clear() {
    let mut l = log().lock().unwrap();
    l.ring.clear();
    l.dropped = 0;
}

/// Slow ops evicted because the ring was full.
pub fn dropped() -> u64 {
    log().lock().unwrap().dropped
}

/// Resize the ring (evicting oldest entries if shrinking).
pub fn set_capacity(capacity: usize) {
    let mut l = log().lock().unwrap();
    l.capacity = capacity.max(1);
    while l.ring.len() > l.capacity {
        l.ring.pop_front();
        l.dropped += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::trace;

    #[test]
    fn slow_spans_are_captured_with_fields() {
        let _serial = trace::test_serial();
        let _scope = trace::start_trace();
        clear();
        threshold("test.slowlog.op", Duration::from_micros(1));
        {
            let mut s = trace::span("test.slowlog.op");
            s.field("rows", Json::Int(42));
            std::thread::sleep(Duration::from_millis(2));
        }
        {
            // under threshold: a name with a huge threshold is not logged
            threshold("test.slowlog.fast", Duration::from_secs(3600));
            let _s = trace::span("test.slowlog.fast");
        }
        let ops: Vec<SlowOp> = take()
            .into_iter()
            .filter(|o| o.event.name.starts_with("test.slowlog."))
            .collect();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].event.name, "test.slowlog.op");
        assert_eq!(ops[0].event.field("rows"), Some(&Json::Int(42)));
        assert_eq!(ops[0].threshold_us, 1);
        let j = ops[0].to_json();
        assert_eq!(j.field("threshold_us").unwrap().as_i64().unwrap(), 1);
        assert!(clear_threshold("test.slowlog.op"));
        assert!(clear_threshold("test.slowlog.fast"));
        assert!(!clear_threshold("test.slowlog.op"));
    }

    #[test]
    fn unthresholded_names_cost_nothing_and_log_nothing() {
        let _serial = trace::test_serial();
        let _scope = trace::start_trace();
        clear();
        {
            let _s = trace::span("test.slowlog.unregistered");
        }
        assert!(entries()
            .iter()
            .all(|o| o.event.name != "test.slowlog.unregistered"));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let _serial = trace::test_serial();
        let _scope = trace::start_trace();
        clear();
        set_capacity(4);
        threshold("test.slowlog.burst", Duration::from_micros(1));
        for _ in 0..10 {
            let _s = trace::span("test.slowlog.burst");
            std::thread::sleep(Duration::from_micros(100));
        }
        let burst: Vec<SlowOp> = entries()
            .into_iter()
            .filter(|o| o.event.name == "test.slowlog.burst")
            .collect();
        assert_eq!(burst.len(), 4);
        assert_eq!(dropped(), 6);
        clear_threshold("test.slowlog.burst");
        clear();
        set_capacity(DEFAULT_CAPACITY);
    }
}
