//! Span-based tracing: thread-local span stacks, monotonic timings, and a
//! bounded global event collector with JSONL export.
//!
//! Tracing is **off by default** and costs exactly one relaxed atomic load
//! per instrumentation point while off: every entry point ([`span`],
//! [`event_with`]) checks [`enabled`] first and returns an inert value
//! without touching the clock, the thread-local stack, or the collector.
//!
//! Activation is scoped and re-entrant: [`start_trace`] returns a guard
//! that keeps tracing on until dropped, and concurrent guards (e.g. two
//! tests in the same process) stack — tracing stays on until the last
//! guard drops. Because the collector is process-global, consumers that
//! run concurrently with other traced work should filter the drained
//! events by [`SpanEvent::thread`] (see [`current_thread_id`]) and/or by
//! span name.
//!
//! Span events are recorded at *close* time (children before parents);
//! [`SpanEvent::parent`]/[`SpanEvent::depth`] let consumers rebuild the
//! tree. Instant events ([`event_with`]) carry a zero duration and attach
//! to the innermost open span of their thread.
//!
//! **Cross-thread parenting:** worker threads spawned inside a traced
//! region start with an empty span stack, so their spans would come out
//! parentless. A fork point captures [`current_span_id`] and each worker
//! installs it with [`link_parent`]; spans and events opened while the
//! worker's own stack is empty then record the linked id as their parent.
//! Workers record into the same global collector (it is mutex-protected),
//! so at join time the caller's span tree is already merged — consumers
//! rebuild it across threads purely from the `parent` links.

use crate::json::Json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of guards currently holding tracing on (0 = disabled).
static ACTIVE: AtomicU64 = AtomicU64::new(0);

/// Monotonic id source for spans and events (process-wide).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Id source for threads; each thread interns one id on first use.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Open span ids, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// This thread's interned id.
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// Cross-thread parent link: the span id adopted as parent while this
    /// thread's own stack is empty (see [`link_parent`]).
    static PARENT_LINK: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// True while at least one [`TraceScope`] guard is alive. This is the
/// single branch every instrumentation point pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// The interned id of the calling thread, as recorded in
/// [`SpanEvent::thread`]. Use it to filter the global collector down to
/// events produced by the current thread.
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// The id of the innermost open span on this thread (falling back to the
/// installed parent link), or `None` outside any span. Capture this at a
/// fork point and hand it to workers via [`link_parent`] so their spans
/// parent into the caller's tree.
pub fn current_span_id() -> Option<u64> {
    STACK
        .with(|s| s.borrow().last().copied())
        .or_else(|| PARENT_LINK.with(std::cell::Cell::get))
}

/// Adopt `parent` (a span id from [`current_span_id`], usually captured
/// on another thread) as the parent of spans and events opened while this
/// thread's own span stack is empty. Restores the previous link on drop,
/// so nested fork/join regions compose.
#[must_use = "the link is removed when the guard is dropped"]
#[derive(Debug)]
pub struct ParentLinkGuard {
    prev: Option<u64>,
}

impl Drop for ParentLinkGuard {
    fn drop(&mut self) {
        PARENT_LINK.with(|l| l.set(self.prev));
    }
}

/// Install a cross-thread parent link for the lifetime of the guard.
pub fn link_parent(parent: Option<u64>) -> ParentLinkGuard {
    let prev = PARENT_LINK.with(|l| l.replace(parent));
    ParentLinkGuard { prev }
}

/// The effective parent at open time: the innermost open span of this
/// thread, else the installed cross-thread link.
fn effective_parent(stack: &[u64]) -> Option<u64> {
    stack
        .last()
        .copied()
        .or_else(|| PARENT_LINK.with(std::cell::Cell::get))
}

/// Keeps tracing enabled until dropped; guards stack across threads.
#[must_use = "tracing turns back off when the scope is dropped"]
#[derive(Debug)]
pub struct TraceScope(());

impl Drop for TraceScope {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Turn tracing on for the lifetime of the returned guard.
pub fn start_trace() -> TraceScope {
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    TraceScope(())
}

/// One finished span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Unique id (also the ordering handle for parent links).
    pub id: u64,
    /// Interned id of the producing thread.
    pub thread: u64,
    /// Static name, dotted by layer: `"integrity.cascade"`, `"penguin.translate"`.
    pub name: &'static str,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
    /// Microseconds since the process trace epoch at open time.
    pub start_us: u64,
    /// Span duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// Structured payload, insertion-ordered.
    pub fields: Vec<(&'static str, Json)>,
}

impl SpanEvent {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// The event as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_owned(), Json::Int(self.id as i64)),
            ("thread".to_owned(), Json::Int(self.thread as i64)),
            ("name".to_owned(), Json::str(self.name)),
            (
                "parent".to_owned(),
                match self.parent {
                    Some(p) => Json::Int(p as i64),
                    None => Json::Null,
                },
            ),
            ("depth".to_owned(), Json::Int(self.depth as i64)),
            ("start_us".to_owned(), Json::Int(self.start_us as i64)),
            ("dur_us".to_owned(), Json::Int(self.dur_us as i64)),
        ];
        let fields: Vec<(String, Json)> = self
            .fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect();
        pairs.push(("fields".to_owned(), Json::Obj(fields)));
        Json::Obj(pairs)
    }
}

/// Render events as JSONL: one compact JSON object per line.
pub fn export_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().compact());
        out.push('\n');
    }
    out
}

const DEFAULT_CAPACITY: usize = 65_536;

struct Collector {
    buf: VecDeque<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

fn collector() -> &'static Mutex<Collector> {
    static C: OnceLock<Mutex<Collector>> = OnceLock::new();
    C.get_or_init(|| {
        Mutex::new(Collector {
            buf: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        })
    })
}

fn epoch() -> Instant {
    static E: OnceLock<Instant> = OnceLock::new();
    *E.get_or_init(Instant::now)
}

fn record(event: SpanEvent) {
    let mut c = collector().lock().unwrap();
    if c.buf.len() >= c.capacity {
        c.buf.pop_front();
        c.dropped += 1;
    }
    c.buf.push_back(event);
}

/// Drain and return every collected event (oldest first).
pub fn take() -> Vec<SpanEvent> {
    let mut c = collector().lock().unwrap();
    c.buf.drain(..).collect()
}

/// Copy the collected events without draining them.
pub fn events() -> Vec<SpanEvent> {
    collector().lock().unwrap().buf.iter().cloned().collect()
}

/// Discard all collected events.
pub fn clear() {
    let mut c = collector().lock().unwrap();
    c.buf.clear();
    c.dropped = 0;
}

/// Number of events evicted because the ring buffer was full.
pub fn dropped() -> u64 {
    collector().lock().unwrap().dropped
}

/// Resize the ring buffer (evicting oldest events if shrinking).
pub fn set_capacity(capacity: usize) {
    let mut c = collector().lock().unwrap();
    c.capacity = capacity.max(1);
    while c.buf.len() > c.capacity {
        c.buf.pop_front();
        c.dropped += 1;
    }
}

struct OpenSpan {
    id: u64,
    name: &'static str,
    parent: Option<u64>,
    depth: usize,
    start: Instant,
    fields: Vec<(&'static str, Json)>,
}

/// RAII handle for an open span; records a [`SpanEvent`] on drop. Inert
/// (all methods no-ops) when created while tracing was disabled.
#[must_use = "a span measures the region up to its drop point"]
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

impl SpanGuard {
    /// Attach a field to the span (no-op when tracing was off at open).
    pub fn field(&mut self, key: &'static str, value: Json) {
        if let Some(open) = &mut self.inner {
            open.fields.push((key, value));
        }
    }

    /// True when this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop back to (and including) this span; tolerate guards
            // dropped out of order rather than corrupting the stack.
            if let Some(pos) = stack.iter().rposition(|&id| id == open.id) {
                stack.truncate(pos);
            }
        });
        let start_us = open.start.duration_since(epoch()).as_micros() as u64;
        let dur_us = open.start.elapsed().as_micros() as u64;
        record(SpanEvent {
            id: open.id,
            thread: current_thread_id(),
            name: open.name,
            parent: open.parent,
            depth: open.depth,
            start_us,
            dur_us,
            fields: open.fields,
        });
    }
}

/// Open a span; inert when tracing is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, depth) = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = effective_parent(&stack);
        let depth = stack.len();
        stack.push(id);
        (parent, depth)
    });
    // Pin the epoch before taking the span clock so start_us never
    // underflows on the first-ever span.
    let _ = epoch();
    SpanGuard {
        inner: Some(OpenSpan {
            id,
            name,
            parent,
            depth,
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

/// Record an instant event; the field closure only runs when tracing is
/// enabled, so the disabled cost is the single [`enabled`] branch.
pub fn event_with(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Json)>) {
    if !enabled() {
        return;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, depth) = STACK.with(|s| {
        let stack = s.borrow();
        (effective_parent(&stack), stack.len())
    });
    let start_us = Instant::now().duration_since(epoch()).as_micros() as u64;
    record(SpanEvent {
        id,
        thread: current_thread_id(),
        name,
        parent,
        depth,
        start_us,
        dur_us: 0,
        fields: fields(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// These tests toggle the process-global enabled flag, so they must
    /// not overlap each other.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn my_events(named: &str) -> Vec<SpanEvent> {
        let me = current_thread_id();
        events()
            .into_iter()
            .filter(|e| e.thread == me && e.name == named)
            .collect()
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _serial = serial();
        // No scope held: a span opened now must be inert.
        let mut g = span("test.disabled_span");
        assert!(!g.is_recording());
        g.field("k", Json::Int(1));
        drop(g);
        event_with("test.disabled_event", || {
            panic!("field closure must not run while tracing is off")
        });
        assert!(my_events("test.disabled_span").is_empty());
        assert!(my_events("test.disabled_event").is_empty());
    }

    #[test]
    fn spans_nest_and_events_attach() {
        let _serial = serial();
        let _scope = start_trace();
        {
            let mut outer = span("test.outer");
            outer.field("tag", Json::str("o"));
            {
                let _inner = span("test.inner");
                event_with("test.instant", || vec![("n", Json::Int(7))]);
            }
        }
        let outer = my_events("test.outer");
        let inner = my_events("test.inner");
        let instant = my_events("test.instant");
        assert_eq!(outer.len(), 1);
        assert_eq!(inner.len(), 1);
        assert_eq!(instant.len(), 1);
        assert_eq!(inner[0].parent, Some(outer[0].id));
        assert_eq!(inner[0].depth, 1);
        assert_eq!(instant[0].parent, Some(inner[0].id));
        assert_eq!(instant[0].dur_us, 0);
        assert_eq!(instant[0].field("n"), Some(&Json::Int(7)));
        assert_eq!(outer[0].field("tag").unwrap().as_str().unwrap(), "o");
    }

    #[test]
    fn jsonl_export_parses_back() {
        let _serial = serial();
        let _scope = start_trace();
        {
            let mut s = span("test.jsonl");
            s.field("rows", Json::Int(3));
        }
        let evs = my_events("test.jsonl");
        let jsonl = export_jsonl(&evs);
        for line in jsonl.lines() {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.field("name").unwrap().as_str().unwrap(), "test.jsonl");
            assert_eq!(
                v.field("fields")
                    .unwrap()
                    .field("rows")
                    .unwrap()
                    .as_i64()
                    .unwrap(),
                3
            );
        }
    }

    #[test]
    fn worker_spans_link_into_callers_tree() {
        let _serial = serial();
        let _scope = start_trace();
        let worker_thread;
        {
            let _outer = span("test.link_outer");
            let parent = current_span_id();
            assert!(parent.is_some());
            worker_thread = std::thread::spawn(move || {
                let _link = link_parent(parent);
                {
                    let _inner = span("test.link_inner");
                    event_with("test.link_event", Vec::new);
                }
                current_thread_id()
            })
            .join()
            .unwrap();
        }
        let me = current_thread_id();
        let evs = events();
        let outer = evs
            .iter()
            .find(|e| e.thread == me && e.name == "test.link_outer")
            .unwrap();
        let inner = evs
            .iter()
            .find(|e| e.thread == worker_thread && e.name == "test.link_inner")
            .unwrap();
        let instant = evs
            .iter()
            .find(|e| e.thread == worker_thread && e.name == "test.link_event")
            .unwrap();
        // the worker's span parents into the caller's open span, and the
        // worker's own nesting continues beneath it
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(instant.parent, Some(inner.id));
    }

    #[test]
    fn parent_link_restores_on_drop() {
        let _serial = serial();
        let _scope = start_trace();
        {
            let _a = link_parent(Some(999_991));
            assert_eq!(current_span_id(), Some(999_991));
            {
                let _b = link_parent(Some(999_997));
                assert_eq!(current_span_id(), Some(999_997));
            }
            assert_eq!(current_span_id(), Some(999_991));
            // an open span shadows the link
            {
                let _s = span("test.link_shadow");
                assert_ne!(current_span_id(), Some(999_991));
            }
        }
        assert_eq!(current_span_id(), None);
    }

    #[test]
    fn nested_scopes_keep_tracing_on() {
        let _serial = serial();
        let a = start_trace();
        let b = start_trace();
        drop(a);
        assert!(enabled());
        {
            let _s = span("test.nested_scope");
        }
        assert_eq!(my_events("test.nested_scope").len(), 1);
        drop(b);
    }
}
