//! Span-based tracing: thread-local span stacks, monotonic timings, and a
//! bounded global event collector with JSONL export.
//!
//! Tracing is **off by default** and costs exactly one relaxed atomic load
//! per instrumentation point while off: every entry point ([`span`],
//! [`event_with`]) checks [`enabled`] first and returns an inert value
//! without touching the clock, the thread-local stack, or the collector.
//!
//! Activation is scoped and re-entrant: [`start_trace`] returns a guard
//! that keeps tracing on until dropped, and concurrent guards (e.g. two
//! tests in the same process) stack — tracing stays on until the last
//! guard drops. Because the collector is process-global, consumers that
//! run concurrently with other traced work should filter the drained
//! events by [`SpanEvent::thread`] (see [`current_thread_id`]) and/or by
//! span name.
//!
//! Span events are recorded at *close* time (children before parents);
//! [`SpanEvent::parent`]/[`SpanEvent::depth`] let consumers rebuild the
//! tree. Instant events ([`event_with`]) carry a zero duration and attach
//! to the innermost open span of their thread.
//!
//! **Cross-thread parenting:** worker threads spawned inside a traced
//! region start with an empty span stack, so their spans would come out
//! parentless. A fork point captures [`current_span_id`] and each worker
//! installs it with [`link_parent`]; spans and events opened while the
//! worker's own stack is empty then record the linked id as their parent.
//! Workers record into the same global collector (it is mutex-protected),
//! so at join time the caller's span tree is already merged — consumers
//! rebuild it across threads purely from the `parent` links.

use crate::json::Json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of guards currently holding tracing on (0 = disabled).
static ACTIVE: AtomicU64 = AtomicU64::new(0);

/// Current [`Verbosity`] as its discriminant (see [`set_verbosity`]).
static VERBOSITY: AtomicU64 = AtomicU64::new(Verbosity::Debug as u64);

/// Record-time head sampling rate: keep 1-in-this-many traces (≤ 1 =
/// keep everything). Installed by the telemetry pipeline; see
/// [`set_head_sample`].
static HEAD_SAMPLE: AtomicU64 = AtomicU64::new(1);

/// Spans skipped by the head sampler since the last
/// [`take_head_skipped`] — folded into drain statistics.
static HEAD_SKIPPED: AtomicU64 = AtomicU64::new(0);

/// Monotonic id source for spans and events (process-wide).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Id source for threads; each thread interns one id on first use.
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Open spans, innermost last: `(id, root)` where `root` is the id of
    /// the trace's top-level span (see [`SpanEvent::root`]).
    static STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
    /// This thread's interned id.
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// Cross-thread parent link: the span id adopted as parent while this
    /// thread's own stack is empty (see [`link_parent`]).
    static PARENT_LINK: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
    /// Root id of the currently-open trace on this thread that the head
    /// sampler decided *not* to keep; spans under it record nothing.
    static INERT_ROOT: std::cell::Cell<Option<u64>> = const { std::cell::Cell::new(None) };
}

/// True while at least one [`TraceScope`] guard is alive. This is the
/// single branch every instrumentation point pays when tracing is off.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

/// How much an active trace records.
///
/// Spans and ordinary events always record while tracing is on; the
/// per-row instrumentation behind [`debug_event_with`] (probe steps,
/// enumeration criteria — one event per tuple touched) records only at
/// [`Verbosity::Debug`]. The default is `Debug`, so a bare
/// [`start_trace`] in a test sees everything; attaching a production
/// [`TelemetryPipeline`](crate::sink::TelemetryPipeline) lowers the
/// process to `Info` unless its policy asks for debug events — per-row
/// events cost more than the workloads they annotate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Spans and instant events only; per-row debug events are skipped
    /// (their field closures never run).
    Info = 0,
    /// Everything, including one event per probe step / enumeration row.
    Debug = 1,
}

/// Set the process-wide trace verbosity, returning the previous value.
pub fn set_verbosity(v: Verbosity) -> Verbosity {
    match VERBOSITY.swap(v as u64, Ordering::Relaxed) {
        0 => Verbosity::Info,
        _ => Verbosity::Debug,
    }
}

/// The current process-wide trace verbosity.
pub fn verbosity() -> Verbosity {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Verbosity::Info,
        _ => Verbosity::Debug,
    }
}

/// True when tracing is on *and* verbosity is [`Verbosity::Debug`] — the
/// gate [`debug_event_with`] checks before doing any work.
#[inline]
pub fn debug_enabled() -> bool {
    enabled() && VERBOSITY.load(Ordering::Relaxed) != 0
}

/// Install record-time head sampling: keep 1-in-`n` traces (grouped by
/// trace root, same hash as the drain-time
/// [`SamplingPolicy`](crate::sink::SamplingPolicy)), deciding at the
/// *root span's open* so the spans of an unsampled trace never pay for
/// field construction, clock reads, or the collector mutex. Returns the
/// previous rate; `n <= 1` keeps everything.
///
/// Two carve-outs preserve observability guarantees:
/// - spans whose name has a [`crate::slowlog`] threshold registered
///   always record in full, so the slow-op log keeps its fidelity;
/// - instant events ([`event_with`]) are exempt — they are rare on hot
///   paths (the per-row ones sit behind [`debug_event_with`]) and may
///   carry `error` fields that drain-time policies promise to keep.
///
/// The telemetry pipeline installs this alongside its drain-time policy
/// (which re-applies the same decision, so what was recorded and what is
/// exported agree); restore the previous rate when detaching.
pub fn set_head_sample(n: u64) -> u64 {
    HEAD_SAMPLE.swap(n.max(1), Ordering::Relaxed)
}

/// The record-time head-sampling rate in force (1 = keep everything).
pub fn head_sample() -> u64 {
    HEAD_SAMPLE.load(Ordering::Relaxed)
}

/// Drain the count of spans the head sampler skipped since last asked.
pub(crate) fn take_head_skipped() -> u64 {
    HEAD_SKIPPED.swap(0, Ordering::Relaxed)
}

/// SplitMix64 — decorrelates consecutive root ids so "1-in-N" holds even
/// though span ids are sequential. Shared by the record-time head
/// sampler and the drain-time sampling policy: both must make the same
/// keep/drop call for a given trace.
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The interned id of the calling thread, as recorded in
/// [`SpanEvent::thread`]. Use it to filter the global collector down to
/// events produced by the current thread.
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// The id of the innermost open span on this thread (falling back to the
/// installed parent link), or `None` outside any span. Capture this at a
/// fork point and hand it to workers via [`link_parent`] so their spans
/// parent into the caller's tree.
pub fn current_span_id() -> Option<u64> {
    STACK
        .with(|s| s.borrow().last().map(|&(id, _)| id))
        .or_else(|| PARENT_LINK.with(std::cell::Cell::get))
}

/// Adopt `parent` (a span id from [`current_span_id`], usually captured
/// on another thread) as the parent of spans and events opened while this
/// thread's own span stack is empty. Restores the previous link on drop,
/// so nested fork/join regions compose.
#[must_use = "the link is removed when the guard is dropped"]
#[derive(Debug)]
pub struct ParentLinkGuard {
    prev: Option<u64>,
}

impl Drop for ParentLinkGuard {
    fn drop(&mut self) {
        PARENT_LINK.with(|l| l.set(self.prev));
    }
}

/// Install a cross-thread parent link for the lifetime of the guard.
pub fn link_parent(parent: Option<u64>) -> ParentLinkGuard {
    let prev = PARENT_LINK.with(|l| l.replace(parent));
    ParentLinkGuard { prev }
}

/// The effective `(parent, root)` at open time for a new span or event
/// with the given fresh id: the innermost open span of this thread (whose
/// root is inherited), else the installed cross-thread link (which
/// doubles as the root for the worker's subtree — sampling decisions then
/// group the whole fork under the caller's span id), else the new span is
/// its own root.
fn effective_parent(stack: &[(u64, u64)], id: u64) -> (Option<u64>, u64) {
    if let Some(&(pid, root)) = stack.last() {
        return (Some(pid), root);
    }
    match PARENT_LINK.with(std::cell::Cell::get) {
        Some(link) => (Some(link), link),
        None => (None, id),
    }
}

/// Keeps tracing enabled until dropped; guards stack across threads.
#[must_use = "tracing turns back off when the scope is dropped"]
#[derive(Debug)]
pub struct TraceScope(());

impl Drop for TraceScope {
    fn drop(&mut self) {
        ACTIVE.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Turn tracing on for the lifetime of the returned guard.
pub fn start_trace() -> TraceScope {
    ACTIVE.fetch_add(1, Ordering::Relaxed);
    TraceScope(())
}

/// One finished span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Unique id (also the ordering handle for parent links).
    pub id: u64,
    /// Interned id of the producing thread.
    pub thread: u64,
    /// Static name, dotted by layer: `"integrity.cascade"`, `"penguin.translate"`.
    pub name: &'static str,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Id of the trace's top-level span (self for a root span). Worker
    /// threads inherit the linked caller span's id as their subtree root.
    /// This is the grouping key for head-based trace sampling.
    pub root: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: usize,
    /// Microseconds since the process trace epoch at open time.
    pub start_us: u64,
    /// Span duration in microseconds (0 for instant events).
    pub dur_us: u64,
    /// Structured payload, insertion-ordered.
    pub fields: Vec<(&'static str, Json)>,
}

impl SpanEvent {
    /// Look up a field by name.
    pub fn field(&self, name: &str) -> Option<&Json> {
        self.fields.iter().find(|(k, _)| *k == name).map(|(_, v)| v)
    }

    /// The event as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("id".to_owned(), Json::Int(self.id as i64)),
            ("thread".to_owned(), Json::Int(self.thread as i64)),
            ("name".to_owned(), Json::str(self.name)),
            (
                "parent".to_owned(),
                match self.parent {
                    Some(p) => Json::Int(p as i64),
                    None => Json::Null,
                },
            ),
            ("root".to_owned(), Json::Int(self.root as i64)),
            ("depth".to_owned(), Json::Int(self.depth as i64)),
            ("start_us".to_owned(), Json::Int(self.start_us as i64)),
            ("dur_us".to_owned(), Json::Int(self.dur_us as i64)),
        ];
        let fields: Vec<(String, Json)> = self
            .fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect();
        pairs.push(("fields".to_owned(), Json::Obj(fields)));
        Json::Obj(pairs)
    }

    /// Serialize as one compact JSON object directly into `out` — the
    /// same bytes as `self.to_json().compact()`, without building the
    /// intermediate tree. This is the telemetry export hot path: a drain
    /// serializes every kept event, and the tree walk's per-key `String`
    /// allocations dominate its cost.
    pub fn write_jsonl(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"id\":{},\"thread\":{},\"name\":",
            self.id, self.thread
        );
        crate::json::write_escaped(out, self.name);
        match self.parent {
            Some(p) => {
                let _ = write!(out, ",\"parent\":{p}");
            }
            None => out.push_str(",\"parent\":null"),
        }
        let _ = write!(
            out,
            ",\"root\":{},\"depth\":{},\"start_us\":{},\"dur_us\":{},\"fields\":{{",
            self.root, self.depth, self.start_us, self.dur_us
        );
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::write_escaped(out, k);
            out.push(':');
            v.write_compact(out);
        }
        out.push_str("}}");
    }
}

/// Render events as JSONL: one compact JSON object per line.
pub fn export_jsonl(events: &[SpanEvent]) -> String {
    let mut out = String::new();
    for e in events {
        e.write_jsonl(&mut out);
        out.push('\n');
    }
    out
}

const DEFAULT_CAPACITY: usize = 65_536;

struct Collector {
    buf: VecDeque<SpanEvent>,
    capacity: usize,
    dropped: u64,
}

fn collector() -> &'static Mutex<Collector> {
    static C: OnceLock<Mutex<Collector>> = OnceLock::new();
    C.get_or_init(|| {
        Mutex::new(Collector {
            buf: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
        })
    })
}

fn epoch() -> Instant {
    static E: OnceLock<Instant> = OnceLock::new();
    *E.get_or_init(Instant::now)
}

fn record(event: SpanEvent) {
    // The slow-op log keeps its own copy of threshold-crossing spans, so
    // they survive ring eviction and telemetry sampling alike.
    crate::slowlog::observe(&event);
    let mut c = collector().lock().unwrap();
    if c.buf.len() >= c.capacity {
        c.buf.pop_front();
        c.dropped += 1;
    }
    c.buf.push_back(event);
}

/// Drain and return every collected event (oldest first).
pub fn take() -> Vec<SpanEvent> {
    let mut c = collector().lock().unwrap();
    c.buf.drain(..).collect()
}

/// Copy the collected events without draining them.
pub fn events() -> Vec<SpanEvent> {
    collector().lock().unwrap().buf.iter().cloned().collect()
}

/// Discard all collected events.
pub fn clear() {
    let mut c = collector().lock().unwrap();
    c.buf.clear();
    c.dropped = 0;
}

/// Number of events evicted because the ring buffer was full.
pub fn dropped() -> u64 {
    collector().lock().unwrap().dropped
}

/// Resize the ring buffer (evicting oldest events if shrinking).
pub fn set_capacity(capacity: usize) {
    let mut c = collector().lock().unwrap();
    c.capacity = capacity.max(1);
    while c.buf.len() > c.capacity {
        c.buf.pop_front();
        c.dropped += 1;
    }
}

struct OpenSpan {
    id: u64,
    name: &'static str,
    parent: Option<u64>,
    root: u64,
    depth: usize,
    start: Instant,
    fields: Vec<(&'static str, Json)>,
    /// False when the head sampler dropped this span's trace: the guard
    /// still maintains the span stack (descendant slow-log candidates
    /// keep correct parent links), but stores no fields and records
    /// nothing at close.
    live: bool,
}

/// RAII handle for an open span; records a [`SpanEvent`] on drop. Inert
/// (all methods no-ops) when created while tracing was disabled.
#[must_use = "a span measures the region up to its drop point"]
pub struct SpanGuard {
    inner: Option<OpenSpan>,
}

impl SpanGuard {
    /// Attach a field to the span (no-op when the span is not recording).
    pub fn field(&mut self, key: &'static str, value: Json) {
        if let Some(open) = &mut self.inner {
            if open.live {
                open.fields.push((key, value));
            }
        }
    }

    /// True when this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.as_ref().is_some_and(|o| o.live)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.inner.take() else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop back to (and including) this span; tolerate guards
            // dropped out of order rather than corrupting the stack.
            if let Some(pos) = stack.iter().rposition(|&(id, _)| id == open.id) {
                stack.truncate(pos);
            }
        });
        if open.id == open.root {
            // A closing trace root ends any inert region it opened.
            INERT_ROOT.with(|c| {
                if c.get() == Some(open.id) {
                    c.set(None);
                }
            });
        }
        if !open.live {
            HEAD_SKIPPED.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let start_us = open.start.duration_since(epoch()).as_micros() as u64;
        let dur_us = open.start.elapsed().as_micros() as u64;
        record(SpanEvent {
            id: open.id,
            thread: current_thread_id(),
            name: open.name,
            parent: open.parent,
            root: open.root,
            depth: open.depth,
            start_us,
            dur_us,
            fields: open.fields,
        });
    }
}

/// Open a span; inert when tracing is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { inner: None };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, root, depth) = STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let (parent, root) = effective_parent(&stack, id);
        let depth = stack.len();
        stack.push((id, root));
        (parent, root, depth)
    });
    // Record-time head sampling: decided once at the trace root (its
    // fresh id is the root id the drain-time policy will hash, so both
    // make the same call); descendants inherit the verdict through
    // INERT_ROOT. Spans with a slow-log threshold registered for their
    // name stay live regardless — the slow-op log must see them.
    let live = {
        let n = HEAD_SAMPLE.load(Ordering::Relaxed);
        if n <= 1 {
            true
        } else {
            let inert = if parent.is_none() && root == id {
                let inert = !mix(id).is_multiple_of(n);
                INERT_ROOT.with(|c| c.set(inert.then_some(id)));
                inert
            } else {
                INERT_ROOT.with(std::cell::Cell::get) == Some(root)
            };
            !inert || crate::slowlog::threshold_for(name).is_some()
        }
    };
    // Pin the epoch before taking the span clock so start_us never
    // underflows on the first-ever span.
    let start = if live { Instant::now() } else { epoch() };
    SpanGuard {
        inner: Some(OpenSpan {
            id,
            name,
            parent,
            root,
            depth,
            start,
            // one exact-size allocation for the common field count — the
            // 0→4→8 growth path costs a realloc on every 5-field span;
            // inert spans allocate nothing
            fields: if live {
                Vec::with_capacity(8)
            } else {
                Vec::new()
            },
            live,
        }),
    }
}

/// Record an instant event; the field closure only runs when tracing is
/// enabled, so the disabled cost is the single [`enabled`] branch.
pub fn event_with(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Json)>) {
    if !enabled() {
        return;
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let (parent, root, depth) = STACK.with(|s| {
        let stack = s.borrow();
        let (parent, root) = effective_parent(&stack, id);
        (parent, root, stack.len())
    });
    let start_us = Instant::now().duration_since(epoch()).as_micros() as u64;
    record(SpanEvent {
        id,
        thread: current_thread_id(),
        name,
        parent,
        root,
        depth,
        start_us,
        dur_us: 0,
        fields: fields(),
    });
}

/// Record a per-row debug event; skipped entirely (closure never runs)
/// unless tracing is on at [`Verbosity::Debug`]. Use this for
/// instrumentation that fires once per tuple touched — probe steps,
/// enumeration criteria — where recording would cost more than the work
/// being traced.
pub fn debug_event_with(name: &'static str, fields: impl FnOnce() -> Vec<(&'static str, Json)>) {
    if !debug_enabled() {
        return;
    }
    event_with(name, fields);
}

/// Crate-wide serialization for tests that toggle the process-global
/// trace flag or drain the global collector: every test module in this
/// crate that enables tracing must hold this lock, or concurrent test
/// threads would observe each other's events.
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// These tests toggle the process-global enabled flag, so they must
    /// not overlap each other.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        test_serial()
    }

    fn my_events(named: &str) -> Vec<SpanEvent> {
        let me = current_thread_id();
        events()
            .into_iter()
            .filter(|e| e.thread == me && e.name == named)
            .collect()
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let _serial = serial();
        // No scope held: a span opened now must be inert.
        let mut g = span("test.disabled_span");
        assert!(!g.is_recording());
        g.field("k", Json::Int(1));
        drop(g);
        event_with("test.disabled_event", || {
            panic!("field closure must not run while tracing is off")
        });
        assert!(my_events("test.disabled_span").is_empty());
        assert!(my_events("test.disabled_event").is_empty());
    }

    #[test]
    fn spans_nest_and_events_attach() {
        let _serial = serial();
        let _scope = start_trace();
        {
            let mut outer = span("test.outer");
            outer.field("tag", Json::str("o"));
            {
                let _inner = span("test.inner");
                event_with("test.instant", || vec![("n", Json::Int(7))]);
            }
        }
        let outer = my_events("test.outer");
        let inner = my_events("test.inner");
        let instant = my_events("test.instant");
        assert_eq!(outer.len(), 1);
        assert_eq!(inner.len(), 1);
        assert_eq!(instant.len(), 1);
        assert_eq!(inner[0].parent, Some(outer[0].id));
        assert_eq!(inner[0].depth, 1);
        assert_eq!(instant[0].parent, Some(inner[0].id));
        assert_eq!(instant[0].dur_us, 0);
        assert_eq!(instant[0].field("n"), Some(&Json::Int(7)));
        assert_eq!(outer[0].field("tag").unwrap().as_str().unwrap(), "o");
    }

    #[test]
    fn jsonl_export_parses_back() {
        let _serial = serial();
        let _scope = start_trace();
        {
            let mut s = span("test.jsonl");
            s.field("rows", Json::Int(3));
        }
        let evs = my_events("test.jsonl");
        let jsonl = export_jsonl(&evs);
        for line in jsonl.lines() {
            let v = crate::json::parse(line).unwrap();
            assert_eq!(v.field("name").unwrap().as_str().unwrap(), "test.jsonl");
            assert_eq!(
                v.field("fields")
                    .unwrap()
                    .field("rows")
                    .unwrap()
                    .as_i64()
                    .unwrap(),
                3
            );
        }
    }

    #[test]
    fn worker_spans_link_into_callers_tree() {
        let _serial = serial();
        let _scope = start_trace();
        let worker_thread;
        {
            let _outer = span("test.link_outer");
            let parent = current_span_id();
            assert!(parent.is_some());
            worker_thread = std::thread::spawn(move || {
                let _link = link_parent(parent);
                {
                    let _inner = span("test.link_inner");
                    event_with("test.link_event", Vec::new);
                }
                current_thread_id()
            })
            .join()
            .unwrap();
        }
        let me = current_thread_id();
        let evs = events();
        let outer = evs
            .iter()
            .find(|e| e.thread == me && e.name == "test.link_outer")
            .unwrap();
        let inner = evs
            .iter()
            .find(|e| e.thread == worker_thread && e.name == "test.link_inner")
            .unwrap();
        let instant = evs
            .iter()
            .find(|e| e.thread == worker_thread && e.name == "test.link_event")
            .unwrap();
        // the worker's span parents into the caller's open span, and the
        // worker's own nesting continues beneath it
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(instant.parent, Some(inner.id));
    }

    #[test]
    fn parent_link_restores_on_drop() {
        let _serial = serial();
        let _scope = start_trace();
        {
            let _a = link_parent(Some(999_991));
            assert_eq!(current_span_id(), Some(999_991));
            {
                let _b = link_parent(Some(999_997));
                assert_eq!(current_span_id(), Some(999_997));
            }
            assert_eq!(current_span_id(), Some(999_991));
            // an open span shadows the link
            {
                let _s = span("test.link_shadow");
                assert_ne!(current_span_id(), Some(999_991));
            }
        }
        assert_eq!(current_span_id(), None);
    }

    #[test]
    fn roots_propagate_through_nesting_and_links() {
        let _serial = serial();
        let _scope = start_trace();
        let worker_thread;
        {
            let _outer = span("test.root_outer");
            let parent = current_span_id();
            {
                let _mid = span("test.root_mid");
                event_with("test.root_event", Vec::new);
            }
            worker_thread = std::thread::spawn(move || {
                let _link = link_parent(parent);
                let _w = span("test.root_worker");
                current_thread_id()
            })
            .join()
            .unwrap();
        }
        let evs = events();
        let me = current_thread_id();
        let outer = evs
            .iter()
            .find(|e| e.thread == me && e.name == "test.root_outer")
            .unwrap();
        // a top-level span is its own root
        assert_eq!(outer.root, outer.id);
        // children and instant events inherit it
        for name in ["test.root_mid", "test.root_event"] {
            let e = evs
                .iter()
                .find(|e| e.thread == me && e.name == name)
                .unwrap();
            assert_eq!(e.root, outer.id, "{name}");
        }
        // a linked worker subtree groups under the linked caller span
        let w = evs
            .iter()
            .find(|e| e.thread == worker_thread && e.name == "test.root_worker")
            .unwrap();
        assert_eq!(w.root, outer.id);
    }

    #[test]
    fn concurrent_writers_overflow_counts_dropped_exactly() {
        let _serial = serial();
        let _scope = start_trace();
        clear();
        set_capacity(64);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..100 {
                        let mut s = span("test.concurrent_writer");
                        s.field("t", Json::Int(t));
                        s.field("i", Json::Int(i));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 400 spans into a 64-slot ring: exactly 336 evictions, no more,
        // no less, even under contention
        assert_eq!(events().len(), 64);
        assert_eq!(dropped(), 336);
        clear();
        set_capacity(DEFAULT_CAPACITY);
    }

    #[test]
    fn set_capacity_mid_stream_keeps_active_span_linkage() {
        let _serial = serial();
        let _scope = start_trace();
        let (outer_id, inner_events);
        {
            let outer = span("test.shrink_outer");
            assert!(outer.is_recording());
            outer_id = current_span_id().unwrap();
            // fill the ring, then shrink it out from under the open span
            for _ in 0..32 {
                event_with("test.shrink_noise", Vec::new);
            }
            set_capacity(1);
            // the ring evicted everything, but the *stack* is untouched:
            // a child opened now still parents into the live span
            {
                let _inner = span("test.shrink_inner");
            }
            set_capacity(DEFAULT_CAPACITY);
            {
                let _inner = span("test.shrink_inner");
            }
            inner_events = my_events("test.shrink_inner");
        }
        assert_eq!(inner_events.len(), 2);
        for e in &inner_events {
            assert_eq!(e.parent, Some(outer_id));
            assert_eq!(e.root, outer_id);
            assert_eq!(e.depth, 1);
        }
        // the outer span itself closes intact after both resizes
        let outer = my_events("test.shrink_outer");
        assert_eq!(outer.len(), 1);
        assert_eq!(outer[0].parent, None);
    }

    #[test]
    fn write_jsonl_matches_tree_serialization() {
        let _serial = serial();
        let _scope = start_trace();
        {
            let mut outer = span("test.jsonl_direct");
            outer.field("s", Json::str("a \"quoted\" value\n"));
            outer.field("i", Json::Int(-7));
            outer.field("f", Json::Float(1.5));
            outer.field("n", Json::Null);
            let _inner = span("test.jsonl_direct");
        }
        for e in my_events("test.jsonl_direct") {
            let mut direct = String::new();
            e.write_jsonl(&mut direct);
            assert_eq!(direct, e.to_json().compact());
        }
    }

    #[test]
    fn info_verbosity_skips_debug_events_without_running_closures() {
        let _serial = serial();
        let _scope = start_trace();
        let prev = set_verbosity(Verbosity::Info);
        assert!(!debug_enabled());
        debug_event_with("test.debug_gated", || {
            panic!("debug field closure must not run at Info")
        });
        assert!(my_events("test.debug_gated").is_empty());
        // ordinary events still record at Info
        event_with("test.info_event", Vec::new);
        assert_eq!(my_events("test.info_event").len(), 1);
        set_verbosity(Verbosity::Debug);
        debug_event_with("test.debug_gated", || vec![("n", Json::Int(1))]);
        assert_eq!(my_events("test.debug_gated").len(), 1);
        set_verbosity(prev);
    }

    #[test]
    fn head_sampler_skips_spans_but_keeps_thresholded_names_and_events() {
        let _serial = serial();
        let _scope = start_trace();
        clear();
        crate::slowlog::threshold(
            "test.head.thresholded",
            std::time::Duration::from_secs(3600),
        );
        let prev = set_head_sample(u64::MAX); // drop every trace
        take_head_skipped();
        {
            let mut root = span("test.head.root");
            root.field("ignored", Json::Int(1));
            assert!(!root.is_recording());
            let child = span("test.head.plain_child");
            assert!(!child.is_recording());
            // thresholded names always record, even inside an inert
            // trace, and keep their parent links through the span stack
            let kept = span("test.head.thresholded");
            assert!(kept.is_recording());
            drop(kept);
            // instant events are exempt (keep_errors depends on them)
            event_with("test.head.event", || vec![("error", Json::str("x"))]);
        }
        assert!(my_events("test.head.root").is_empty());
        assert!(my_events("test.head.plain_child").is_empty());
        let kept = my_events("test.head.thresholded");
        assert_eq!(kept.len(), 1);
        assert!(kept[0].parent.is_some());
        assert_ne!(kept[0].root, kept[0].id);
        assert_eq!(my_events("test.head.event").len(), 1);
        assert!(take_head_skipped() >= 2); // root + plain child
                                           // a fresh root after the inert one records again at rate 1
        set_head_sample(1);
        {
            let _s = span("test.head.after");
        }
        assert_eq!(my_events("test.head.after").len(), 1);
        set_head_sample(prev);
        crate::slowlog::clear_threshold("test.head.thresholded");
        clear();
    }

    #[test]
    fn nested_scopes_keep_tracing_on() {
        let _serial = serial();
        let a = start_trace();
        let b = start_trace();
        drop(a);
        assert!(enabled());
        {
            let _s = span("test.nested_scope");
        }
        assert_eq!(my_events("test.nested_scope").len(), 1);
        drop(b);
    }
}
