//! System health: a programmable policy turning raw observability
//! signals into an Ok/Degraded/Unhealthy verdict with machine-readable
//! reasons.
//!
//! Counters and histograms tell an operator *what happened*; they do not
//! say whether the system is currently fine. This module closes that gap
//! the way programmable view-update strategies close the dialog gap:
//! the thresholds are *policy as code* ([`HealthPolicy`]), evaluated by
//! the system itself over a snapshot of its signals ([`HealthInputs`]),
//! yielding a [`HealthReport`] that machines can route on (alerting,
//! load shedding) and humans can read.
//!
//! This crate sits at the bottom of the workspace, so the inputs are
//! plain names and numbers; the PENGUIN facade gathers them from the
//! journal, the store, the materialized views and the plan cache and
//! exposes the verdict as `Penguin::health()`.

use crate::json::Json;
use std::sync::Arc;

/// The verdict, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum HealthStatus {
    /// Every signal within its policy thresholds.
    #[default]
    Ok,
    /// Operating, but a signal crossed its degraded threshold — the
    /// system is falling behind or has recently lost redundancy.
    Degraded,
    /// A signal crossed its unhealthy threshold — intervention needed.
    Unhealthy,
}

impl std::fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unhealthy => "unhealthy",
        })
    }
}

/// One machine-readable reason contributing to a verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReason {
    /// Stable, machine-routable code: `signal[:subject]`, e.g.
    /// `journal_lag:view/omega`, `wal_bytes`, `plan_cache_hit_ratio`.
    pub code: String,
    /// Severity this reason contributes to the overall status.
    pub status: HealthStatus,
    /// The observed value of the signal.
    pub value: f64,
    /// The policy threshold it crossed.
    pub threshold: f64,
    /// Human-readable sentence.
    pub detail: String,
}

impl HealthReason {
    /// The reason as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("code", Json::str(self.code.as_str())),
            ("status", Json::str(self.status.to_string())),
            ("value", Json::Float(self.value)),
            ("threshold", Json::Float(self.threshold)),
            ("detail", Json::str(self.detail.as_str())),
        ])
    }
}

/// The verdict plus every reason behind it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthReport {
    /// Worst severity across the reasons ([`HealthStatus::Ok`] when no
    /// reason fired).
    pub status: HealthStatus,
    /// Every threshold crossing, in evaluation order.
    pub reasons: Vec<HealthReason>,
}

impl HealthReport {
    /// True when the verdict is [`HealthStatus::Ok`].
    pub fn is_ok(&self) -> bool {
        self.status == HealthStatus::Ok
    }

    /// The report as a JSON object (stable shape for export).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("status", Json::str(self.status.to_string())),
            (
                "reasons",
                Json::Arr(self.reasons.iter().map(HealthReason::to_json).collect()),
            ),
        ])
    }
}

/// Staleness of one materialized view, as the facade reports it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StalenessInput {
    /// The view's name.
    pub name: String,
    /// Committed journal entries the view has not applied yet.
    pub pending: u64,
    /// Journal entries evicted past the view's cursor (a hole in its
    /// delta stream: the next refresh must fully rebuild).
    pub lapsed: u64,
}

/// A snapshot of every signal a [`HealthPolicy`] evaluates. All fields
/// are optional-by-shape: an in-memory system simply leaves the storage
/// signals `None`/empty.
#[derive(Debug, Clone, Default)]
pub struct HealthInputs {
    /// Journal lag per consumer as `(name, pending entries)` — the WAL
    /// persister, each materialized view, and any external cursors.
    pub consumer_lags: Vec<(String, u64)>,
    /// Committed-but-unpersisted transactions (`None` when in-memory).
    pub persistence_lag: Option<u64>,
    /// Per-view staleness (pending entries + lapsed cursors).
    pub view_staleness: Vec<StalenessInput>,
    /// Total bytes across *live* write-ahead-log segments — segments
    /// holding at least one record newer than the last checkpoint, plus
    /// the active segment (`None` when in-memory). With a segmented WAL
    /// a single "bytes since checkpoint" number under-reports growth:
    /// retired-but-uncompacted segments still occupy disk, so the policy
    /// grades the live total.
    pub wal_live_bytes: Option<u64>,
    /// Number of WAL segment files on disk, live and retired (`None`
    /// when in-memory). A climbing count with a healthy byte total means
    /// compaction stopped folding retired segments.
    pub wal_segments: Option<u64>,
    /// Whether the last recovery truncated a torn tail (`None` when the
    /// system was not recovered).
    pub recovery_torn_tail: Option<bool>,
    /// Plan-cache hits since start.
    pub plan_cache_hits: u64,
    /// Plan-cache misses since start.
    pub plan_cache_misses: u64,
    /// Currently open network connections (`None` when no server is
    /// attached). Filled by the network layer, which evaluates the same
    /// policy the facade uses so one verdict covers both.
    pub net_active_connections: Option<u64>,
    /// The server's global connection limit (`None` when no server is
    /// attached or the limit is unbounded).
    pub net_connection_limit: Option<u64>,
}

/// A custom, code-defined health rule (see [`HealthPolicy::with_rule`]).
pub type HealthRule = Arc<dyn Fn(&HealthInputs) -> Option<HealthReason> + Send + Sync>;

/// Thresholds (and custom rules) turning [`HealthInputs`] into a
/// [`HealthReport`]. All thresholds are inclusive lower bounds for the
/// violation ("value ≥ threshold fires"); set one to `u64::MAX` to
/// disable that signal.
#[derive(Clone)]
pub struct HealthPolicy {
    /// Per-consumer journal lag that degrades the verdict.
    pub journal_lag_degraded: u64,
    /// Per-consumer journal lag that makes the system unhealthy.
    pub journal_lag_unhealthy: u64,
    /// Persistence lag (committed, unpersisted transactions) that
    /// degrades the verdict.
    pub persistence_lag_degraded: u64,
    /// Persistence lag that makes the system unhealthy.
    pub persistence_lag_unhealthy: u64,
    /// Per-view pending journal entries that degrade the verdict.
    pub staleness_degraded: u64,
    /// Live WAL segment bytes that degrade the verdict.
    pub wal_bytes_degraded: u64,
    /// Live WAL segment bytes that make the system unhealthy.
    pub wal_bytes_unhealthy: u64,
    /// On-disk WAL segment count that degrades the verdict (compaction
    /// is expected to bound the count well below this).
    pub wal_segments_degraded: u64,
    /// On-disk WAL segment count that makes the system unhealthy.
    pub wal_segments_unhealthy: u64,
    /// Minimum plan-cache hit ratio (hits / lookups) once at least
    /// [`HealthPolicy::plan_cache_min_lookups`] lookups have happened;
    /// below it the verdict degrades.
    pub plan_cache_min_hit_ratio: f64,
    /// Lookups before the hit-ratio rule applies (a cold cache is not a
    /// health problem).
    pub plan_cache_min_lookups: u64,
    /// Connection saturation (active / limit) that degrades the verdict —
    /// the server is close enough to its connection limit that admission
    /// rejections are imminent.
    pub conn_saturation_degraded: f64,
    /// Connection saturation that makes the system unhealthy: at or past
    /// this ratio new clients are being turned away.
    pub conn_saturation_unhealthy: f64,
    /// Additional code-defined rules, evaluated after the built-ins.
    rules: Vec<HealthRule>,
}

impl std::fmt::Debug for HealthPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HealthPolicy")
            .field("journal_lag_degraded", &self.journal_lag_degraded)
            .field("journal_lag_unhealthy", &self.journal_lag_unhealthy)
            .field("persistence_lag_degraded", &self.persistence_lag_degraded)
            .field("persistence_lag_unhealthy", &self.persistence_lag_unhealthy)
            .field("staleness_degraded", &self.staleness_degraded)
            .field("wal_bytes_degraded", &self.wal_bytes_degraded)
            .field("wal_bytes_unhealthy", &self.wal_bytes_unhealthy)
            .field("wal_segments_degraded", &self.wal_segments_degraded)
            .field("wal_segments_unhealthy", &self.wal_segments_unhealthy)
            .field("plan_cache_min_hit_ratio", &self.plan_cache_min_hit_ratio)
            .field("plan_cache_min_lookups", &self.plan_cache_min_lookups)
            .field("conn_saturation_degraded", &self.conn_saturation_degraded)
            .field("conn_saturation_unhealthy", &self.conn_saturation_unhealthy)
            .field("rules", &self.rules.len())
            .finish()
    }
}

impl Default for HealthPolicy {
    /// Conservative production defaults, sized for the in-tree
    /// workloads: a few hundred pending journal entries mean a consumer
    /// stopped draining; tens of MiB of WAL mean checkpointing stalled.
    fn default() -> Self {
        HealthPolicy {
            journal_lag_degraded: 256,
            journal_lag_unhealthy: 4096,
            persistence_lag_degraded: 256,
            persistence_lag_unhealthy: 4096,
            staleness_degraded: 256,
            wal_bytes_degraded: 64 << 20,
            wal_bytes_unhealthy: 512 << 20,
            wal_segments_degraded: 64,
            wal_segments_unhealthy: 512,
            plan_cache_min_hit_ratio: 0.5,
            plan_cache_min_lookups: 128,
            conn_saturation_degraded: 0.85,
            conn_saturation_unhealthy: 1.0,
            rules: Vec::new(),
        }
    }
}

impl HealthPolicy {
    /// Add a code-defined rule: return `Some(reason)` to contribute to
    /// the verdict, `None` to pass. Rules run after the built-in
    /// threshold checks, over the same inputs.
    pub fn with_rule(
        mut self,
        rule: impl Fn(&HealthInputs) -> Option<HealthReason> + Send + Sync + 'static,
    ) -> Self {
        self.rules.push(Arc::new(rule));
        self
    }

    /// Number of registered custom rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Grade `value` against a degraded/unhealthy threshold pair.
    fn grade(value: u64, degraded: u64, unhealthy: u64) -> Option<(HealthStatus, u64)> {
        if value >= unhealthy {
            Some((HealthStatus::Unhealthy, unhealthy))
        } else if value >= degraded {
            Some((HealthStatus::Degraded, degraded))
        } else {
            None
        }
    }

    /// Evaluate the policy over one snapshot of inputs.
    pub fn evaluate(&self, inputs: &HealthInputs) -> HealthReport {
        let mut reasons = Vec::new();

        for (name, lag) in &inputs.consumer_lags {
            if let Some((status, threshold)) =
                Self::grade(*lag, self.journal_lag_degraded, self.journal_lag_unhealthy)
            {
                reasons.push(HealthReason {
                    code: format!("journal_lag:{name}"),
                    status,
                    value: *lag as f64,
                    threshold: threshold as f64,
                    detail: format!(
                        "journal consumer `{name}` is {lag} committed transactions behind"
                    ),
                });
            }
        }

        if let Some(lag) = inputs.persistence_lag {
            if let Some((status, threshold)) = Self::grade(
                lag,
                self.persistence_lag_degraded,
                self.persistence_lag_unhealthy,
            ) {
                reasons.push(HealthReason {
                    code: "persistence_lag".to_owned(),
                    status,
                    value: lag as f64,
                    threshold: threshold as f64,
                    detail: format!("{lag} committed transactions await the write-ahead log"),
                });
            }
        }

        for view in &inputs.view_staleness {
            if view.lapsed > 0 {
                reasons.push(HealthReason {
                    code: format!("journal_lapsed:{}", view.name),
                    status: HealthStatus::Degraded,
                    value: view.lapsed as f64,
                    threshold: 1.0,
                    detail: format!(
                        "materialized view `{}` lost {} journal entries; next refresh rebuilds in full",
                        view.name, view.lapsed
                    ),
                });
            }
            if view.pending >= self.staleness_degraded {
                reasons.push(HealthReason {
                    code: format!("view_staleness:{}", view.name),
                    status: HealthStatus::Degraded,
                    value: view.pending as f64,
                    threshold: self.staleness_degraded as f64,
                    detail: format!(
                        "materialized view `{}` is {} transactions stale",
                        view.name, view.pending
                    ),
                });
            }
        }

        if let Some(bytes) = inputs.wal_live_bytes {
            if let Some((status, threshold)) =
                Self::grade(bytes, self.wal_bytes_degraded, self.wal_bytes_unhealthy)
            {
                let segments = inputs
                    .wal_segments
                    .map(|n| format!(" across {n} segments"))
                    .unwrap_or_default();
                reasons.push(HealthReason {
                    code: "wal_bytes".to_owned(),
                    status,
                    value: bytes as f64,
                    threshold: threshold as f64,
                    detail: format!("{bytes} live WAL bytes{segments} not yet checkpointed"),
                });
            }
        }

        if let Some(segments) = inputs.wal_segments {
            if let Some((status, threshold)) = Self::grade(
                segments,
                self.wal_segments_degraded,
                self.wal_segments_unhealthy,
            ) {
                reasons.push(HealthReason {
                    code: "wal_segments".to_owned(),
                    status,
                    value: segments as f64,
                    threshold: threshold as f64,
                    detail: format!(
                        "{segments} WAL segment files on disk; compaction is not folding retired segments"
                    ),
                });
            }
        }

        if inputs.recovery_torn_tail == Some(true) {
            reasons.push(HealthReason {
                code: "recovery_torn_tail".to_owned(),
                status: HealthStatus::Degraded,
                value: 1.0,
                threshold: 1.0,
                detail: "last recovery truncated a torn write-ahead-log tail".to_owned(),
            });
        }

        let lookups = inputs.plan_cache_hits + inputs.plan_cache_misses;
        if lookups >= self.plan_cache_min_lookups && self.plan_cache_min_lookups != u64::MAX {
            let ratio = inputs.plan_cache_hits as f64 / lookups as f64;
            if ratio < self.plan_cache_min_hit_ratio {
                reasons.push(HealthReason {
                    code: "plan_cache_hit_ratio".to_owned(),
                    status: HealthStatus::Degraded,
                    value: ratio,
                    threshold: self.plan_cache_min_hit_ratio,
                    detail: format!(
                        "plan cache hit ratio {ratio:.3} below {:.3} over {lookups} lookups",
                        self.plan_cache_min_hit_ratio
                    ),
                });
            }
        }

        if let (Some(active), Some(limit)) =
            (inputs.net_active_connections, inputs.net_connection_limit)
        {
            if limit > 0 {
                let ratio = active as f64 / limit as f64;
                let crossing = if ratio >= self.conn_saturation_unhealthy {
                    Some((HealthStatus::Unhealthy, self.conn_saturation_unhealthy))
                } else if ratio >= self.conn_saturation_degraded {
                    Some((HealthStatus::Degraded, self.conn_saturation_degraded))
                } else {
                    None
                };
                if let Some((status, threshold)) = crossing {
                    reasons.push(HealthReason {
                        code: "connection_saturation".to_owned(),
                        status,
                        value: ratio,
                        threshold,
                        detail: format!(
                            "{active} of {limit} network connections in use; new clients \
                             {} rejection",
                            if status == HealthStatus::Unhealthy {
                                "face"
                            } else {
                                "approach"
                            }
                        ),
                    });
                }
            }
        }

        for rule in &self.rules {
            if let Some(reason) = rule(inputs) {
                reasons.push(reason);
            }
        }

        let status = reasons
            .iter()
            .map(|r| r.status)
            .max()
            .unwrap_or(HealthStatus::Ok);
        HealthReport { status, reasons }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_inputs_are_ok() {
        let report = HealthPolicy::default().evaluate(&HealthInputs::default());
        assert!(report.is_ok());
        assert!(report.reasons.is_empty());
        assert_eq!(
            report.to_json().field("status").unwrap().as_str().unwrap(),
            "ok"
        );
    }

    #[test]
    fn severity_orders_and_worst_wins() {
        assert!(HealthStatus::Ok < HealthStatus::Degraded);
        assert!(HealthStatus::Degraded < HealthStatus::Unhealthy);
        let policy = HealthPolicy::default();
        let inputs = HealthInputs {
            consumer_lags: vec![
                ("ok".into(), 0),
                ("slow".into(), policy.journal_lag_degraded),
                ("stuck".into(), policy.journal_lag_unhealthy),
            ],
            ..HealthInputs::default()
        };
        let report = policy.evaluate(&inputs);
        assert_eq!(report.status, HealthStatus::Unhealthy);
        assert_eq!(report.reasons.len(), 2);
        assert_eq!(report.reasons[0].code, "journal_lag:slow");
        assert_eq!(report.reasons[0].status, HealthStatus::Degraded);
        assert_eq!(report.reasons[1].code, "journal_lag:stuck");
        assert_eq!(report.reasons[1].status, HealthStatus::Unhealthy);
    }

    #[test]
    fn lapsed_views_and_torn_tails_degrade() {
        let report = HealthPolicy::default().evaluate(&HealthInputs {
            view_staleness: vec![StalenessInput {
                name: "omega".into(),
                pending: 3,
                lapsed: 7,
            }],
            recovery_torn_tail: Some(true),
            ..HealthInputs::default()
        });
        assert_eq!(report.status, HealthStatus::Degraded);
        let codes: Vec<&str> = report.reasons.iter().map(|r| r.code.as_str()).collect();
        assert_eq!(codes, vec!["journal_lapsed:omega", "recovery_torn_tail"]);
    }

    #[test]
    fn plan_cache_ratio_needs_warmup() {
        let policy = HealthPolicy::default();
        // cold cache: all misses but under the lookup floor → no reason
        let cold = policy.evaluate(&HealthInputs {
            plan_cache_misses: policy.plan_cache_min_lookups - 1,
            ..HealthInputs::default()
        });
        assert!(cold.is_ok());
        // warm cache with a bad ratio → degraded
        let warm = policy.evaluate(&HealthInputs {
            plan_cache_hits: 10,
            plan_cache_misses: policy.plan_cache_min_lookups * 2,
            ..HealthInputs::default()
        });
        assert_eq!(warm.status, HealthStatus::Degraded);
        assert_eq!(warm.reasons[0].code, "plan_cache_hit_ratio");
    }

    #[test]
    fn custom_rules_run_after_builtins() {
        let policy = HealthPolicy::default().with_rule(|inputs| {
            (inputs.consumer_lags.len() > 2).then(|| HealthReason {
                code: "too_many_consumers".into(),
                status: HealthStatus::Unhealthy,
                value: 3.0,
                threshold: 2.0,
                detail: "journal fan-out beyond budget".into(),
            })
        });
        assert_eq!(policy.rule_count(), 1);
        let report = policy.evaluate(&HealthInputs {
            consumer_lags: vec![("a".into(), 0), ("b".into(), 0), ("c".into(), 0)],
            ..HealthInputs::default()
        });
        assert_eq!(report.status, HealthStatus::Unhealthy);
        assert_eq!(report.reasons.last().unwrap().code, "too_many_consumers");
    }

    #[test]
    fn wal_and_persistence_thresholds_grade() {
        let policy = HealthPolicy::default();
        let report = policy.evaluate(&HealthInputs {
            persistence_lag: Some(policy.persistence_lag_unhealthy + 5),
            wal_live_bytes: Some(policy.wal_bytes_degraded),
            wal_segments: Some(7),
            ..HealthInputs::default()
        });
        assert_eq!(report.status, HealthStatus::Unhealthy);
        let by_code = |c: &str| report.reasons.iter().find(|r| r.code == c).unwrap();
        assert_eq!(by_code("persistence_lag").status, HealthStatus::Unhealthy);
        assert_eq!(by_code("wal_bytes").status, HealthStatus::Degraded);
        // the byte reason names the segment count it spans
        assert!(by_code("wal_bytes").detail.contains("across 7 segments"));
        // a healthy segment count contributes no reason of its own
        assert!(!report.reasons.iter().any(|r| r.code == "wal_segments"));
    }

    #[test]
    fn connection_saturation_grades_by_ratio() {
        let policy = HealthPolicy::default();
        // well below the limit → no reason
        let quiet = policy.evaluate(&HealthInputs {
            net_active_connections: Some(8),
            net_connection_limit: Some(64),
            ..HealthInputs::default()
        });
        assert!(quiet.is_ok());
        // approaching the limit → degraded
        let near = policy.evaluate(&HealthInputs {
            net_active_connections: Some(55),
            net_connection_limit: Some(64),
            ..HealthInputs::default()
        });
        assert_eq!(near.status, HealthStatus::Degraded);
        assert_eq!(near.reasons[0].code, "connection_saturation");
        // at the limit → unhealthy, and the detail names the numbers
        let full = policy.evaluate(&HealthInputs {
            net_active_connections: Some(64),
            net_connection_limit: Some(64),
            ..HealthInputs::default()
        });
        assert_eq!(full.status, HealthStatus::Unhealthy);
        assert!(full.reasons[0].detail.contains("64 of 64"));
        // no server attached (or unbounded limit) → signal absent
        let detached = policy.evaluate(&HealthInputs {
            net_active_connections: Some(10),
            ..HealthInputs::default()
        });
        assert!(detached.is_ok());
        let unbounded = policy.evaluate(&HealthInputs {
            net_active_connections: Some(10),
            net_connection_limit: Some(0),
            ..HealthInputs::default()
        });
        assert!(unbounded.is_ok());
    }

    #[test]
    fn runaway_segment_count_grades_even_with_small_bytes() {
        let policy = HealthPolicy::default();
        let degraded = policy.evaluate(&HealthInputs {
            wal_live_bytes: Some(1024),
            wal_segments: Some(policy.wal_segments_degraded),
            ..HealthInputs::default()
        });
        assert_eq!(degraded.status, HealthStatus::Degraded);
        assert_eq!(degraded.reasons[0].code, "wal_segments");
        let unhealthy = policy.evaluate(&HealthInputs {
            wal_segments: Some(policy.wal_segments_unhealthy + 1),
            ..HealthInputs::default()
        });
        assert_eq!(unhealthy.status, HealthStatus::Unhealthy);
    }
}
