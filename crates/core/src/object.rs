//! View objects (paper §3, Definitions 3.1–3.2).
//!
//! A view object is a *hierarchical subset* of the structural model: a tree
//! of projections rooted at the **pivot relation**. Nodes are stored in an
//! arena ([`ViewObject::nodes`]); node 0 is always the pivot. An edge
//! between parent and child is a *path* of one or more traversal steps over
//! structural connections — paths longer than one step arise when pruning
//! contracts through excluded relations (paper Figure 3: `COURSES —* GRADES
//! *— STUDENT` collapses to a single COURSES→STUDENT edge when GRADES is
//! excluded).

use std::collections::BTreeSet;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// Index of a node within its [`ViewObject`]'s arena.
pub type NodeId = usize;

/// One traversal step over a named connection. `parent_is_from` orients the
/// step: `true` traverses the connection forward (parent on the `from`
/// side), `false` traverses the inverse connection `C⁻¹`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Name of the structural connection.
    pub connection: String,
    /// True when the parent relation is the connection's `from` side.
    pub parent_is_from: bool,
}

impl Step {
    /// Resolve to a [`Traversal`] against the schema.
    pub fn resolve<'a>(&self, schema: &'a StructuralSchema) -> Result<Traversal<'a>> {
        let connection = schema.connection(&self.connection)?;
        Ok(Traversal {
            connection,
            forward: self.parent_is_from,
        })
    }
}

/// The edge from a node's parent to the node: a non-empty path of steps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoEdge {
    /// Steps from the parent's relation to this node's relation.
    pub steps: Vec<Step>,
}

impl VoEdge {
    /// A single-step edge.
    pub fn single(connection: impl Into<String>, parent_is_from: bool) -> Self {
        VoEdge {
            steps: vec![Step {
                connection: connection.into(),
                parent_is_from,
            }],
        }
    }

    /// True when the edge is one direct connection (no contraction).
    pub fn is_direct(&self) -> bool {
        self.steps.len() == 1
    }
}

/// One node of a view object: a projection on a base relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoNode {
    /// This node's arena index.
    pub id: NodeId,
    /// The underlying base relation `d(π)`.
    pub relation: String,
    /// Projection attributes (always includes the locally accessible key
    /// components; see [`ViewObject::validate`]).
    pub attrs: Vec<String>,
    /// Parent node, `None` for the pivot.
    pub parent: Option<NodeId>,
    /// Path from the parent's relation, `None` for the pivot.
    pub edge: Option<VoEdge>,
    /// Child nodes in tree order.
    pub children: Vec<NodeId>,
}

/// A view object: a named tree of projections anchored on a pivot relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewObject {
    name: String,
    nodes: Vec<VoNode>,
}

/// Builder for hand-constructing view objects (generation via
/// [`crate::treegen`] is the usual path; the builder serves tests and
/// examples that want explicit control).
#[derive(Debug)]
pub struct ViewObjectBuilder {
    name: String,
    nodes: Vec<VoNode>,
}

impl ViewObjectBuilder {
    /// Start an object anchored on `pivot` projecting `attrs`.
    pub fn new(name: impl Into<String>, pivot: impl Into<String>, attrs: &[&str]) -> Self {
        let root = VoNode {
            id: 0,
            relation: pivot.into(),
            attrs: attrs.iter().map(|s| (*s).to_owned()).collect(),
            parent: None,
            edge: None,
            children: Vec::new(),
        };
        ViewObjectBuilder {
            name: name.into(),
            nodes: vec![root],
        }
    }

    /// Add a child of `parent` reached by `edge`, projecting `attrs`.
    /// Returns the new node's id.
    pub fn child(
        &mut self,
        parent: NodeId,
        relation: impl Into<String>,
        attrs: &[&str],
        edge: VoEdge,
    ) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(VoNode {
            id,
            relation: relation.into(),
            attrs: attrs.iter().map(|s| (*s).to_owned()).collect(),
            parent: Some(parent),
            edge: Some(edge),
            children: Vec::new(),
        });
        self.nodes[parent].children.push(id);
        id
    }

    /// Validate against the structural schema and finish.
    pub fn build(self, schema: &StructuralSchema) -> Result<ViewObject> {
        let object = ViewObject {
            name: self.name,
            nodes: self.nodes,
        };
        object.validate(schema)?;
        Ok(object)
    }
}

impl ViewObject {
    /// Construct directly from an arena (used by [`crate::treegen`]);
    /// validates.
    pub fn from_nodes(
        name: impl Into<String>,
        nodes: Vec<VoNode>,
        schema: &StructuralSchema,
    ) -> Result<Self> {
        let object = ViewObject {
            name: name.into(),
            nodes,
        };
        object.validate(schema)?;
        Ok(object)
    }

    /// The object's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pivot relation `R1` (Definition 3.2).
    pub fn pivot(&self) -> &str {
        &self.nodes[0].relation
    }

    /// The root node (always the pivot's projection `π1`).
    pub fn root(&self) -> &VoNode {
        &self.nodes[0]
    }

    /// All nodes, root first, in insertion (preorder-compatible) order.
    pub fn nodes(&self) -> &[VoNode] {
        &self.nodes
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> &VoNode {
        &self.nodes[id]
    }

    /// The paper's *complexity*: the number of projections in the object.
    pub fn complexity(&self) -> usize {
        self.nodes.len()
    }

    /// Distinct base relations included (`d(ω)`), sorted.
    pub fn relations(&self) -> Vec<&str> {
        let set: BTreeSet<&str> = self.nodes.iter().map(|n| n.relation.as_str()).collect();
        set.into_iter().collect()
    }

    /// Nodes in depth-first preorder (the traversal order of algorithm
    /// VO-R).
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![0];
        while let Some(id) = stack.pop() {
            out.push(id);
            // push children reversed so the leftmost child is visited first
            for &c in self.nodes[id].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// The object key `K(ω)`: the key attributes of the pivot relation.
    pub fn object_key<'a>(&self, schema: &'a StructuralSchema) -> Result<Vec<&'a str>> {
        Ok(schema.catalog().relation(self.pivot())?.key_names())
    }

    /// Connecting attributes on the parent's side for `node`'s edge (the
    /// attributes of the parent tuple whose values select this node's
    /// tuples). For multi-step edges this is the first step's source side.
    pub fn parent_link_attrs<'a>(
        &self,
        schema: &'a StructuralSchema,
        node: NodeId,
    ) -> Result<&'a [String]> {
        let edge = self.nodes[node]
            .edge
            .as_ref()
            .ok_or_else(|| Error::InvalidSchema("pivot has no edge".into()))?;
        let t = edge.steps[0].resolve(schema)?;
        Ok(t.source_attrs())
    }

    /// Connecting attributes on this node's side of its edge's final step.
    pub fn child_link_attrs<'a>(
        &self,
        schema: &'a StructuralSchema,
        node: NodeId,
    ) -> Result<&'a [String]> {
        let edge = self.nodes[node]
            .edge
            .as_ref()
            .ok_or_else(|| Error::InvalidSchema("pivot has no edge".into()))?;
        let t = edge.steps.last().expect("non-empty").resolve(schema)?;
        Ok(t.target_attrs())
    }

    /// Validate the object against Definitions 3.1–3.2 plus the
    /// instantiation requirements:
    ///
    /// 1. the root projection includes `K(pivot)`;
    /// 2. no node other than the root is defined on the pivot relation;
    /// 3. every edge resolves: each step's connection exists, consecutive
    ///    steps chain (`target(step_i) = source(step_{i+1})`), the first
    ///    step starts at the parent's relation, and the last ends at the
    ///    node's relation;
    /// 4. every projected attribute exists in the node's relation;
    /// 5. every node's projection includes the connecting attributes on its
    ///    own side of its edge, and the parent's projection includes the
    ///    connecting attributes on the parent side — otherwise instances
    ///    could not be assembled or decomposed;
    /// 6. parent/child indices are mutually consistent and acyclic (a tree
    ///    rooted at node 0).
    pub fn validate(&self, schema: &StructuralSchema) -> Result<()> {
        let catalog = schema.catalog();
        if self.nodes.is_empty() {
            return Err(Error::InvalidSchema(format!(
                "view object {} is empty (Definition 3.1 requires a nonempty set)",
                self.name
            )));
        }
        // 1. root carries the object key
        let pivot_schema = catalog.relation(self.pivot())?;
        for k in pivot_schema.key_names() {
            if !self.nodes[0].attrs.iter().any(|a| a == k) {
                return Err(Error::InvalidSchema(format!(
                    "object {}: pivot projection must include key attribute {k}",
                    self.name
                )));
            }
        }
        // 6. tree shape
        if self.nodes[0].parent.is_some() || self.nodes[0].edge.is_some() {
            return Err(Error::InvalidSchema(format!(
                "object {}: node 0 must be the root",
                self.name
            )));
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0usize];
        let mut visited = 0usize;
        while let Some(id) = stack.pop() {
            if seen[id] {
                return Err(Error::InvalidSchema(format!(
                    "object {}: node {id} reachable twice (not a tree)",
                    self.name
                )));
            }
            seen[id] = true;
            visited += 1;
            for &c in &self.nodes[id].children {
                if c >= self.nodes.len() {
                    return Err(Error::InvalidSchema(format!(
                        "object {}: child index {c} out of bounds",
                        self.name
                    )));
                }
                if self.nodes[c].parent != Some(id) {
                    return Err(Error::InvalidSchema(format!(
                        "object {}: node {c} parent link inconsistent",
                        self.name
                    )));
                }
                stack.push(c);
            }
        }
        if visited != self.nodes.len() {
            return Err(Error::InvalidSchema(format!(
                "object {}: {} node(s) unreachable from the root",
                self.name,
                self.nodes.len() - visited
            )));
        }
        for node in &self.nodes {
            let rel_schema = catalog.relation(&node.relation)?;
            // 2. pivot uniqueness
            if node.id != 0 && node.relation == *self.pivot() {
                return Err(Error::InvalidSchema(format!(
                    "object {}: relation {} is the pivot and may appear only at the root",
                    self.name, node.relation
                )));
            }
            // 4. attrs exist
            for a in &node.attrs {
                rel_schema.index_of(a)?;
            }
            if node.attrs.is_empty() {
                return Err(Error::InvalidSchema(format!(
                    "object {}: node {} projects no attributes",
                    self.name, node.id
                )));
            }
            // 3. + 5. edges
            if let Some(edge) = &node.edge {
                if edge.steps.is_empty() {
                    return Err(Error::InvalidSchema(format!(
                        "object {}: node {} has an empty edge",
                        self.name, node.id
                    )));
                }
                let parent = node.parent.expect("non-root");
                let mut at = self.nodes[parent].relation.clone();
                for step in &edge.steps {
                    let t = step.resolve(schema)?;
                    if t.source() != at {
                        return Err(Error::InvalidSchema(format!(
                            "object {}: node {} edge step over {} starts at {} but path is at {at}",
                            self.name,
                            node.id,
                            step.connection,
                            t.source()
                        )));
                    }
                    at = t.target().to_owned();
                }
                if at != node.relation {
                    return Err(Error::InvalidSchema(format!(
                        "object {}: node {} edge ends at {at}, expected {}",
                        self.name, node.id, node.relation
                    )));
                }
                // 5. projections include linking attributes
                let child_attrs = self.child_link_attrs(schema, node.id)?;
                for a in child_attrs {
                    if !node.attrs.iter().any(|x| x == a) {
                        return Err(Error::InvalidSchema(format!(
                            "object {}: node {} must project linking attribute {a}",
                            self.name, node.id
                        )));
                    }
                }
                let parent_attrs = self.parent_link_attrs(schema, node.id)?;
                for a in parent_attrs {
                    if !self.nodes[parent].attrs.iter().any(|x| x == a) {
                        return Err(Error::InvalidSchema(format!(
                            "object {}: node {} (parent of {}) must project linking attribute {a}",
                            self.name, parent, node.id
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Render the tree with connection symbols — the textual analogue of
    /// the paper's Figure 2(c)/Figure 3 drawings.
    pub fn to_tree_string(&self, schema: &StructuralSchema) -> String {
        let mut out = String::new();
        self.render(schema, 0, 0, &mut out);
        out
    }

    fn render(&self, schema: &StructuralSchema, id: NodeId, depth: usize, out: &mut String) {
        let node = &self.nodes[id];
        for _ in 0..depth {
            out.push_str("  ");
        }
        if let Some(edge) = &node.edge {
            let labels: Vec<String> = edge
                .steps
                .iter()
                .filter_map(|s| s.resolve(schema).ok())
                .map(|t| t.label())
                .collect();
            if edge.is_direct() {
                out.push_str(&format!(
                    "{} ({})  [{}]\n",
                    node.relation,
                    node.attrs.join(", "),
                    labels.join(" ; ")
                ));
            } else {
                out.push_str(&format!(
                    "{} ({})  [path: {}]\n",
                    node.relation,
                    node.attrs.join(", "),
                    labels.join(" ; ")
                ));
            }
        } else {
            out.push_str(&format!(
                "{} ({})  [pivot]\n",
                node.relation,
                node.attrs.join(", ")
            ));
        }
        for &c in &node.children {
            self.render(schema, c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::university::university_schema;

    fn omega(schema: &StructuralSchema) -> ViewObject {
        // Figure 2(c): COURSES pivot with DEPARTMENT, CURRICULUM, GRADES,
        // STUDENT (GRADES owns the STUDENT subtree).
        let mut b = ViewObjectBuilder::new(
            "omega",
            "COURSES",
            &["course_id", "title", "level", "dept_name"],
        );
        b.child(
            0,
            "DEPARTMENT",
            &["dept_name"],
            VoEdge::single("courses_dept", true),
        );
        b.child(
            0,
            "CURRICULUM",
            &["degree", "course_id"],
            VoEdge::single("curriculum_courses", false),
        );
        let g = b.child(
            0,
            "GRADES",
            &["course_id", "ssn", "grade"],
            VoEdge::single("courses_grades", true),
        );
        b.child(
            g,
            "STUDENT",
            &["ssn", "degree_program"],
            VoEdge::single("student_grades", false),
        );
        b.build(schema).unwrap()
    }

    #[test]
    fn builds_figure_2c_object() {
        let schema = university_schema();
        let o = omega(&schema);
        assert_eq!(o.pivot(), "COURSES");
        assert_eq!(o.complexity(), 5);
        assert_eq!(
            o.relations(),
            vec!["COURSES", "CURRICULUM", "DEPARTMENT", "GRADES", "STUDENT"]
        );
        assert_eq!(o.object_key(&schema).unwrap(), vec!["course_id"]);
    }

    #[test]
    fn preorder_visits_root_first_depth_first() {
        let schema = university_schema();
        let o = omega(&schema);
        let order = o.preorder();
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 5);
        // STUDENT (child of GRADES) comes right after GRADES
        let g = order
            .iter()
            .position(|&i| o.node(i).relation == "GRADES")
            .unwrap();
        assert_eq!(o.node(order[g + 1]).relation, "STUDENT");
    }

    #[test]
    fn rejects_missing_pivot_key() {
        let schema = university_schema();
        let b = ViewObjectBuilder::new("bad", "COURSES", &["title"]);
        assert!(b.build(&schema).is_err());
    }

    #[test]
    fn rejects_second_pivot_projection() {
        let schema = university_schema();
        let mut b = ViewObjectBuilder::new("bad", "COURSES", &["course_id"]);
        // CURRICULUM —> COURSES traversed inverse lands back on COURSES
        let c = b.child(
            0,
            "CURRICULUM",
            &["degree", "course_id"],
            VoEdge::single("curriculum_courses", false),
        );
        b.child(
            c,
            "COURSES",
            &["course_id"],
            VoEdge::single("curriculum_courses", true),
        );
        assert!(b.build(&schema).is_err());
    }

    #[test]
    fn rejects_wrong_edge_endpoints() {
        let schema = university_schema();
        let mut b = ViewObjectBuilder::new("bad", "COURSES", &["course_id"]);
        // student_grades does not touch COURSES
        b.child(
            0,
            "STUDENT",
            &["ssn"],
            VoEdge::single("student_grades", false),
        );
        assert!(b.build(&schema).is_err());
    }

    #[test]
    fn rejects_unknown_attribute() {
        let schema = university_schema();
        let b = ViewObjectBuilder::new("bad", "COURSES", &["course_id", "nope"]);
        assert!(b.build(&schema).is_err());
    }

    #[test]
    fn rejects_missing_link_attribute() {
        let schema = university_schema();
        let mut b = ViewObjectBuilder::new("bad", "COURSES", &["course_id", "title"]);
        // DEPARTMENT edge needs COURSES.dept_name projected on the parent
        b.child(
            0,
            "DEPARTMENT",
            &["dept_name"],
            VoEdge::single("courses_dept", true),
        );
        assert!(b.build(&schema).is_err());
    }

    #[test]
    fn multi_step_edge_validates() {
        let schema = university_schema();
        // Figure 3's omega-prime: STUDENT attached to COURSES through GRADES
        let mut b = ViewObjectBuilder::new(
            "omega_prime",
            "COURSES",
            &["course_id", "title", "level", "dept_name"],
        );
        b.child(
            0,
            "STUDENT",
            &["ssn", "degree_program"],
            VoEdge {
                steps: vec![
                    Step {
                        connection: "courses_grades".into(),
                        parent_is_from: true,
                    },
                    Step {
                        connection: "student_grades".into(),
                        parent_is_from: false,
                    },
                ],
            },
        );
        let o = b.build(&schema).unwrap();
        assert_eq!(o.complexity(), 2);
        assert!(!o.node(1).edge.as_ref().unwrap().is_direct());
    }

    #[test]
    fn multi_step_edge_rejects_broken_chain() {
        let schema = university_schema();
        let mut b = ViewObjectBuilder::new("bad", "COURSES", &["course_id"]);
        b.child(
            0,
            "STUDENT",
            &["ssn"],
            VoEdge {
                steps: vec![
                    // wrong middle step: curriculum_courses does not reach GRADES
                    Step {
                        connection: "curriculum_courses".into(),
                        parent_is_from: false,
                    },
                    Step {
                        connection: "student_grades".into(),
                        parent_is_from: false,
                    },
                ],
            },
        );
        assert!(b.build(&schema).is_err());
    }

    #[test]
    fn link_attr_helpers() {
        let schema = university_schema();
        let o = omega(&schema);
        // GRADES node: parent link = COURSES.course_id, child link = GRADES.course_id
        let g = o
            .nodes()
            .iter()
            .find(|n| n.relation == "GRADES")
            .unwrap()
            .id;
        assert_eq!(
            o.parent_link_attrs(&schema, g).unwrap(),
            &["course_id".to_string()]
        );
        assert_eq!(
            o.child_link_attrs(&schema, g).unwrap(),
            &["course_id".to_string()]
        );
        // DEPARTMENT node: parent link = COURSES.dept_name
        let d = o
            .nodes()
            .iter()
            .find(|n| n.relation == "DEPARTMENT")
            .unwrap()
            .id;
        assert_eq!(
            o.parent_link_attrs(&schema, d).unwrap(),
            &["dept_name".to_string()]
        );
    }

    #[test]
    fn tree_string_shows_structure() {
        let schema = university_schema();
        let o = omega(&schema);
        let s = o.to_tree_string(&schema);
        assert!(s.contains("COURSES"));
        assert!(s.contains("[pivot]"));
        assert!(s.contains("STUDENT"));
        // indentation: STUDENT nested two levels deep
        assert!(s.lines().any(|l| l.starts_with("    STUDENT")));
    }
}
