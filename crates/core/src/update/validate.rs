//! Step 1 — local validation against the view-object definition.
//!
//! Checks that an instance is structurally a member of its object's class:
//! node ids and relations line up, every tuple conforms to its base
//! schema, and — for direct edges — the connecting values of every child
//! tuple match its parent (hierarchical well-formedness). Nodes reached
//! through *contracted* (multi-step) edges cannot be checked locally
//! because the intermediate relations' tuples are not part of the
//! instance; [`validate_instance`] reports them so translators can reject
//! writes through them.

use crate::instance::{VoInstance, VoInstanceNode};
use crate::object::{NodeId, ViewObject};
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// Result of local validation.
#[derive(Debug, Clone, Default)]
pub struct LocalValidation {
    /// Nodes bound through contracted edges (writes through them are
    /// rejected by the translators).
    pub contracted_nodes: Vec<NodeId>,
}

/// Validate `instance` against `object` (paper step 1).
pub fn validate_instance(
    schema: &StructuralSchema,
    object: &ViewObject,
    instance: &VoInstance,
) -> Result<LocalValidation> {
    if instance.object != object.name() {
        return Err(Error::ConstraintViolation(format!(
            "instance belongs to object {}, not {}",
            instance.object,
            object.name()
        )));
    }
    if instance.root.node != 0 {
        return Err(Error::ConstraintViolation(
            "instance root must bind the pivot node".into(),
        ));
    }
    let mut v = LocalValidation::default();
    validate_node(schema, object, &instance.root, &mut v)?;
    v.contracted_nodes.sort_unstable();
    v.contracted_nodes.dedup();
    Ok(v)
}

fn validate_node(
    schema: &StructuralSchema,
    object: &ViewObject,
    inst: &VoInstanceNode,
    v: &mut LocalValidation,
) -> Result<()> {
    let node = object.node(inst.node);
    let rel_schema = schema.catalog().relation(&node.relation)?;
    // tuple conformance
    Tuple::new(rel_schema, inst.tuple.clone().into_values())?;
    for (&child_id, children) in &inst.children {
        // the child must be a declared child of this node
        if !node.children.contains(&child_id) {
            return Err(Error::ConstraintViolation(format!(
                "instance binds node {child_id} under node {}, which is not a child",
                inst.node
            )));
        }
        let child_node = object.node(child_id);
        let edge = child_node.edge.as_ref().expect("non-root");
        if edge.is_direct() {
            let t = edge.steps[0].resolve(schema)?;
            let child_schema = schema.catalog().relation(&child_node.relation)?;
            let parent_vals: Vec<Value> = t
                .source_attrs()
                .iter()
                .map(|a| inst.tuple.get_named(rel_schema, a).cloned())
                .collect::<Result<_>>()?;
            for c in children {
                let child_vals: Vec<Value> = t
                    .target_attrs()
                    .iter()
                    .map(|a| c.tuple.get_named(child_schema, a).cloned())
                    .collect::<Result<_>>()?;
                if parent_vals.iter().any(Value::is_null) {
                    return Err(Error::ConstraintViolation(format!(
                        "instance node {} has NULL connecting values yet binds children",
                        inst.node
                    )));
                }
                if child_vals != parent_vals {
                    return Err(Error::ConstraintViolation(format!(
                        "child tuple {} of node {child_id} is not connected to its parent \
                         (expected {:?})",
                        c.tuple, parent_vals
                    )));
                }
            }
        } else if !children.is_empty() {
            v.contracted_nodes.push(child_id);
        }
        for c in children {
            if c.node != child_id {
                return Err(Error::ConstraintViolation(format!(
                    "instance child under key {child_id} claims node {}",
                    c.node
                )));
            }
            validate_node(schema, object, c, v)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{assemble, instantiate_all, VoInstanceNode};
    use crate::treegen::{generate_omega, generate_omega_prime};
    use crate::university::university_database;

    #[test]
    fn assembled_instances_validate() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        for inst in instantiate_all(&schema, &omega, &db).unwrap() {
            let v = validate_instance(&schema, &omega, &inst).unwrap();
            assert!(v.contracted_nodes.is_empty());
        }
    }

    #[test]
    fn contracted_nodes_reported() {
        let (schema, db) = university_database();
        let op = generate_omega_prime(&schema).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &op, &db, t).unwrap();
        let v = validate_instance(&schema, &op, &inst).unwrap();
        assert_eq!(v.contracted_nodes.len(), 2); // FACULTY and STUDENT
    }

    #[test]
    fn rejects_wrong_object_name() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let mut inst = instantiate_all(&schema, &omega, &db).unwrap().remove(0);
        inst.object = "other".into();
        assert!(validate_instance(&schema, &omega, &inst).is_err());
    }

    #[test]
    fn rejects_disconnected_child() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let mut inst = instantiate_all(&schema, &omega, &db)
            .unwrap()
            .into_iter()
            .find(|i| i.key(&schema, &omega).unwrap() == Key::single("CS345"))
            .unwrap();
        // graft a grade belonging to a different course under CS345
        let gra = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "GRADES")
            .unwrap()
            .id;
        let grades = db.table("GRADES").unwrap().schema().clone();
        let foreign = Tuple::new(&grades, vec!["CS101".into(), 1.into(), "B".into()]).unwrap();
        inst.root.push_child(VoInstanceNode::leaf(gra, foreign));
        let err = validate_instance(&schema, &omega, &inst).unwrap_err();
        assert!(matches!(err, Error::ConstraintViolation(_)));
    }

    #[test]
    fn rejects_child_under_wrong_parent_node() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let mut inst = instantiate_all(&schema, &omega, &db).unwrap().remove(0);
        // bind a STUDENT directly under the pivot (STUDENT is a child of GRADES)
        let stu = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "STUDENT")
            .unwrap()
            .id;
        let student = db.table("STUDENT").unwrap().schema().clone();
        inst.root.push_child(VoInstanceNode::leaf(
            stu,
            Tuple::new(&student, vec![1.into(), "MS".into()]).unwrap(),
        ));
        assert!(validate_instance(&schema, &omega, &inst).is_err());
    }

    #[test]
    fn rejects_malformed_tuple() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let mut inst = instantiate_all(&schema, &omega, &db).unwrap().remove(0);
        inst.root.tuple = Tuple::raw(vec!["only-one".into()]);
        assert!(validate_instance(&schema, &omega, &inst).is_err());
    }
}
