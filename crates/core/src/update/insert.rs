//! Algorithm VO-CI — translation of complete-insertion requests
//! (paper §5.2).
//!
//! For each tuple in each projection of the new instance there are three
//! cases:
//!
//! - **Case 1** — an identical tuple exists: reject if the relation is in
//!   the dependency island, otherwise do nothing (the entity shares the
//!   existing tuple).
//! - **Case 2** — no tuple with the key exists: insert.
//! - **Case 3** — a tuple with the key exists but non-key values differ:
//!   reject inside the island, replace outside it (permission-gated).
//!
//! Global validation then completes missing dependencies along inverse
//! ownership, inverse subset, and reference connections, inserting stub
//! tuples recursively (gated by the translator).

use crate::instance::VoInstance;
use crate::island::IslandAnalysis;
use crate::object::ViewObject;
use crate::translator::Translator;
use crate::update::validate::validate_instance;
use crate::update::OpRecorder;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// Translate a complete insertion into database operations.
pub fn translate_complete_insertion(
    schema: &StructuralSchema,
    object: &ViewObject,
    analysis: &IslandAnalysis,
    translator: &Translator,
    db: &Database,
    instance: &VoInstance,
) -> Result<Vec<DbOp>> {
    let mut rec = OpRecorder::over(db);
    translate_complete_insertion_into(schema, object, analysis, translator, &mut rec, instance)?;
    Ok(rec.into_ops())
}

/// Like [`translate_complete_insertion`], but planning into an existing
/// recorder — the batch path, where many requests share one overlay.
pub fn translate_complete_insertion_into(
    schema: &StructuralSchema,
    object: &ViewObject,
    analysis: &IslandAnalysis,
    translator: &Translator,
    rec: &mut OpRecorder<'_>,
    instance: &VoInstance,
) -> Result<()> {
    vo_relational::stats::count_snapshot_avoided();
    if !translator.allow_insertion {
        return Err(Error::ConstraintViolation(format!(
            "translator for {} forbids complete insertions",
            object.name()
        )));
    }
    let local = validate_instance(schema, object, instance)?;
    if !local.contracted_nodes.is_empty() {
        return Err(Error::ConstraintViolation(format!(
            "insertion binds tuples through contracted edges (nodes {:?}); \
             the intermediate relations' tuples are unspecified",
            local.contracted_nodes
        )));
    }

    let mut written: Vec<(String, Tuple)> = Vec::new();

    for node_id in object.preorder() {
        let node = object.node(node_id);
        let in_island = analysis.in_island(node_id);
        let table_schema = rec.db.view(&node.relation)?.schema().clone();
        let policy = translator.policy(&node.relation);
        for tuple in instance.tuples_of(node_id) {
            let key = tuple.key(&table_schema);
            let existing = rec.db.view(&node.relation)?.get(&key).cloned();
            match existing {
                Some(ref e) if e == tuple => {
                    // CASE 1
                    if in_island {
                        return Err(Error::ConstraintViolation(format!(
                            "VO-CI case 1: identical tuple {tuple} already exists in \
                             island relation {}; the instance is already present",
                            node.relation
                        )));
                    }
                }
                None => {
                    // CASE 2
                    if !in_island && !policy.allow_insert {
                        return Err(Error::ConstraintViolation(format!(
                            "translator forbids inserting into {}",
                            node.relation
                        )));
                    }
                    rec.apply(DbOp::Insert {
                        relation: node.relation.clone(),
                        tuple: tuple.clone(),
                    })?;
                    written.push((node.relation.clone(), tuple.clone()));
                }
                Some(_) => {
                    // CASE 3
                    if in_island {
                        return Err(Error::ConstraintViolation(format!(
                            "VO-CI case 3: island relation {} already holds a \
                             different tuple with key {key}",
                            node.relation
                        )));
                    }
                    if !policy.allow_modify {
                        return Err(Error::ConstraintViolation(format!(
                            "translator forbids modifying existing tuples of {}",
                            node.relation
                        )));
                    }
                    rec.apply(DbOp::Replace {
                        relation: node.relation.clone(),
                        old_key: key,
                        tuple: tuple.clone(),
                    })?;
                    written.push((node.relation.clone(), tuple.clone()));
                }
            }
        }
    }

    complete_dependencies(schema, object, translator, rec, &written)?;
    Ok(())
}

/// Global-validation completion shared by VO-CI and VO-R: for every tuple
/// written, insert the stub tuples its dependencies require (recursively),
/// gated by the translator's per-relation and out-of-object permissions.
pub fn complete_dependencies(
    schema: &StructuralSchema,
    object: &ViewObject,
    translator: &Translator,
    rec: &mut OpRecorder<'_>,
    written: &[(String, Tuple)],
) -> Result<()> {
    let object_relations: Vec<&str> = object.relations();
    for (relation, tuple) in written {
        // the tuple may have been superseded by a later op; skip if gone
        let table = rec.db.view(relation)?;
        let key = tuple.key(table.schema());
        if table.get(&key) != Some(tuple) {
            continue;
        }
        let allow = |rel: &str| translator.may_insert_into(rel, object_relations.contains(&rel));
        let ops = plan_completion(schema, &rec.db, relation, tuple, &allow)?;
        rec.apply_all(ops)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{assemble, VoInstanceNode};
    use crate::island::analyze;
    use crate::treegen::generate_omega;
    use crate::university::university_database;

    fn setup() -> (
        StructuralSchema,
        Database,
        ViewObject,
        IslandAnalysis,
        Translator,
    ) {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let analysis = analyze(&schema, &omega).unwrap();
        let translator = Translator::permissive(&omega);
        (schema, db, omega, analysis, translator)
    }

    fn node_id(o: &ViewObject, rel: &str) -> usize {
        o.nodes().iter().find(|n| n.relation == rel).unwrap().id
    }

    /// A brand-new course instance: EE310 in a brand-new department with
    /// one grade for an existing student.
    fn fresh_instance(db: &Database, omega: &ViewObject) -> VoInstance {
        let courses = db.table("COURSES").unwrap().schema().clone();
        let dept = db.table("DEPARTMENT").unwrap().schema().clone();
        let grades = db.table("GRADES").unwrap().schema().clone();
        let student = db.table("STUDENT").unwrap().schema().clone();
        let mut root = VoInstanceNode::leaf(
            0,
            Tuple::new(
                &courses,
                vec![
                    "EE310".into(),
                    "Signals".into(),
                    "graduate".into(),
                    "Bioengineering".into(),
                ],
            )
            .unwrap(),
        );
        root.push_child(VoInstanceNode::leaf(
            node_id(omega, "DEPARTMENT"),
            Tuple::new(&dept, vec!["Bioengineering".into()]).unwrap(),
        ));
        let mut g = VoInstanceNode::leaf(
            node_id(omega, "GRADES"),
            Tuple::new(&grades, vec!["EE310".into(), 1.into(), "A".into()]).unwrap(),
        );
        g.push_child(VoInstanceNode::leaf(
            node_id(omega, "STUDENT"),
            Tuple::new(&student, vec![1.into(), "PhD".into()]).unwrap(),
        ));
        root.push_child(g);
        VoInstance {
            object: omega.name().to_owned(),
            root,
        }
    }

    #[test]
    fn inserts_fresh_instance_and_stays_consistent() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let inst = fresh_instance(&db, &omega);
        let ops = translate_complete_insertion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        assert!(db
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("EE310")));
        assert!(db
            .table("DEPARTMENT")
            .unwrap()
            .contains_key(&Key::single("Bioengineering")));
        assert!(db
            .table("GRADES")
            .unwrap()
            .contains_key(&Key(vec!["EE310".into(), 1.into()])));
        // student 1 already existed: case 1, no new insert
        assert_eq!(db.table("STUDENT").unwrap().len(), 10);
    }

    #[test]
    fn rejects_duplicate_island_tuple() {
        let (schema, db, omega, analysis, translator) = setup();
        // re-inserting an existing instance is case 1 on the pivot
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        let err = translate_complete_insertion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap_err();
        assert!(matches!(err, Error::ConstraintViolation(_)));
    }

    #[test]
    fn rejects_island_key_conflict_with_different_values() {
        let (schema, db, omega, analysis, translator) = setup();
        let courses = db.table("COURSES").unwrap().schema().clone();
        let root = VoInstanceNode::leaf(
            0,
            Tuple::new(
                &courses,
                vec![
                    "CS345".into(),
                    "Different Title".into(),
                    "graduate".into(),
                    "Computer Science".into(),
                ],
            )
            .unwrap(),
        );
        let inst = VoInstance {
            object: omega.name().to_owned(),
            root,
        };
        let err = translate_complete_insertion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap_err();
        assert!(matches!(err, Error::ConstraintViolation(_)));
    }

    #[test]
    fn case3_replaces_non_island_tuple_when_allowed() {
        let (schema, mut db, omega, analysis, translator) = setup();
        // instance citing student 1 with a different degree program
        let courses = db.table("COURSES").unwrap().schema().clone();
        let grades = db.table("GRADES").unwrap().schema().clone();
        let student = db.table("STUDENT").unwrap().schema().clone();
        let mut root = VoInstanceNode::leaf(
            0,
            Tuple::new(
                &courses,
                vec![
                    "CS400".into(),
                    "Sem".into(),
                    "graduate".into(),
                    "Computer Science".into(),
                ],
            )
            .unwrap(),
        );
        let mut g = VoInstanceNode::leaf(
            node_id(&omega, "GRADES"),
            Tuple::new(&grades, vec!["CS400".into(), 1.into(), "A".into()]).unwrap(),
        );
        g.push_child(VoInstanceNode::leaf(
            node_id(&omega, "STUDENT"),
            Tuple::new(&student, vec![1.into(), "MBA".into()]).unwrap(),
        ));
        root.push_child(g);
        let inst = VoInstance {
            object: omega.name().to_owned(),
            root,
        };
        let ops = translate_complete_insertion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap();
        db.apply_all(&ops).unwrap();
        let s = db
            .table("STUDENT")
            .unwrap()
            .get(&Key::single(1))
            .unwrap()
            .clone();
        assert_eq!(s.values()[1], Value::text("MBA"));
        assert!(check_database(&schema, &db).unwrap().is_empty());
    }

    #[test]
    fn case3_rejected_without_modify_permission() {
        let (schema, db, omega, analysis, mut translator) = setup();
        let mut p = translator.policy("STUDENT");
        p.allow_modify = false;
        translator.set_policy("STUDENT", p);
        let courses = db.table("COURSES").unwrap().schema().clone();
        let grades = db.table("GRADES").unwrap().schema().clone();
        let student = db.table("STUDENT").unwrap().schema().clone();
        let mut root = VoInstanceNode::leaf(
            0,
            Tuple::new(
                &courses,
                vec![
                    "CS400".into(),
                    "Sem".into(),
                    "graduate".into(),
                    "Computer Science".into(),
                ],
            )
            .unwrap(),
        );
        let mut g = VoInstanceNode::leaf(
            node_id(&omega, "GRADES"),
            Tuple::new(&grades, vec!["CS400".into(), 1.into(), "A".into()]).unwrap(),
        );
        g.push_child(VoInstanceNode::leaf(
            node_id(&omega, "STUDENT"),
            Tuple::new(&student, vec![1.into(), "MBA".into()]).unwrap(),
        ));
        root.push_child(g);
        let inst = VoInstance {
            object: omega.name().to_owned(),
            root,
        };
        assert!(
            translate_complete_insertion(&schema, &omega, &analysis, &translator, &db, &inst)
                .is_err()
        );
    }

    #[test]
    fn completion_inserts_people_stub_for_new_student() {
        let (schema, mut db, omega, analysis, translator) = setup();
        // a new student (ssn 99) requires a PEOPLE parent (out of object)
        let courses = db.table("COURSES").unwrap().schema().clone();
        let grades = db.table("GRADES").unwrap().schema().clone();
        let student = db.table("STUDENT").unwrap().schema().clone();
        let mut root = VoInstanceNode::leaf(
            0,
            Tuple::new(
                &courses,
                vec![
                    "CS401".into(),
                    "X".into(),
                    "graduate".into(),
                    "Computer Science".into(),
                ],
            )
            .unwrap(),
        );
        let mut g = VoInstanceNode::leaf(
            node_id(&omega, "GRADES"),
            Tuple::new(&grades, vec!["CS401".into(), 99.into(), "A".into()]).unwrap(),
        );
        g.push_child(VoInstanceNode::leaf(
            node_id(&omega, "STUDENT"),
            Tuple::new(&student, vec![99.into(), "MS".into()]).unwrap(),
        ));
        root.push_child(g);
        let inst = VoInstance {
            object: omega.name().to_owned(),
            root,
        };
        let ops = translate_complete_insertion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        assert!(db.table("PEOPLE").unwrap().contains_key(&Key::single(99)));
    }

    #[test]
    fn completion_gated_by_out_of_object_permission() {
        let (schema, db, omega, analysis, mut translator) = setup();
        translator.allow_out_of_object_repairs = false;
        let courses = db.table("COURSES").unwrap().schema().clone();
        let grades = db.table("GRADES").unwrap().schema().clone();
        let student = db.table("STUDENT").unwrap().schema().clone();
        let mut root = VoInstanceNode::leaf(
            0,
            Tuple::new(
                &courses,
                vec![
                    "CS401".into(),
                    "X".into(),
                    "graduate".into(),
                    "Computer Science".into(),
                ],
            )
            .unwrap(),
        );
        let mut g = VoInstanceNode::leaf(
            node_id(&omega, "GRADES"),
            Tuple::new(&grades, vec!["CS401".into(), 99.into(), "A".into()]).unwrap(),
        );
        g.push_child(VoInstanceNode::leaf(
            node_id(&omega, "STUDENT"),
            Tuple::new(&student, vec![99.into(), "MS".into()]).unwrap(),
        ));
        root.push_child(g);
        let inst = VoInstance {
            object: omega.name().to_owned(),
            root,
        };
        let err = translate_complete_insertion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap_err();
        assert!(matches!(err, Error::ConstraintViolation(_)));
    }

    #[test]
    fn shared_student_under_two_grades_inserted_once() {
        // the same (new) student enrolled twice via two grade rows of the
        // same instance: VO-CI case 2 on first sight, case 1 (identical
        // exists in scratch) on the second — exactly one insert
        let (schema, mut db, omega, analysis, translator) = setup();
        let courses = db.table("COURSES").unwrap().schema().clone();
        let grades = db.table("GRADES").unwrap().schema().clone();
        let student = db.table("STUDENT").unwrap().schema().clone();
        let mut root = VoInstanceNode::leaf(
            0,
            Tuple::new(
                &courses,
                vec![
                    "CS500".into(),
                    "X".into(),
                    "graduate".into(),
                    "Computer Science".into(),
                ],
            )
            .unwrap(),
        );
        for ssn in [50i64, 50] {
            // two grade rows cannot share a key; vary nothing else
            let gkey: i64 = if root.children.is_empty() {
                ssn
            } else {
                ssn + 1
            };
            let mut g = VoInstanceNode::leaf(
                node_id(&omega, "GRADES"),
                Tuple::new(&grades, vec!["CS500".into(), gkey.into(), "A".into()]).unwrap(),
            );
            g.push_child(VoInstanceNode::leaf(
                node_id(&omega, "STUDENT"),
                Tuple::new(&student, vec![gkey.into(), "MS".into()]).unwrap(),
            ));
            root.push_child(g);
        }
        // additionally: the SAME student under both grades is impossible
        // through direct edges (grade key embeds ssn); instead test the
        // same DEPARTMENT under... simpler: same student cited twice via
        // identical tuples in one list is structurally prevented — so we
        // assert the two distinct students each insert exactly once and
        // their PEOPLE stubs too.
        let inst = VoInstance {
            object: omega.name().to_owned(),
            root,
        };
        let ops = translate_complete_insertion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap();
        let student_inserts = ops
            .iter()
            .filter(|o| o.is_insert() && o.relation() == "STUDENT")
            .count();
        let people_inserts = ops
            .iter()
            .filter(|o| o.is_insert() && o.relation() == "PEOPLE")
            .count();
        assert_eq!(student_inserts, 2);
        assert_eq!(people_inserts, 2);
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
    }

    #[test]
    fn forbidden_when_translator_disallows_insertion() {
        let (schema, db, omega, analysis, mut translator) = setup();
        translator.allow_insertion = false;
        let inst = fresh_instance(&db, &omega);
        assert!(
            translate_complete_insertion(&schema, &omega, &analysis, &translator, &db, &inst)
                .is_err()
        );
    }
}
