//! Step 2 — propagation within the view object (paper §5.3).
//!
//! When a replacing instance changes key attributes high in the tree, the
//! inherited key components of every descendant must follow: "a change to
//! `A_j` has to be propagated down to `R_j`'s children in the dependency
//! island". We propagate over *every* direct edge (not only island edges):
//! for reference edges this rewrites the child-selecting values (e.g. a
//! changed `COURSES.dept_name` re-targets the DEPARTMENT child), which is
//! exactly the hierarchical consistency local validation demands.

use crate::instance::{VoInstance, VoInstanceNode};
use crate::object::ViewObject;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// Rewrite the connecting attributes of every child tuple (over direct
/// edges) to match its parent, top-down. Returns the corrected instance.
pub fn propagate_links(
    schema: &StructuralSchema,
    object: &ViewObject,
    mut instance: VoInstance,
) -> Result<VoInstance> {
    propagate_node(schema, object, &mut instance.root)?;
    Ok(instance)
}

fn propagate_node(
    schema: &StructuralSchema,
    object: &ViewObject,
    inst: &mut VoInstanceNode,
) -> Result<()> {
    let node = object.node(inst.node);
    let rel_schema = schema.catalog().relation(&node.relation)?.clone();
    let child_ids: Vec<_> = inst.children.keys().copied().collect();
    for child_id in child_ids {
        let child_node = object.node(child_id);
        let edge = child_node.edge.as_ref().expect("non-root");
        if edge.is_direct() {
            let t = edge.steps[0].resolve(schema)?;
            let parent_vals: Vec<Value> = t
                .source_attrs()
                .iter()
                .map(|a| inst.tuple.get_named(&rel_schema, a).cloned())
                .collect::<Result<_>>()?;
            let target_attrs: Vec<String> = t.target_attrs().to_vec();
            let child_schema = schema.catalog().relation(&child_node.relation)?.clone();
            if let Some(children) = inst.children.get_mut(&child_id) {
                for c in children.iter_mut() {
                    for (attr, val) in target_attrs.iter().zip(parent_vals.iter()) {
                        c.tuple = c.tuple.with_named(&child_schema, attr, val.clone())?;
                    }
                }
            }
        }
        if let Some(children) = inst.children.get_mut(&child_id) {
            for c in children.iter_mut() {
                propagate_node(schema, object, c)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::instantiate_all;
    use crate::treegen::generate_omega;
    use crate::university::university_database;
    use crate::update::validate::validate_instance;

    #[test]
    fn pivot_key_change_flows_to_island_children() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let mut inst = instantiate_all(&schema, &omega, &db)
            .unwrap()
            .into_iter()
            .find(|i| i.key(&schema, &omega).unwrap() == Key::single("CS345"))
            .unwrap();
        // rename the course; children still carry CS345
        let courses = db.table("COURSES").unwrap().schema().clone();
        inst.root.tuple = inst
            .root
            .tuple
            .with_named(&courses, "course_id", "EES345".into())
            .unwrap();
        assert!(validate_instance(&schema, &omega, &inst).is_err());

        let fixed = propagate_links(&schema, &omega, inst).unwrap();
        validate_instance(&schema, &omega, &fixed).unwrap();
        let gra = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "GRADES")
            .unwrap()
            .id;
        let grades = db.table("GRADES").unwrap().schema().clone();
        for t in fixed.tuples_of(gra) {
            assert_eq!(
                t.get_named(&grades, "course_id").unwrap(),
                &Value::text("EES345")
            );
        }
        // the peninsula follows too
        let cur = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "CURRICULUM")
            .unwrap()
            .id;
        let curriculum = db.table("CURRICULUM").unwrap().schema().clone();
        for t in fixed.tuples_of(cur) {
            assert_eq!(
                t.get_named(&curriculum, "course_id").unwrap(),
                &Value::text("EES345")
            );
        }
    }

    #[test]
    fn reference_retarget_flows_to_department_child() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let mut inst = instantiate_all(&schema, &omega, &db)
            .unwrap()
            .into_iter()
            .find(|i| i.key(&schema, &omega).unwrap() == Key::single("CS345"))
            .unwrap();
        let courses = db.table("COURSES").unwrap().schema().clone();
        inst.root.tuple = inst
            .root
            .tuple
            .with_named(&courses, "dept_name", "Engineering Economic Systems".into())
            .unwrap();
        let fixed = propagate_links(&schema, &omega, inst).unwrap();
        let dep = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "DEPARTMENT")
            .unwrap()
            .id;
        let dept_schema = db.table("DEPARTMENT").unwrap().schema().clone();
        let deps = fixed.tuples_of(dep);
        assert_eq!(deps.len(), 1);
        assert_eq!(
            deps[0].get_named(&dept_schema, "dept_name").unwrap(),
            &Value::text("Engineering Economic Systems")
        );
    }

    #[test]
    fn deep_propagation_through_grades_to_student() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let mut inst = instantiate_all(&schema, &omega, &db)
            .unwrap()
            .into_iter()
            .find(|i| i.key(&schema, &omega).unwrap() == Key::single("CS345"))
            .unwrap();
        // change a grade's ssn; the STUDENT child underneath must follow
        let gra = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "GRADES")
            .unwrap()
            .id;
        let grades = db.table("GRADES").unwrap().schema().clone();
        if let Some(gs) = inst.root.children.get_mut(&gra) {
            gs[0].tuple = gs[0].tuple.with_named(&grades, "ssn", 99.into()).unwrap();
        }
        let fixed = propagate_links(&schema, &omega, inst).unwrap();
        let stu = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "STUDENT")
            .unwrap()
            .id;
        let student = db.table("STUDENT").unwrap().schema().clone();
        let ssns: Vec<i64> = fixed
            .tuples_of(stu)
            .iter()
            .map(|t| t.get_named(&student, "ssn").unwrap().as_int().unwrap())
            .collect();
        assert!(ssns.contains(&99));
        validate_instance(&schema, &omega, &fixed).unwrap();
    }

    #[test]
    fn idempotent_on_consistent_instances() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let inst = instantiate_all(&schema, &omega, &db).unwrap().remove(0);
        let fixed = propagate_links(&schema, &omega, inst.clone()).unwrap();
        assert_eq!(fixed, inst);
    }
}
