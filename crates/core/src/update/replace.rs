//! Algorithm VO-R — translation of replacement requests (paper §5.3).
//!
//! The translator walks old and new instance trees in parallel, depth
//! first, starting in state **R** at the pivot. Island nodes stay in state
//! R (replacements, including key replacements); nodes outside the
//! dependency island are processed in state **I** (insertions — the old
//! tuple is never deleted, because entities outside the island may be
//! shared with other objects).
//!
//! Key replacements are handled per the paper's rules: they are literal
//! database replacements *inside* the island only; a replaced key
//! propagates to out-of-island relations as foreign-key repairs
//! (peninsulas, out-of-object referencers) and cascades (out-of-object
//! owned/subset relations); keys of referencing peninsulas and all other
//! non-island relations are never replaced — a changed key outside the
//! island becomes an insertion (cases I-2..I-4).

use crate::instance::{VoInstance, VoInstanceNode};
use crate::island::IslandAnalysis;
use crate::object::{NodeId, ViewObject};
use crate::translator::Translator;
use crate::update::insert::complete_dependencies;
use crate::update::propagate::propagate_links;
use crate::update::validate::validate_instance;
use crate::update::OpRecorder;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// One step of the VO-R state machine, recorded for explanation: which
/// paper case fired at which node for which tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Case R-1: projections match exactly; nothing to do.
    R1 { node: NodeId },
    /// Case R-2: projections differ, keys match; a replacement.
    R2 { node: NodeId },
    /// Case R-3: keys differ inside the island; a key replacement (with
    /// out-of-island propagation) or delete-and-adopt.
    R3 { node: NodeId, adopted: bool },
    /// An ancestor's propagation already effected this tuple.
    AlreadyPropagated { node: NodeId },
    /// Case I-1: keys match outside the island; in-place treatment.
    I1 { node: NodeId },
    /// Case I-2: new tuple absent from the database; insertion.
    I2 { node: NodeId },
    /// Case I-3: new tuple already present and identical; nothing.
    I3 { node: NodeId },
    /// Case I-4: key present with conflicting values; replacement.
    I4 { node: NodeId },
    /// An island tuple disappeared from the instance; structural deletion.
    IslandRemoval { node: NodeId },
}

impl TraceEvent {
    /// The paper's case label.
    pub fn label(&self) -> &'static str {
        match self {
            TraceEvent::R1 { .. } => "R-1",
            TraceEvent::R2 { .. } => "R-2",
            TraceEvent::R3 { .. } => "R-3",
            TraceEvent::AlreadyPropagated { .. } => "propagated",
            TraceEvent::I1 { .. } => "I-1",
            TraceEvent::I2 { .. } => "I-2",
            TraceEvent::I3 { .. } => "I-3",
            TraceEvent::I4 { .. } => "I-4",
            TraceEvent::IslandRemoval { .. } => "island-removal",
        }
    }
}

/// Translate a replacement request into database operations.
pub fn translate_replacement(
    schema: &StructuralSchema,
    object: &ViewObject,
    analysis: &IslandAnalysis,
    translator: &Translator,
    db: &Database,
    old: &VoInstance,
    new: VoInstance,
) -> Result<Vec<DbOp>> {
    translate_replacement_traced(schema, object, analysis, translator, db, old, new)
        .map(|(ops, _)| ops)
}

/// Like [`translate_replacement`], additionally returning the state-machine
/// trace (the sequence of paper cases that fired).
pub fn translate_replacement_traced(
    schema: &StructuralSchema,
    object: &ViewObject,
    analysis: &IslandAnalysis,
    translator: &Translator,
    db: &Database,
    old: &VoInstance,
    new: VoInstance,
) -> Result<(Vec<DbOp>, Vec<TraceEvent>)> {
    let mut rec = OpRecorder::over(db);
    let trace =
        translate_replacement_into(schema, object, analysis, translator, &mut rec, old, new)?;
    Ok((rec.into_ops(), trace))
}

/// Like [`translate_replacement_traced`], but planning into an existing
/// recorder — the batch path, where many requests share one overlay.
/// Returns the state-machine trace; the ops accumulate in `rec`.
pub fn translate_replacement_into(
    schema: &StructuralSchema,
    object: &ViewObject,
    analysis: &IslandAnalysis,
    translator: &Translator,
    rec: &mut OpRecorder<'_>,
    old: &VoInstance,
    new: VoInstance,
) -> Result<Vec<TraceEvent>> {
    vo_relational::stats::count_snapshot_avoided();
    if !translator.allow_replacement {
        return Err(Error::ConstraintViolation(format!(
            "translator for {} forbids replacements",
            object.name()
        )));
    }
    validate_instance(schema, object, old)?;
    // step 2: propagation within the view object, then re-validate
    let new = propagate_links(schema, object, new)?;
    let local_new = validate_instance(schema, object, &new)?;

    // contracted-edge nodes may not change
    for &cn in &local_new.contracted_nodes {
        let o: Vec<&Tuple> = old.tuples_of(cn);
        let n: Vec<&Tuple> = new.tuples_of(cn);
        if o != n {
            return Err(Error::ConstraintViolation(format!(
                "replacement changes tuples of node {cn}, which is bound through a \
                 contracted edge; the intermediate relations are unspecified"
            )));
        }
    }

    let pivot_schema = schema.catalog().relation(object.pivot())?;
    let old_root_key = old.root.tuple.key(pivot_schema);
    if rec.db.view(object.pivot())?.get(&old_root_key) != Some(&old.root.tuple) {
        return Err(Error::ConstraintViolation(format!(
            "the old instance's pivot tuple {} is not current in the database",
            old.root.tuple
        )));
    }

    let mut ctx = Ctx {
        schema,
        object,
        analysis,
        translator,
        rec,
        written: Vec::new(),
        trace: Vec::new(),
    };
    ctx.walk_pair(0, Some(&old.root), Some(&new.root), None)?;
    let Ctx {
        rec,
        written,
        trace,
        ..
    } = ctx;
    complete_dependencies(schema, object, translator, rec, &written)?;
    Ok(trace)
}

struct Ctx<'a, 'r, 'base> {
    schema: &'a StructuralSchema,
    object: &'a ViewObject,
    analysis: &'a IslandAnalysis,
    translator: &'a Translator,
    rec: &'r mut OpRecorder<'base>,
    written: Vec<(String, Tuple)>,
    trace: Vec<TraceEvent>,
}

impl Ctx<'_, '_, '_> {
    /// Process a matched/unmatched pair of instance nodes for `node_id`,
    /// then recurse over their children.
    fn walk_pair(
        &mut self,
        node_id: NodeId,
        old: Option<&VoInstanceNode>,
        new: Option<&VoInstanceNode>,
        parent_pair: Option<(&Tuple, &Tuple)>,
    ) -> Result<()> {
        let relation = self.object.node(node_id).relation.clone();
        let rel_schema = self.rec.db.view(&relation)?.schema().clone();
        let in_island = self.analysis.in_island(node_id);

        match (old, new) {
            (Some(o), Some(n)) => {
                self.process_tuple_pair(
                    node_id,
                    &relation,
                    &rel_schema,
                    in_island,
                    &o.tuple,
                    &n.tuple,
                )?;
                // recurse over children of every declared child node
                let children: Vec<NodeId> = self.object.node(node_id).children.clone();
                for child in children {
                    let empty: Vec<VoInstanceNode> = Vec::new();
                    let olds = o.children.get(&child).unwrap_or(&empty);
                    let news = n.children.get(&child).unwrap_or(&empty);
                    let pairs =
                        pair_children(self.schema, self.analysis, self.object, child, olds, news)?;
                    for (co, cn) in pairs {
                        self.walk_pair(child, co, cn, Some((&o.tuple, &n.tuple)))?;
                    }
                }
            }
            (Some(o), None) => {
                if in_island {
                    self.trace.push(TraceEvent::IslandRemoval { node: node_id });
                    // removal of part of the entity: delete with full
                    // structural propagation (covers its island subtree).
                    // An ancestor key replacement may already have re-keyed
                    // the tuple; locate it through the parent pair.
                    let key = self.current_key_of(
                        node_id,
                        &relation,
                        &rel_schema,
                        &o.tuple,
                        parent_pair,
                    )?;
                    if let Some(key) = key {
                        let policy = self.translator.deletion_policy(
                            self.schema,
                            self.object,
                            self.analysis,
                        );
                        let ops = plan_delete(self.schema, &self.rec.db, &relation, &key, &policy)?;
                        self.rec.apply_all(ops)?;
                    }
                    // children are covered by the cascade — no recursion
                } else {
                    // state I never deletes: tuples outside the island may
                    // be shared with other entities
                }
            }
            (None, Some(n)) => {
                // pure addition: VO-CI cases for this subtree
                self.process_addition(node_id, &relation, &rel_schema, in_island, &n.tuple)?;
                let children: Vec<NodeId> = self.object.node(node_id).children.clone();
                for child in children {
                    let empty: Vec<VoInstanceNode> = Vec::new();
                    let news = n.children.get(&child).unwrap_or(&empty);
                    for cn in news {
                        self.walk_pair(child, None, Some(cn), None)?;
                    }
                }
            }
            (None, None) => {}
        }
        Ok(())
    }

    /// Where does `old` currently live in the scratch database? Its
    /// original key, or — after an ancestor key replacement propagated
    /// through the island — the key rewritten with the new parent's
    /// linking values. `None` when the tuple has already been deleted by
    /// an earlier cascade.
    fn current_key_of(
        &self,
        node_id: NodeId,
        relation: &str,
        rel_schema: &RelationSchema,
        old: &Tuple,
        parent_pair: Option<(&Tuple, &Tuple)>,
    ) -> Result<Option<Key>> {
        let key = old.key(rel_schema);
        let table = self.rec.db.view(relation)?;
        if table.contains_key(&key) {
            return Ok(Some(key));
        }
        // rewrite the inherited linking attributes from the new parent
        if let Some((old_parent, new_parent)) = parent_pair {
            let node = self.object.node(node_id);
            let Some(edge) = &node.edge else {
                return Ok(None);
            };
            if !edge.is_direct() {
                return Ok(None);
            }
            let t = edge.steps[0].resolve(self.schema)?;
            let parent_rel = self
                .object
                .node(node.parent.expect("non-root"))
                .relation
                .clone();
            let parent_schema = self.rec.db.view(&parent_rel)?.schema().clone();
            let old_vals: Vec<Value> = t
                .source_attrs()
                .iter()
                .map(|a| old_parent.get_named(&parent_schema, a).cloned())
                .collect::<Result<_>>()?;
            let new_vals: Vec<Value> = t
                .source_attrs()
                .iter()
                .map(|a| new_parent.get_named(&parent_schema, a).cloned())
                .collect::<Result<_>>()?;
            if old_vals != new_vals {
                let mut rewritten = old.clone();
                for (attr, v) in t.target_attrs().iter().zip(new_vals) {
                    rewritten = rewritten.with_named(rel_schema, attr, v)?;
                }
                let rk = rewritten.key(rel_schema);
                if self.rec.db.view(relation)?.contains_key(&rk) {
                    return Ok(Some(rk));
                }
            }
        }
        Ok(None)
    }

    fn process_tuple_pair(
        &mut self,
        node_id: NodeId,
        relation: &str,
        rel_schema: &RelationSchema,
        in_island: bool,
        old: &Tuple,
        new: &Tuple,
    ) -> Result<()> {
        let old_key = old.key(rel_schema);
        let new_key = new.key(rel_schema);
        let policy = self.translator.policy(relation);

        if in_island {
            // ---- state R ----
            let at_new = self.rec.db.view(relation)?.get(&new_key).cloned();
            if at_new.as_ref() == Some(new) {
                // already effected (e.g. by an ancestor's key propagation,
                // when the non-inherited attributes did not change), or R-1
                self.trace.push(if old == new {
                    TraceEvent::R1 { node: node_id }
                } else {
                    TraceEvent::AlreadyPropagated { node: node_id }
                });
                return Ok(());
            }
            let old_present = self.rec.db.view(relation)?.contains_key(&old_key);
            if old_key == new_key {
                // CASE R-2: projections differ, keys match
                if !old_present {
                    return Err(Error::NoSuchTuple {
                        relation: relation.to_owned(),
                        key: old_key.to_string(),
                    });
                }
                self.trace.push(TraceEvent::R2 { node: node_id });
                self.record_replace(relation, old_key, new.clone())?;
                return Ok(());
            }
            // keys differ
            if !old_present {
                // The ancestor propagation moved the old tuple to new_key
                // already; what remains is a non-key fix-up.
                match at_new {
                    Some(_) => {
                        // the key part was propagated by an ancestor; fix
                        // the non-inherited attributes in place
                        self.trace.push(TraceEvent::R2 { node: node_id });
                        self.record_replace(relation, new_key, new.clone())?;
                        return Ok(());
                    }
                    None => {
                        return Err(Error::ConstraintViolation(format!(
                            "old island tuple {old} of {relation} is not current in \
                             the database"
                        )));
                    }
                }
            }
            // CASE R-3: a literal key replacement inside the island
            if !policy.allow_key_replacement {
                return Err(Error::ConstraintViolation(format!(
                    "translator forbids modifying keys of {relation} tuples"
                )));
            }
            self.trace.push(TraceEvent::R3 {
                node: node_id,
                adopted: at_new.is_some(),
            });
            match at_new {
                Some(_) => {
                    // a tuple with the new key already exists: delete the
                    // old tuple and adopt the existing one
                    if !policy.allow_delete_adopt {
                        return Err(Error::ConstraintViolation(format!(
                            "key replacement on {relation} collides with an existing \
                             tuple and delete-and-adopt is not allowed"
                        )));
                    }
                    let del_policy =
                        self.translator
                            .deletion_policy(self.schema, self.object, self.analysis);
                    let ops =
                        plan_delete(self.schema, &self.rec.db, relation, &old_key, &del_policy)?;
                    self.rec.apply_all(ops)?;
                }
                None => {
                    if !policy.allow_db_key_replace {
                        return Err(Error::ConstraintViolation(format!(
                            "translator forbids replacing database keys of {relation}"
                        )));
                    }
                    // replacement + propagation to peninsulas, out-of-object
                    // owned/subset relations and other referencers
                    let mod_policy = self
                        .translator
                        .modification_policy(self.object, self.analysis);
                    let ops = plan_key_replacement(
                        self.schema,
                        &self.rec.db,
                        relation,
                        &old_key,
                        new.clone(),
                        &mod_policy,
                    )?;
                    self.rec.apply_all(ops)?;
                    self.written.push((relation.to_owned(), new.clone()));
                }
            }
            let _ = node_id;
            Ok(())
        } else {
            // ---- state I ----
            if old_key == new_key {
                // CASE I-1: keys match — "go to state R, staying with this
                // tuple": an in-place modification
                self.trace.push(TraceEvent::I1 { node: node_id });
                if old == new {
                    return Ok(());
                }
                let existing = self.rec.db.view(relation)?.get(&new_key).cloned();
                match existing {
                    Some(ref e) if e == new => Ok(()),
                    Some(_) => {
                        if !policy.allow_modify {
                            return Err(Error::ConstraintViolation(format!(
                                "translator forbids modifying existing tuples of {relation}"
                            )));
                        }
                        self.record_replace(relation, new_key, new.clone())
                    }
                    None => {
                        if !policy.allow_insert {
                            return Err(Error::ConstraintViolation(format!(
                                "translator forbids inserting into {relation}"
                            )));
                        }
                        self.record_insert(relation, new.clone())
                    }
                }
            } else {
                // keys differ: cases I-2 / I-3 / I-4 — the old tuple is
                // left alone
                self.process_addition(node_id, relation, rel_schema, false, new)
            }
        }
    }

    /// Cases I-2/I-3/I-4 (also used for island additions, where a fresh
    /// insert is the normal path).
    fn process_addition(
        &mut self,
        node_id: NodeId,
        relation: &str,
        rel_schema: &RelationSchema,
        in_island: bool,
        new: &Tuple,
    ) -> Result<()> {
        let policy = self.translator.policy(relation);
        let key = new.key(rel_schema);
        let existing = self.rec.db.view(relation)?.get(&key).cloned();
        match existing {
            None => {
                // CASE I-2
                self.trace.push(TraceEvent::I2 { node: node_id });
                if !in_island && !policy.allow_insert {
                    return Err(Error::ConstraintViolation(format!(
                        "translator forbids inserting into {relation}"
                    )));
                }
                self.record_insert(relation, new.clone())
            }
            Some(ref e) if e == new => {
                // CASE I-3
                self.trace.push(TraceEvent::I3 { node: node_id });
                Ok(())
            }
            Some(_) => {
                // CASE I-4
                self.trace.push(TraceEvent::I4 { node: node_id });
                if !policy.allow_modify {
                    return Err(Error::ConstraintViolation(format!(
                        "translator forbids modifying existing tuples of {relation}"
                    )));
                }
                self.record_replace(relation, key, new.clone())
            }
        }
    }

    fn record_insert(&mut self, relation: &str, tuple: Tuple) -> Result<()> {
        self.rec.apply(DbOp::Insert {
            relation: relation.to_owned(),
            tuple: tuple.clone(),
        })?;
        self.written.push((relation.to_owned(), tuple));
        Ok(())
    }

    fn record_replace(&mut self, relation: &str, old_key: Key, tuple: Tuple) -> Result<()> {
        self.rec.apply(DbOp::Replace {
            relation: relation.to_owned(),
            old_key,
            tuple: tuple.clone(),
        })?;
        self.written.push((relation.to_owned(), tuple));
        Ok(())
    }
}

/// Pair old and new child instance lists: island nodes pair by the locally
/// accessible key complement `A_j` (inherited components change when an
/// ancestor key changes), other nodes pair by full key; leftovers pair
/// positionally, and the rest become one-sided entries.
fn pair_children<'i>(
    schema: &StructuralSchema,
    analysis: &IslandAnalysis,
    object: &ViewObject,
    node_id: NodeId,
    olds: &'i [VoInstanceNode],
    news: &'i [VoInstanceNode],
) -> Result<Vec<(Option<&'i VoInstanceNode>, Option<&'i VoInstanceNode>)>> {
    let relation = &object.node(node_id).relation;
    let rel_schema = schema.catalog().relation(relation)?;
    let ident_attrs: Vec<String> = match analysis.key_split.get(node_id).and_then(|s| s.as_ref()) {
        Some(split) if !split.complement.is_empty() => split.complement.clone(),
        _ => rel_schema
            .key_names()
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
    };
    let ident = |t: &Tuple| -> Result<Vec<Value>> {
        ident_attrs
            .iter()
            .map(|a| t.get_named(rel_schema, a).cloned())
            .collect()
    };

    let mut out: Vec<(Option<&VoInstanceNode>, Option<&VoInstanceNode>)> = Vec::new();
    let mut used_new = vec![false; news.len()];
    let mut unmatched_old: Vec<&VoInstanceNode> = Vec::new();
    for o in olds {
        let oid = ident(&o.tuple)?;
        let mut matched = false;
        for (j, n) in news.iter().enumerate() {
            if used_new[j] {
                continue;
            }
            if ident(&n.tuple)? == oid {
                used_new[j] = true;
                out.push((Some(o), Some(n)));
                matched = true;
                break;
            }
        }
        if !matched {
            unmatched_old.push(o);
        }
    }
    let mut remaining_new: Vec<&VoInstanceNode> = news
        .iter()
        .enumerate()
        .filter(|(j, _)| !used_new[*j])
        .map(|(_, n)| n)
        .collect();
    // positional pairing of leftovers (the paper's "get the next
    // view-object tuple" walks both lists in order)
    while let (Some(o), true) = (unmatched_old.first().copied(), !remaining_new.is_empty()) {
        unmatched_old.remove(0);
        let n = remaining_new.remove(0);
        out.push((Some(o), Some(n)));
    }
    for o in unmatched_old {
        out.push((Some(o), None));
    }
    for n in remaining_new {
        out.push((None, Some(n)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{assemble, VoInstanceNode};
    use crate::island::analyze;
    use crate::treegen::generate_omega;
    use crate::university::university_database;

    fn setup() -> (
        StructuralSchema,
        Database,
        ViewObject,
        IslandAnalysis,
        Translator,
    ) {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let analysis = analyze(&schema, &omega).unwrap();
        let translator = Translator::permissive(&omega);
        (schema, db, omega, analysis, translator)
    }

    fn node_id(o: &ViewObject, rel: &str) -> usize {
        o.nodes().iter().find(|n| n.relation == rel).unwrap().id
    }

    fn cs345(schema: &StructuralSchema, db: &Database, omega: &ViewObject) -> VoInstance {
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        assemble(schema, omega, db, t).unwrap()
    }

    /// The paper's §6 worked example: replace CS345 in "Computer Science"
    /// by EES345 in the (new) "Engineering Economic Systems" department.
    fn paper_replacement(
        schema: &StructuralSchema,
        db: &Database,
        omega: &ViewObject,
    ) -> (VoInstance, VoInstance) {
        let old = cs345(schema, db, omega);
        let mut new = old.clone();
        let courses = db.table("COURSES").unwrap().schema().clone();
        new.root.tuple = new
            .root
            .tuple
            .with_named(&courses, "course_id", "EES345".into())
            .unwrap()
            .with_named(&courses, "dept_name", "Engineering Economic Systems".into())
            .unwrap();
        (old, new)
    }

    #[test]
    fn paper_example_inserts_new_department() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let (old, new) = paper_replacement(&schema, &db, &omega);
        let ops =
            translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new).unwrap();
        // "will lead, among other things, to the insertion of a tuple
        // ⟨Engineering Economic Systems⟩ in the DEPARTMENT relation"
        assert!(ops.iter().any(|op| matches!(
            op,
            DbOp::Insert { relation, tuple }
                if relation == "DEPARTMENT"
                    && tuple.values()[0] == Value::text("Engineering Economic Systems")
        )));
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        // course re-keyed
        assert!(db
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("EES345")));
        assert!(!db
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("CS345")));
        // grades followed
        assert!(db
            .table("GRADES")
            .unwrap()
            .contains_key(&Key(vec!["EES345".into(), 1.into()])));
        // peninsula foreign keys replaced
        assert!(db
            .table("CURRICULUM")
            .unwrap()
            .contains_key(&Key(vec!["MS".into(), "EES345".into()])));
        assert!(!db
            .table("CURRICULUM")
            .unwrap()
            .contains_key(&Key(vec!["MS".into(), "CS345".into()])));
    }

    #[test]
    fn paper_restrictive_translator_rejects_example() {
        let (schema, db, omega, analysis, mut translator) = setup();
        // "she can answer <NO> to ... Can the relation DEPARTMENT be
        // modified during insertions (or replacements)?"
        let mut p = translator.policy("DEPARTMENT");
        p.allow_insert = false;
        p.allow_modify = false;
        translator.set_policy("DEPARTMENT", p);
        let (old, new) = paper_replacement(&schema, &db, &omega);
        let err = translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new)
            .unwrap_err();
        assert!(matches!(err, Error::ConstraintViolation(_)));
    }

    #[test]
    fn r1_identical_instance_is_noop() {
        let (schema, db, omega, analysis, translator) = setup();
        let old = cs345(&schema, &db, &omega);
        let new = old.clone();
        let ops =
            translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new).unwrap();
        assert!(ops.is_empty());
    }

    #[test]
    fn r2_nonkey_change_is_single_replace() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let old = cs345(&schema, &db, &omega);
        let mut new = old.clone();
        let courses = db.table("COURSES").unwrap().schema().clone();
        new.root.tuple = new
            .root
            .tuple
            .with_named(&courses, "title", "Advanced Databases".into())
            .unwrap();
        let ops =
            translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new).unwrap();
        assert_eq!(ops.len(), 1);
        assert!(ops[0].is_replace());
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
    }

    #[test]
    fn r3_key_change_with_grade_edit() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let old = cs345(&schema, &db, &omega);
        let mut new = old.clone();
        let courses = db.table("COURSES").unwrap().schema().clone();
        let grades = db.table("GRADES").unwrap().schema().clone();
        new.root.tuple = new
            .root
            .tuple
            .with_named(&courses, "course_id", "CS999".into())
            .unwrap();
        // additionally flip one grade
        let gid = node_id(&omega, "GRADES");
        let gs = new.root.children.get_mut(&gid).unwrap();
        gs[0].tuple = gs[0]
            .tuple
            .with_named(&grades, "grade", "C".into())
            .unwrap();
        let ops =
            translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new).unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        let g = db
            .table("GRADES")
            .unwrap()
            .get(&Key(vec!["CS999".into(), 1.into()]))
            .unwrap()
            .clone();
        assert_eq!(g.values()[2], Value::text("C"));
    }

    #[test]
    fn key_replacement_forbidden_by_policy() {
        let (schema, db, omega, analysis, mut translator) = setup();
        let mut p = translator.policy("COURSES");
        p.allow_key_replacement = false;
        translator.set_policy("COURSES", p);
        let (old, new) = paper_replacement(&schema, &db, &omega);
        assert!(
            translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new).is_err()
        );
    }

    #[test]
    fn delete_adopt_collision_paths() {
        let (schema, mut db, omega, analysis, mut translator) = setup();
        // rename CS345 -> CS101, which exists
        let old = cs345(&schema, &db, &omega);
        let mut new = old.clone();
        let courses = db.table("COURSES").unwrap().schema().clone();
        new.root.tuple = new
            .root
            .tuple
            .with_named(&courses, "course_id", "CS101".into())
            .unwrap();

        // paper transcript answered NO to delete-adopt:
        let mut p = translator.policy("COURSES");
        p.allow_delete_adopt = false;
        translator.set_policy("COURSES", p);
        assert!(translate_replacement(
            &schema,
            &omega,
            &analysis,
            &translator,
            &db,
            &old,
            new.clone()
        )
        .is_err());

        // allowing it deletes the old tuple and adopts CS101
        let mut p = translator.policy("COURSES");
        p.allow_delete_adopt = true;
        translator.set_policy("COURSES", p);
        let ops =
            translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new).unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        assert!(!db
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("CS345")));
        assert!(db
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("CS101")));
    }

    #[test]
    fn island_child_removed_from_instance_is_deleted() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let old = cs345(&schema, &db, &omega);
        let mut new = old.clone();
        let gid = node_id(&omega, "GRADES");
        new.root.children.get_mut(&gid).unwrap().remove(0); // drop student 1's grade
        let ops =
            translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new).unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        assert!(!db
            .table("GRADES")
            .unwrap()
            .contains_key(&Key(vec!["CS345".into(), 1.into()])));
        // the other grades remain
        assert!(db
            .table("GRADES")
            .unwrap()
            .contains_key(&Key(vec!["CS345".into(), 2.into()])));
    }

    #[test]
    fn island_child_added_to_instance_is_inserted() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let old = cs345(&schema, &db, &omega);
        let mut new = old.clone();
        let gid = node_id(&omega, "GRADES");
        let grades = db.table("GRADES").unwrap().schema().clone();
        new.root.push_child(VoInstanceNode::leaf(
            gid,
            Tuple::new(&grades, vec!["CS345".into(), 7.into(), "B".into()]).unwrap(),
        ));
        let ops =
            translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new).unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        assert!(db
            .table("GRADES")
            .unwrap()
            .contains_key(&Key(vec!["CS345".into(), 7.into()])));
    }

    #[test]
    fn non_island_old_tuple_never_deleted() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let old = cs345(&schema, &db, &omega);
        let mut new = old.clone();
        // retarget the course to the EE department (existing): old CS
        // department must survive
        let courses = db.table("COURSES").unwrap().schema().clone();
        new.root.tuple = new
            .root
            .tuple
            .with_named(&courses, "dept_name", "Electrical Engineering".into())
            .unwrap();
        let ops =
            translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new).unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        assert!(db
            .table("DEPARTMENT")
            .unwrap()
            .contains_key(&Key::single("Computer Science")));
        let c = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        assert_eq!(c.values()[3], Value::text("Electrical Engineering"));
    }

    #[test]
    fn stale_old_instance_rejected() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let old = cs345(&schema, &db, &omega);
        db.run_sql("UPDATE COURSES SET title = 'Changed' WHERE course_id = 'CS345'")
            .unwrap();
        let new = old.clone();
        let err = translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new)
            .unwrap_err();
        assert!(matches!(err, Error::ConstraintViolation(_)));
    }

    #[test]
    fn trace_records_paper_cases() {
        let (schema, db, omega, analysis, translator) = setup();
        // the §6 worked example: R-3 at the pivot, propagated GRADES,
        // I-2 for the new department, I-3 for the repaired curriculum
        let (old, new) = paper_replacement(&schema, &db, &omega);
        let (_, trace) =
            translate_replacement_traced(&schema, &omega, &analysis, &translator, &db, &old, new)
                .unwrap();
        let labels: Vec<&str> = trace.iter().map(|e| e.label()).collect();
        assert_eq!(labels[0], "R-3");
        assert!(labels.contains(&"I-2"), "DEPARTMENT insert: {labels:?}");
        // grades were propagated by the pivot's key replacement
        let gid = node_id(&omega, "GRADES");
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::AlreadyPropagated { node } if *node == gid)));
        // no delete-adopt happened
        assert!(trace
            .iter()
            .all(|e| !matches!(e, TraceEvent::R3 { adopted: true, .. })));
    }

    #[test]
    fn trace_identity_is_all_r1_i1_i3() {
        let (schema, db, omega, analysis, translator) = setup();
        let old = cs345(&schema, &db, &omega);
        let (ops, trace) = translate_replacement_traced(
            &schema,
            &omega,
            &analysis,
            &translator,
            &db,
            &old,
            old.clone(),
        )
        .unwrap();
        assert!(ops.is_empty());
        assert!(trace.iter().all(|e| matches!(
            e,
            TraceEvent::R1 { .. } | TraceEvent::I1 { .. } | TraceEvent::I3 { .. }
        )));
        // every bound tuple produced exactly one event
        assert_eq!(trace.len(), old.size());
    }

    #[test]
    fn trace_island_removal_and_adoption() {
        let (schema, db, omega, analysis, translator) = setup();
        let old = cs345(&schema, &db, &omega);
        // drop a grade
        let mut new = old.clone();
        let gid = node_id(&omega, "GRADES");
        new.root.children.get_mut(&gid).unwrap().remove(0);
        let (_, trace) =
            translate_replacement_traced(&schema, &omega, &analysis, &translator, &db, &old, new)
                .unwrap();
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::IslandRemoval { node } if *node == gid)));

        // rename to an existing course with delete-adopt allowed
        let courses = db.table("COURSES").unwrap().schema().clone();
        let mut new = old.clone();
        new.root.tuple = new
            .root
            .tuple
            .with_named(&courses, "course_id", "CS101".into())
            .unwrap();
        let (_, trace) =
            translate_replacement_traced(&schema, &omega, &analysis, &translator, &db, &old, new)
                .unwrap();
        assert!(trace
            .iter()
            .any(|e| matches!(e, TraceEvent::R3 { adopted: true, .. })));
    }

    #[test]
    fn dropped_grade_combined_with_pivot_key_change() {
        // A pivot key replacement re-keys grades via propagation; a grade
        // *dropped* from the new instance must still be deleted at its
        // rewritten key.
        let (schema, mut db, omega, analysis, translator) = setup();
        let old = cs345(&schema, &db, &omega);
        let mut new = old.clone();
        let courses = db.table("COURSES").unwrap().schema().clone();
        new.root.tuple = new
            .root
            .tuple
            .with_named(&courses, "course_id", "CS900".into())
            .unwrap();
        let gid = node_id(&omega, "GRADES");
        // drop student 2's grade from the renamed course
        new.root
            .children
            .get_mut(&gid)
            .unwrap()
            .retain(|g| g.tuple.values()[1] != Value::Int(2));
        let ops =
            translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new).unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        // kept grades re-keyed to CS900
        assert!(db
            .table("GRADES")
            .unwrap()
            .contains_key(&Key(vec!["CS900".into(), 1.into()])));
        // the dropped grade is gone under both keys
        assert!(!db
            .table("GRADES")
            .unwrap()
            .contains_key(&Key(vec!["CS900".into(), 2.into()])));
        assert!(!db
            .table("GRADES")
            .unwrap()
            .contains_key(&Key(vec!["CS345".into(), 2.into()])));
    }

    #[test]
    fn i4_conflicting_non_island_values_replace_existing() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let old = cs345(&schema, &db, &omega);
        let mut new = old.clone();
        // change student 1's degree program (non-island node)
        let sid = node_id(&omega, "STUDENT");
        let student = db.table("STUDENT").unwrap().schema().clone();
        fn patch(n: &mut VoInstanceNode, sid: usize, student: &RelationSchema) {
            for cs in n.children.values_mut() {
                for c in cs.iter_mut() {
                    if c.node == sid && c.tuple.get_named(student, "ssn").unwrap() == &Value::Int(1)
                    {
                        c.tuple = c
                            .tuple
                            .with_named(student, "degree_program", "MBA".into())
                            .unwrap();
                    }
                    patch(c, sid, student);
                }
            }
        }
        patch(&mut new.root, sid, &student);
        let ops =
            translate_replacement(&schema, &omega, &analysis, &translator, &db, &old, new).unwrap();
        db.apply_all(&ops).unwrap();
        let s = db
            .table("STUDENT")
            .unwrap()
            .get(&Key::single(1))
            .unwrap()
            .clone();
        assert_eq!(s.values()[1], Value::text("MBA"));
    }
}
