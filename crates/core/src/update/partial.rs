//! Partial updates — manipulating one component of a view object
//! (paper §5 delegates these to the thesis \[4\]; we realize them by
//! *reduction to replacement*: fetch the stored instance, apply the
//! component edit, and run it through VO-R). This guarantees partial
//! updates obey exactly the same translator and global-integrity rules as
//! complete updates.

use crate::instance::{assemble, VoInstanceNode};
use crate::object::NodeId;
use crate::update::error::{UpdateError, UpdateResult, UpdateStep};
use crate::update::pipeline::{UpdateOutcome, ViewObjectUpdater};
use crate::update::UpdateRequest;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// A partial update against one node of the object, addressed by the
/// instance's pivot key.
#[derive(Debug, Clone)]
pub enum PartialOp {
    /// Add one tuple under `node` (its connecting attributes are aligned
    /// to the parent automatically by link propagation).
    InsertChild {
        /// Pivot key selecting the instance.
        pivot_key: Key,
        /// Target node.
        node: NodeId,
        /// Tuple to add.
        tuple: Tuple,
    },
    /// Remove the tuple with `key` from `node`.
    DeleteChild {
        /// Pivot key selecting the instance.
        pivot_key: Key,
        /// Target node.
        node: NodeId,
        /// Key of the tuple to remove.
        key: Key,
    },
    /// Replace the tuple with `old_key` under `node` by `new`.
    ModifyChild {
        /// Pivot key selecting the instance.
        pivot_key: Key,
        /// Target node.
        node: NodeId,
        /// Key of the tuple being replaced.
        old_key: Key,
        /// Replacing tuple.
        new: Tuple,
    },
    /// Replace the pivot tuple itself (children follow by propagation).
    ModifyPivot {
        /// Current pivot key.
        pivot_key: Key,
        /// Replacing pivot tuple.
        new: Tuple,
    },
}

impl PartialOp {
    /// Short label for logs and outcomes.
    pub fn kind(&self) -> &'static str {
        match self {
            PartialOp::InsertChild { .. } => "partial-insert-child",
            PartialOp::DeleteChild { .. } => "partial-delete-child",
            PartialOp::ModifyChild { .. } => "partial-modify-child",
            PartialOp::ModifyPivot { .. } => "partial-modify-pivot",
        }
    }
}

impl ViewObjectUpdater {
    /// Translate and apply a partial update by reduction to VO-R.
    pub fn apply_partial(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        op: PartialOp,
    ) -> Result<Vec<DbOp>> {
        self.apply_partial_outcome(schema, db, op)
            .map(|o| o.ops)
            .map_err(Error::from)
    }

    /// Like [`ViewObjectUpdater::apply_partial`], but returning the full
    /// [`UpdateOutcome`]. Errors during instance assembly and component
    /// editing (missing pivot, missing child) count as the *validate*
    /// step; the reduced replacement then runs the normal pipeline.
    pub fn apply_partial_outcome(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        op: PartialOp,
    ) -> UpdateResult<UpdateOutcome> {
        let kind = op.kind();
        let (old, new) = self
            .reduce_partial(schema, db, op)
            .map_err(|e| UpdateError::new(UpdateStep::Validate, e).with_kind(kind))?;
        let mut outcome =
            self.apply_request(schema, db, UpdateRequest::Replacement { old, new })?;
        outcome.request_kind = kind;
        Ok(outcome)
    }

    /// Reduce a partial op to a `(stored, edited)` instance pair for VO-R.
    fn reduce_partial(
        &self,
        schema: &StructuralSchema,
        db: &Database,
        op: PartialOp,
    ) -> Result<(crate::instance::VoInstance, crate::instance::VoInstance)> {
        let pivot_key = match &op {
            PartialOp::InsertChild { pivot_key, .. }
            | PartialOp::DeleteChild { pivot_key, .. }
            | PartialOp::ModifyChild { pivot_key, .. }
            | PartialOp::ModifyPivot { pivot_key, .. } => pivot_key.clone(),
        };
        let pivot_tuple = db
            .table(self.object().pivot())?
            .get(&pivot_key)
            .cloned()
            .ok_or_else(|| Error::NoSuchTuple {
                relation: self.object().pivot().to_owned(),
                key: pivot_key.to_string(),
            })?;
        let old = assemble(schema, self.object(), db, pivot_tuple)?;
        let mut new = old.clone();
        match op {
            PartialOp::InsertChild { node, tuple, .. } => {
                let parent = self.object().node(node).parent.ok_or_else(|| {
                    Error::ConstraintViolation(
                        "cannot InsertChild at the pivot; use a complete insertion".into(),
                    )
                })?;
                // attach under every instance of the parent whose linking
                // values match; if the tuple's linking values don't match
                // any parent, link propagation will rewrite them when the
                // parent is the pivot — otherwise reject ambiguity
                let mut attached = false;
                attach(&mut new.root, parent, node, &tuple, &mut attached);
                if !attached {
                    return Err(Error::ConstraintViolation(format!(
                        "no instance of node {parent} to attach the new child under"
                    )));
                }
            }
            PartialOp::DeleteChild { node, key, .. } => {
                let rel = &self.object().node(node).relation;
                let rel_schema = schema.catalog().relation(rel)?.clone();
                let mut removed = false;
                remove(&mut new.root, node, &key, &rel_schema, &mut removed);
                if !removed {
                    return Err(Error::NoSuchTuple {
                        relation: rel.clone(),
                        key: key.to_string(),
                    });
                }
            }
            PartialOp::ModifyChild {
                node,
                old_key,
                new: newt,
                ..
            } => {
                let rel = &self.object().node(node).relation;
                let rel_schema = schema.catalog().relation(rel)?.clone();
                let mut modified = false;
                modify(
                    &mut new.root,
                    node,
                    &old_key,
                    &newt,
                    &rel_schema,
                    &mut modified,
                );
                if !modified {
                    return Err(Error::NoSuchTuple {
                        relation: rel.clone(),
                        key: old_key.to_string(),
                    });
                }
            }
            PartialOp::ModifyPivot { new: newt, .. } => {
                new.root.tuple = newt;
            }
        }
        Ok((old, new))
    }
}

fn attach(
    inst: &mut VoInstanceNode,
    parent: NodeId,
    node: NodeId,
    tuple: &Tuple,
    attached: &mut bool,
) {
    if inst.node == parent {
        inst.push_child(VoInstanceNode::leaf(node, tuple.clone()));
        *attached = true;
    }
    for children in inst.children.values_mut() {
        for c in children.iter_mut() {
            if c.node != node {
                attach(c, parent, node, tuple, attached);
            }
        }
    }
}

fn remove(
    inst: &mut VoInstanceNode,
    node: NodeId,
    key: &Key,
    rel_schema: &RelationSchema,
    removed: &mut bool,
) {
    for children in inst.children.values_mut() {
        let before = children.len();
        children.retain(|c| !(c.node == node && c.tuple.key(rel_schema) == *key));
        if children.len() != before {
            *removed = true;
        }
        for c in children.iter_mut() {
            remove(c, node, key, rel_schema, removed);
        }
    }
}

fn modify(
    inst: &mut VoInstanceNode,
    node: NodeId,
    old_key: &Key,
    new: &Tuple,
    rel_schema: &RelationSchema,
    modified: &mut bool,
) {
    for children in inst.children.values_mut() {
        for c in children.iter_mut() {
            if c.node == node && c.tuple.key(rel_schema) == *old_key {
                c.tuple = new.clone();
                *modified = true;
            }
            modify(c, node, old_key, new, rel_schema, modified);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translator::Translator;
    use crate::treegen::generate_omega;
    use crate::university::university_database;

    fn setup() -> (StructuralSchema, Database, ViewObjectUpdater) {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        (schema, db, updater)
    }

    fn node_id(u: &ViewObjectUpdater, rel: &str) -> NodeId {
        u.object()
            .nodes()
            .iter()
            .find(|n| n.relation == rel)
            .unwrap()
            .id
    }

    #[test]
    fn insert_child_grade() {
        let (schema, mut db, updater) = setup();
        let gid = node_id(&updater, "GRADES");
        let grades = db.table("GRADES").unwrap().schema().clone();
        updater
            .apply_partial(
                &schema,
                &mut db,
                PartialOp::InsertChild {
                    pivot_key: Key::single("CS345"),
                    node: gid,
                    tuple: Tuple::new(&grades, vec!["CS345".into(), 9.into(), "B".into()]).unwrap(),
                },
            )
            .unwrap();
        assert!(db
            .table("GRADES")
            .unwrap()
            .contains_key(&Key(vec!["CS345".into(), 9.into()])));
        assert!(check_database(&schema, &db).unwrap().is_empty());
    }

    #[test]
    fn delete_child_grade_cascades_nothing_else() {
        let (schema, mut db, updater) = setup();
        let gid = node_id(&updater, "GRADES");
        updater
            .apply_partial(
                &schema,
                &mut db,
                PartialOp::DeleteChild {
                    pivot_key: Key::single("CS345"),
                    node: gid,
                    key: Key(vec!["CS345".into(), 2.into()]),
                },
            )
            .unwrap();
        assert!(!db
            .table("GRADES")
            .unwrap()
            .contains_key(&Key(vec!["CS345".into(), 2.into()])));
        // the student survives (outside the island)
        assert!(db.table("STUDENT").unwrap().contains_key(&Key::single(2)));
        assert!(check_database(&schema, &db).unwrap().is_empty());
    }

    #[test]
    fn modify_child_grade_value() {
        let (schema, mut db, updater) = setup();
        let gid = node_id(&updater, "GRADES");
        let grades = db.table("GRADES").unwrap().schema().clone();
        updater
            .apply_partial(
                &schema,
                &mut db,
                PartialOp::ModifyChild {
                    pivot_key: Key::single("CS345"),
                    node: gid,
                    old_key: Key(vec!["CS345".into(), 1.into()]),
                    new: Tuple::new(&grades, vec!["CS345".into(), 1.into(), "F".into()]).unwrap(),
                },
            )
            .unwrap();
        let g = db
            .table("GRADES")
            .unwrap()
            .get(&Key(vec!["CS345".into(), 1.into()]))
            .unwrap()
            .clone();
        assert_eq!(g.values()[2], Value::text("F"));
    }

    #[test]
    fn modify_pivot_rekeys_entity() {
        let (schema, mut db, updater) = setup();
        let courses = db.table("COURSES").unwrap().schema().clone();
        updater
            .apply_partial(
                &schema,
                &mut db,
                PartialOp::ModifyPivot {
                    pivot_key: Key::single("EE282"),
                    new: Tuple::new(
                        &courses,
                        vec![
                            "EE283".into(),
                            "Computer Architecture".into(),
                            "graduate".into(),
                            "Electrical Engineering".into(),
                        ],
                    )
                    .unwrap(),
                },
            )
            .unwrap();
        assert!(db
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("EE283")));
        assert!(db
            .table("GRADES")
            .unwrap()
            .contains_key(&Key(vec!["EE283".into(), 1.into()])));
        assert!(check_database(&schema, &db).unwrap().is_empty());
    }

    #[test]
    fn unknown_pivot_rejected() {
        let (schema, mut db, updater) = setup();
        let gid = node_id(&updater, "GRADES");
        let err = updater
            .apply_partial(
                &schema,
                &mut db,
                PartialOp::DeleteChild {
                    pivot_key: Key::single("NOPE"),
                    node: gid,
                    key: Key(vec!["NOPE".into(), 1.into()]),
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::NoSuchTuple { .. }));
    }

    #[test]
    fn unknown_child_key_rejected() {
        let (schema, mut db, updater) = setup();
        let gid = node_id(&updater, "GRADES");
        let err = updater
            .apply_partial(
                &schema,
                &mut db,
                PartialOp::DeleteChild {
                    pivot_key: Key::single("CS345"),
                    node: gid,
                    key: Key(vec!["CS345".into(), 999.into()]),
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::NoSuchTuple { .. }));
    }

    #[test]
    fn partial_respects_translator() {
        let (schema, mut db, _) = setup();
        let omega = generate_omega(&schema).unwrap();
        let mut t = Translator::permissive(&omega);
        t.allow_replacement = false;
        let updater = ViewObjectUpdater::new(&schema, omega, t).unwrap();
        let gid = node_id(&updater, "GRADES");
        let grades = db.table("GRADES").unwrap().schema().clone();
        let err = updater
            .apply_partial(
                &schema,
                &mut db,
                PartialOp::InsertChild {
                    pivot_key: Key::single("CS345"),
                    node: gid,
                    tuple: Tuple::new(&grades, vec!["CS345".into(), 9.into(), "B".into()]).unwrap(),
                },
            )
            .unwrap_err();
        assert!(matches!(err, Error::ConstraintViolation(_)));
    }
}
