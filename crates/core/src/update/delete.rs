//! Algorithm VO-CD — translation of complete-deletion requests
//! (paper §5.1).
//!
//! The algorithm: isolate the dependency island; delete all matching
//! tuples of each island projection; identify the referencing peninsulas
//! and repair the foreign key of each matching tuple; then maintain global
//! integrity (cascade to out-of-object owned/subset relations, repair any
//! other referencing relation). Because the island is by construction a
//! forward ownership/subset subtree of the pivot, the structural deletion
//! planner realizes the whole algorithm: cascading from the pivot tuple
//! reaches every island tuple, and the translator-derived policy drives
//! the peninsula and out-of-object repairs. When a peninsula's policy is
//! *reject* and referencing tuples exist, "the transaction cannot be
//! completed and has to be rolled back."

use crate::instance::VoInstance;
use crate::island::IslandAnalysis;
use crate::object::ViewObject;
use crate::translator::Translator;
use crate::update::validate::validate_instance;
use crate::update::OpRecorder;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// Translate a complete deletion into database operations.
pub fn translate_complete_deletion(
    schema: &StructuralSchema,
    object: &ViewObject,
    analysis: &IslandAnalysis,
    translator: &Translator,
    db: &Database,
    instance: &VoInstance,
) -> Result<Vec<DbOp>> {
    let mut rec = OpRecorder::over(db);
    translate_complete_deletion_into(schema, object, analysis, translator, &mut rec, instance)?;
    Ok(rec.into_ops())
}

/// Like [`translate_complete_deletion`], but planning into an existing
/// recorder — the batch path, where many requests share one overlay.
pub fn translate_complete_deletion_into(
    schema: &StructuralSchema,
    object: &ViewObject,
    analysis: &IslandAnalysis,
    translator: &Translator,
    rec: &mut OpRecorder<'_>,
    instance: &VoInstance,
) -> Result<()> {
    vo_relational::stats::count_snapshot_avoided();
    if !translator.allow_deletion {
        return Err(Error::ConstraintViolation(format!(
            "translator for {} forbids complete deletions",
            object.name()
        )));
    }
    validate_instance(schema, object, instance)?;

    // the instance must denote a stored entity: every island tuple exists
    for &node_id in &analysis.island {
        let node = object.node(node_id);
        let table = rec.db.view(&node.relation)?;
        for tuple in instance.tuples_of(node_id) {
            let key = tuple.key(table.schema());
            if !table.contains_key(&key) {
                return Err(Error::NoSuchTuple {
                    relation: node.relation.clone(),
                    key: key.to_string(),
                });
            }
        }
    }

    let pivot_schema = schema.catalog().relation(object.pivot())?;
    let pivot_key = instance.root.tuple.key(pivot_schema);
    let policy = translator.deletion_policy(schema, object, analysis);
    let ops = plan_delete(schema, &rec.db, object.pivot(), &pivot_key, &policy)?;

    // sanity: every island tuple of the instance is among the deletions
    for &node_id in &analysis.island {
        let node = object.node(node_id);
        let table = rec.db.view(&node.relation)?;
        for tuple in instance.tuples_of(node_id) {
            let key = tuple.key(table.schema());
            let covered = ops.iter().any(|op| match op {
                DbOp::Delete { relation, key: k } => relation == &node.relation && k == &key,
                _ => false,
            });
            if !covered {
                return Err(Error::ConstraintViolation(format!(
                    "instance tuple {tuple} of {} is not reachable from the pivot \
                     by dependency cascades — the instance is stale",
                    node.relation
                )));
            }
        }
    }
    rec.apply_all(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::assemble;
    use crate::island::analyze;
    use crate::translator::PeninsulaAction;
    use crate::treegen::generate_omega;
    use crate::university::university_database;

    fn setup() -> (
        StructuralSchema,
        Database,
        ViewObject,
        IslandAnalysis,
        Translator,
    ) {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let analysis = analyze(&schema, &omega).unwrap();
        let translator = Translator::permissive(&omega);
        (schema, db, omega, analysis, translator)
    }

    fn cs345(schema: &StructuralSchema, db: &Database, omega: &ViewObject) -> VoInstance {
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        assemble(schema, omega, db, t).unwrap()
    }

    #[test]
    fn deletes_island_and_repairs_peninsula() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let inst = cs345(&schema, &db, &omega);
        let ops = translate_complete_deletion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        assert!(!db
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("CS345")));
        // grades of CS345 cascaded away
        assert_eq!(db.table("GRADES").unwrap().len(), 14);
        // peninsula tuples (CURRICULUM rows citing CS345) deleted — their
        // foreign key is part of their key, so nullify is impossible and
        // the default action deletes them
        assert_eq!(db.table("CURRICULUM").unwrap().len(), 1);
        // students and departments untouched
        assert_eq!(db.table("STUDENT").unwrap().len(), 10);
        assert_eq!(db.table("DEPARTMENT").unwrap().len(), 2);
    }

    #[test]
    fn peninsula_reject_rolls_back() {
        let (schema, db, omega, analysis, mut translator) = setup();
        translator
            .peninsula_actions
            .insert("CURRICULUM".into(), PeninsulaAction::Reject);
        let inst = cs345(&schema, &db, &omega);
        let err = translate_complete_deletion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap_err();
        assert!(matches!(err, Error::ConstraintViolation(_)));
        // nothing changed
        assert!(db
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("CS345")));
    }

    #[test]
    fn peninsula_nullify_fails_when_fk_is_key() {
        let (schema, db, omega, analysis, mut translator) = setup();
        translator
            .peninsula_actions
            .insert("CURRICULUM".into(), PeninsulaAction::NullifyForeignKey);
        let inst = cs345(&schema, &db, &omega);
        let err = translate_complete_deletion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap_err();
        // CURRICULUM.course_id is part of its key → cannot be NULLed
        assert!(matches!(err, Error::ConstraintViolation(_)));
    }

    #[test]
    fn forbidden_when_translator_disallows_deletion() {
        let (schema, db, omega, analysis, mut translator) = setup();
        translator.allow_deletion = false;
        let inst = cs345(&schema, &db, &omega);
        assert!(
            translate_complete_deletion(&schema, &omega, &analysis, &translator, &db, &inst)
                .is_err()
        );
    }

    #[test]
    fn stale_instance_rejected() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let inst = cs345(&schema, &db, &omega);
        // someone else deletes a grade first
        db.table_mut("GRADES")
            .unwrap()
            .delete(&Key(vec!["CS345".into(), 1.into()]))
            .unwrap();
        let err = translate_complete_deletion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap_err();
        assert!(matches!(err, Error::NoSuchTuple { .. }));
    }

    #[test]
    fn nonexistent_instance_rejected() {
        let (schema, mut db, omega, analysis, translator) = setup();
        let inst = cs345(&schema, &db, &omega);
        db.run_sql("DELETE FROM CURRICULUM WHERE course_id = 'CS345'")
            .unwrap();
        db.run_sql("DELETE FROM GRADES WHERE course_id = 'CS345'")
            .unwrap();
        db.run_sql("DELETE FROM COURSES WHERE course_id = 'CS345'")
            .unwrap();
        let err = translate_complete_deletion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap_err();
        assert!(matches!(err, Error::NoSuchTuple { .. }));
    }

    #[test]
    fn deletion_of_instance_without_peninsula_rows() {
        let (schema, mut db, omega, analysis, translator) = setup();
        // EE282 has no curriculum rows
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("EE282"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        let ops = translate_complete_deletion(&schema, &omega, &analysis, &translator, &db, &inst)
            .unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        assert_eq!(db.table("CURRICULUM").unwrap().len(), 3);
        assert_eq!(db.table("GRADES").unwrap().len(), 11);
    }
}
