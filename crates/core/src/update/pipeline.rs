//! The end-to-end update pipeline: steps 1–3 produce an operation list,
//! step 4 applies it transactionally under the structural consistency
//! check, rolling back on any violation.
//!
//! Two granularities share one engine:
//!
//! * **Per-request** — [`ViewObjectUpdater::apply_request`] translates a
//!   single [`UpdateRequest`] over a fresh overlay and applies it.
//! * **Set-at-a-time** — [`ViewObjectUpdater::apply_batch`] runs a whole
//!   [`UpdateBatch`] over *one* shared overlay: one base snapshot is
//!   avoided per request (the overlay borrows the base), each translator
//!   sees the ops planned by earlier requests, global validation runs
//!   exactly once at the end, and the whole batch applies in a single
//!   transaction. On failure the error carries the offending request's
//!   index and kind, and the database is untouched.
//!
//! Both return [`UpdateOutcome`]s describing what was translated; the
//! legacy `Vec<DbOp>`-returning methods remain as thin wrappers.

use crate::instance::VoInstance;
use crate::island::{analyze, IslandAnalysis};
use crate::object::ViewObject;
use crate::translator::Translator;
use crate::update::delete::translate_complete_deletion_into;
use crate::update::error::{UpdateError, UpdateResult, UpdateStep};
use crate::update::insert::translate_complete_insertion_into;
use crate::update::propagate::propagate_links;
use crate::update::replace::translate_replacement_into;
use crate::update::validate::validate_instance;
use crate::update::{OpRecorder, UpdateRequest};
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// Tallies over an operation list; cheap to compute, handy for logs,
/// benches and assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Number of `Insert` ops.
    pub inserts: usize,
    /// Number of `Delete` ops.
    pub deletes: usize,
    /// Number of `Replace` ops.
    pub replaces: usize,
    /// Number of distinct relations the ops touch.
    pub relations_touched: usize,
}

impl UpdateStats {
    /// Tally `ops`.
    pub fn from_ops(ops: &[DbOp]) -> Self {
        let mut stats = UpdateStats::default();
        let mut relations = std::collections::BTreeSet::new();
        for op in ops {
            match op {
                DbOp::Insert { .. } => stats.inserts += 1,
                DbOp::Delete { .. } => stats.deletes += 1,
                DbOp::Replace { .. } => stats.replaces += 1,
            }
            relations.insert(op.relation());
        }
        stats.relations_touched = relations.len();
        stats
    }

    /// Total number of ops.
    pub fn total(&self) -> usize {
        self.inserts + self.deletes + self.replaces
    }
}

impl std::ops::Add for UpdateStats {
    type Output = UpdateStats;
    fn add(self, rhs: UpdateStats) -> UpdateStats {
        UpdateStats {
            inserts: self.inserts + rhs.inserts,
            deletes: self.deletes + rhs.deletes,
            replaces: self.replaces + rhs.replaces,
            // upper bound: per-request relation sets may overlap
            relations_touched: self.relations_touched.max(rhs.relations_touched),
        }
    }
}

/// What translating one request produced: the ops, the pipeline steps
/// that ran, and summary statistics.
#[derive(Debug, Clone)]
pub struct UpdateOutcome {
    /// Kind label of the request (`"complete-insertion"`, …).
    pub request_kind: &'static str,
    /// The database operations implementing the request, in application
    /// order.
    pub ops: Vec<DbOp>,
    /// The pipeline steps that ran, in order.
    pub steps: Vec<UpdateStep>,
    /// Tallies over `ops`.
    pub stats: UpdateStats,
}

impl UpdateOutcome {
    fn new(request_kind: &'static str, ops: Vec<DbOp>, steps: Vec<UpdateStep>) -> Self {
        let stats = UpdateStats::from_ops(&ops);
        UpdateOutcome {
            request_kind,
            ops,
            steps,
            stats,
        }
    }
}

/// What applying a whole batch produced: one [`UpdateOutcome`] per
/// request, in request order, plus batch-level tallies.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Per-request outcomes, in request order.
    pub outcomes: Vec<UpdateOutcome>,
    /// Total ops across all requests.
    pub total_ops: usize,
    /// Tallies over the whole batch's ops.
    pub stats: UpdateStats,
}

impl BatchOutcome {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// True when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// All ops of the batch, flattened in application order.
    pub fn all_ops(&self) -> impl Iterator<Item = &DbOp> {
        self.outcomes.iter().flat_map(|o| o.ops.iter())
    }
}

/// A batch translated against a pinned snapshot, awaiting
/// first-committer-wins validation at the head (see
/// [`ViewObjectUpdater::prepare_batch`] /
/// [`ViewObjectUpdater::commit_prepared`]).
///
/// The prepared batch is self-contained — it borrows nothing from the
/// snapshot it was planned over — so it can cross threads: prepare on a
/// reader, commit wherever the head writer lives.
#[derive(Debug, Clone)]
pub struct PreparedBatch {
    /// Per-request outcomes, in request order (global-check step included
    /// when strict preparation ran it against the overlay).
    pub outcomes: Vec<UpdateOutcome>,
    /// All planned ops, flattened in application order.
    pub ops: Vec<DbOp>,
    /// Tallies over `ops`.
    pub stats: UpdateStats,
    /// The version of the base the batch was translated against.
    pub base_version: u64,
    /// Relations the translation read or wrote — the set validated
    /// against `base_version` at commit.
    pub touched: std::collections::BTreeSet<String>,
}

impl PreparedBatch {
    /// Total planned ops.
    pub fn total_ops(&self) -> usize {
        self.ops.len()
    }
}

/// An ordered set of update requests translated over one shared overlay
/// and applied as a single transaction. Build with the fluent helpers or
/// collect from an iterator of [`UpdateRequest`]s.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    requests: Vec<UpdateRequest>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Append a request.
    pub fn push(&mut self, request: UpdateRequest) {
        self.requests.push(request);
    }

    /// Builder-style [`UpdateBatch::push`].
    pub fn with(mut self, request: UpdateRequest) -> Self {
        self.push(request);
        self
    }

    /// Append a complete insertion.
    pub fn insert(self, instance: VoInstance) -> Self {
        self.with(UpdateRequest::CompleteInsertion(instance))
    }

    /// Append a complete deletion.
    pub fn delete(self, instance: VoInstance) -> Self {
        self.with(UpdateRequest::CompleteDeletion(instance))
    }

    /// Append a replacement.
    pub fn replace(self, old: VoInstance, new: VoInstance) -> Self {
        self.with(UpdateRequest::Replacement { old, new })
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when no requests have been queued.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The queued requests.
    pub fn requests(&self) -> &[UpdateRequest] {
        &self.requests
    }

    /// Consume, yielding the requests.
    pub fn into_requests(self) -> Vec<UpdateRequest> {
        self.requests
    }
}

impl From<Vec<UpdateRequest>> for UpdateBatch {
    fn from(requests: Vec<UpdateRequest>) -> Self {
        UpdateBatch { requests }
    }
}

impl FromIterator<UpdateRequest> for UpdateBatch {
    fn from_iter<I: IntoIterator<Item = UpdateRequest>>(iter: I) -> Self {
        UpdateBatch {
            requests: iter.into_iter().collect(),
        }
    }
}

impl IntoIterator for UpdateBatch {
    type Item = UpdateRequest;
    type IntoIter = std::vec::IntoIter<UpdateRequest>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

/// Bundles a view object with its island analysis and translator; the
/// analysis is computed once at construction (the paper chooses the
/// translator at view-object generation time for the same reason: all the
/// expensive reasoning happens once, every update reuses it).
#[derive(Debug, Clone)]
pub struct ViewObjectUpdater {
    object: ViewObject,
    analysis: IslandAnalysis,
    translator: Translator,
    /// When true (the default), every applied update re-verifies the full
    /// structural consistency of the database and rolls back on violation.
    pub strict: bool,
}

impl ViewObjectUpdater {
    /// Build an updater; computes the island analysis.
    pub fn new(
        schema: &StructuralSchema,
        object: ViewObject,
        translator: Translator,
    ) -> Result<Self> {
        let analysis = analyze(schema, &object)?;
        Ok(ViewObjectUpdater {
            object,
            analysis,
            translator,
            strict: true,
        })
    }

    /// The object.
    pub fn object(&self) -> &ViewObject {
        &self.object
    }

    /// The island analysis.
    pub fn analysis(&self) -> &IslandAnalysis {
        &self.analysis
    }

    /// The translator.
    pub fn translator(&self) -> &Translator {
        &self.translator
    }

    /// Steps 1–3 for one request, planning into `rec`'s shared overlay.
    /// Returns the steps that ran; the ops land in the recorder.
    fn translate_request_into(
        &self,
        schema: &StructuralSchema,
        rec: &mut OpRecorder<'_>,
        request: UpdateRequest,
    ) -> UpdateResult<Vec<UpdateStep>> {
        let kind = request.kind();
        let mut steps = Vec::with_capacity(3);

        // step 1 — local validation
        let request = {
            let instance = match &request {
                UpdateRequest::CompleteInsertion(inst) => inst,
                UpdateRequest::CompleteDeletion(inst) => inst,
                UpdateRequest::Replacement { old, .. } => old,
            };
            validate_instance(schema, &self.object, instance)
                .map_err(|e| UpdateError::new(UpdateStep::Validate, e).with_kind(kind))?;
            steps.push(UpdateStep::Validate);
            request
        };

        // step 2 — propagation within the view object (replacements only:
        // the replacing instance's inherited linking attributes must
        // follow its ancestors before translation compares trees)
        let request = match request {
            UpdateRequest::Replacement { old, new } => {
                let new = propagate_links(schema, &self.object, new)
                    .and_then(|new| {
                        validate_instance(schema, &self.object, &new)?;
                        Ok(new)
                    })
                    .map_err(|e| UpdateError::new(UpdateStep::Propagate, e).with_kind(kind))?;
                steps.push(UpdateStep::Propagate);
                UpdateRequest::Replacement { old, new }
            }
            other => other,
        };

        // step 3 — translation into database operations
        let mut sp = vo_obs::trace::span("penguin.translate");
        if sp.is_recording() {
            sp.field("object", Json::str(self.object.name()));
            sp.field("kind", Json::str(kind));
            sp.field(
                "island_relations",
                Json::Int(self.analysis.island_relations.len() as i64),
            );
            sp.field(
                "peninsulas",
                Json::Int(self.analysis.peninsulas.len() as i64),
            );
        }
        let before = rec.mark();
        let translated = match request {
            UpdateRequest::CompleteInsertion(inst) => translate_complete_insertion_into(
                schema,
                &self.object,
                &self.analysis,
                &self.translator,
                rec,
                &inst,
            ),
            UpdateRequest::CompleteDeletion(inst) => translate_complete_deletion_into(
                schema,
                &self.object,
                &self.analysis,
                &self.translator,
                rec,
                &inst,
            ),
            UpdateRequest::Replacement { old, new } => translate_replacement_into(
                schema,
                &self.object,
                &self.analysis,
                &self.translator,
                rec,
                &old,
                new,
            )
            .map(|_trace| ()),
        };
        if sp.is_recording() {
            sp.field("ops", Json::Int(rec.ops_since(before).len() as i64));
        }
        translated.map_err(|e| UpdateError::new(UpdateStep::Translate, e).with_kind(kind))?;
        steps.push(UpdateStep::Translate);
        Ok(steps)
    }

    /// Translate a request into an [`UpdateOutcome`] without applying it.
    pub fn translate_request(
        &self,
        schema: &StructuralSchema,
        db: &Database,
        request: UpdateRequest,
    ) -> UpdateResult<UpdateOutcome> {
        let kind = request.kind();
        let mut rec = OpRecorder::over(db);
        let steps = self.translate_request_into(schema, &mut rec, request)?;
        Ok(UpdateOutcome::new(kind, rec.into_ops(), steps))
    }

    /// Translate and apply one request; in strict mode the database must
    /// end structurally consistent or nothing is applied.
    pub fn apply_request(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        request: UpdateRequest,
    ) -> UpdateResult<UpdateOutcome> {
        let kind = request.kind();
        let mut rec = OpRecorder::over(&*db);
        let mut steps = self.translate_request_into(schema, &mut rec, request)?;
        if self.strict {
            let violations = check_overlay(schema, &rec).map_err(|e| e.with_kind(kind))?;
            if !violations.is_empty() {
                return Err(rollback_error(&violations).with_kind(kind));
            }
            steps.push(UpdateStep::GlobalCheck);
        }
        let ops = rec.into_ops();
        db.apply_all(&ops)
            .map_err(|e| UpdateError::new(UpdateStep::GlobalCheck, e).with_kind(kind))?;
        Ok(UpdateOutcome::new(kind, ops, steps))
    }

    /// Set-at-a-time translation and application (the paper's translators,
    /// run back-to-back over one shared overlay).
    ///
    /// The whole batch shares a single [`OpRecorder`] over the borrowed
    /// base database: request *i*'s translator sees the ops planned by
    /// requests *0..i*, global validation runs once over the final
    /// overlay, and the ops apply in one transaction. On any failure the
    /// database is untouched and the returned [`UpdateError`] names the
    /// failing step plus — when attributable — the request index.
    ///
    /// Unlike a sequence of strict [`ViewObjectUpdater::apply_request`]
    /// calls, intermediate states need not be consistent: only the final
    /// overlay is checked (in strict mode), so a batch can succeed where
    /// the same requests applied one-by-one would fail mid-stream.
    pub fn apply_batch(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        batch: impl Into<UpdateBatch>,
    ) -> UpdateResult<BatchOutcome> {
        let batch: UpdateBatch = batch.into();
        let mut rec = OpRecorder::over(&*db);
        let mut outcomes = Vec::with_capacity(batch.len());
        for (i, request) in batch.into_requests().into_iter().enumerate() {
            let kind = request.kind();
            let mark = rec.mark();
            let steps = self
                .translate_request_into(schema, &mut rec, request)
                .map_err(|e| e.at_request(i))?;
            outcomes.push(UpdateOutcome::new(
                kind,
                rec.ops_since(mark).to_vec(),
                steps,
            ));
        }
        if self.strict {
            let violations = check_overlay(schema, &rec)?;
            if !violations.is_empty() {
                let mut err = rollback_error(&violations);
                if let Some(i) = attribute_violation(&rec, &violations[0], &outcomes) {
                    err = err.at_request(i).with_kind(outcomes[i].request_kind);
                }
                return Err(err);
            }
            for outcome in &mut outcomes {
                outcome.steps.push(UpdateStep::GlobalCheck);
            }
        }
        let ops = rec.into_ops();
        let total_ops = ops.len();
        let stats = UpdateStats::from_ops(&ops);
        db.apply_all(&ops)
            .map_err(|e| UpdateError::new(UpdateStep::GlobalCheck, e))?;
        Ok(BatchOutcome {
            outcomes,
            total_ops,
            stats,
        })
    }

    /// Steps 1–4 of [`ViewObjectUpdater::apply_batch`] against a *pinned*
    /// base (an MVCC snapshot), without applying anything: translate the
    /// whole batch over one overlay, run the global check against the
    /// overlay for fail-fast feedback, and record what the translation
    /// depended on — the base version plus the relations read or written.
    /// The result commits later through
    /// [`ViewObjectUpdater::commit_prepared`] under first-committer-wins
    /// validation.
    ///
    /// The conflict set is captured *before* the fail-fast global check
    /// runs, so it covers exactly the relations the translators consulted
    /// — the check itself scans broadly and would otherwise inflate the
    /// set to the whole database. Soundness does not depend on the
    /// fail-fast check: `commit_prepared` re-validates structural
    /// consistency at the head.
    pub fn prepare_batch(
        &self,
        schema: &StructuralSchema,
        base: &Database,
        batch: impl Into<UpdateBatch>,
    ) -> UpdateResult<PreparedBatch> {
        let batch: UpdateBatch = batch.into();
        let mut rec = OpRecorder::over(base);
        let mut outcomes = Vec::with_capacity(batch.len());
        for (i, request) in batch.into_requests().into_iter().enumerate() {
            let kind = request.kind();
            let mark = rec.mark();
            let steps = self
                .translate_request_into(schema, &mut rec, request)
                .map_err(|e| e.at_request(i))?;
            outcomes.push(UpdateOutcome::new(
                kind,
                rec.ops_since(mark).to_vec(),
                steps,
            ));
        }
        let touched = rec.db.touched_relations();
        if self.strict {
            let violations = check_overlay(schema, &rec)?;
            if !violations.is_empty() {
                let mut err = rollback_error(&violations);
                if let Some(i) = attribute_violation(&rec, &violations[0], &outcomes) {
                    err = err.at_request(i).with_kind(outcomes[i].request_kind);
                }
                return Err(err);
            }
            for outcome in &mut outcomes {
                outcome.steps.push(UpdateStep::GlobalCheck);
            }
        }
        let ops = rec.into_ops();
        let stats = UpdateStats::from_ops(&ops);
        Ok(PreparedBatch {
            outcomes,
            ops,
            stats,
            base_version: base.version(),
            touched,
        })
    }

    /// Commit a [`PreparedBatch`] at the head under first-committer-wins
    /// validation. Fails with [`UpdateStep::Commit`] (carrying
    /// [`Error::Conflict`]) when any relation the preparation touched has
    /// changed since its base version — the caller re-prepares against a
    /// fresh snapshot and retries. On a clean validation the ops apply in
    /// one transaction; in strict mode the head must end structurally
    /// consistent (checked authoritatively here, serially, regardless of
    /// the fail-fast check at prepare time) or everything rolls back.
    pub fn commit_prepared(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        prepared: PreparedBatch,
    ) -> UpdateResult<BatchOutcome> {
        db.check_unchanged(
            prepared.touched.iter().map(String::as_str),
            prepared.base_version,
        )
        .map_err(|e| UpdateError::new(UpdateStep::Commit, e))?;
        let PreparedBatch {
            mut outcomes,
            ops,
            stats,
            ..
        } = prepared;
        if self.strict {
            db.apply_all_checked(&ops, |d| {
                let violations = check_database(schema, d)?;
                match violations.first() {
                    None => Ok(()),
                    Some(first) => Err(Error::ConstraintViolation(format!(
                        "{} structural violation(s), first: {first}",
                        violations.len()
                    ))),
                }
            })
            .map_err(|e| UpdateError::new(UpdateStep::GlobalCheck, e))?;
        } else {
            db.apply_all(&ops)
                .map_err(|e| UpdateError::new(UpdateStep::GlobalCheck, e))?;
        }
        for outcome in &mut outcomes {
            outcome.steps.push(UpdateStep::Commit);
        }
        Ok(BatchOutcome {
            total_ops: ops.len(),
            outcomes,
            stats,
        })
    }

    /// Translate a request into database operations without applying them.
    pub fn translate(
        &self,
        schema: &StructuralSchema,
        db: &Database,
        request: UpdateRequest,
    ) -> Result<Vec<DbOp>> {
        self.translate_request(schema, db, request)
            .map(|o| o.ops)
            .map_err(Error::from)
    }

    /// Translate and apply a request transactionally; in strict mode the
    /// whole op list rolls back unless the database ends structurally
    /// consistent.
    pub fn apply(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        request: UpdateRequest,
    ) -> Result<Vec<DbOp>> {
        self.apply_request(schema, db, request)
            .map(|o| o.ops)
            .map_err(Error::from)
    }

    /// Convenience: insert an instance.
    pub fn insert(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        instance: VoInstance,
    ) -> Result<Vec<DbOp>> {
        self.apply(schema, db, UpdateRequest::CompleteInsertion(instance))
    }

    /// Convenience: delete an instance.
    pub fn delete(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        instance: VoInstance,
    ) -> Result<Vec<DbOp>> {
        self.apply(schema, db, UpdateRequest::CompleteDeletion(instance))
    }

    /// Convenience: replace `old` with `new`.
    pub fn replace(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        old: VoInstance,
        new: VoInstance,
    ) -> Result<Vec<DbOp>> {
        self.apply(schema, db, UpdateRequest::Replacement { old, new })
    }
}

/// Step 4 — global validation over the overlay, *before* touching the
/// base. Returns any violations; an `Err` means the check itself could
/// not run.
fn check_overlay(schema: &StructuralSchema, rec: &OpRecorder<'_>) -> UpdateResult<Vec<Violation>> {
    check_database(schema, &rec.db).map_err(|e| UpdateError::new(UpdateStep::GlobalCheck, e))
}

/// Wrap violations as a rollback error (the legacy applied-then-check
/// path surfaced `Error::Rolledback`, and callers match on it).
fn rollback_error(violations: &[Violation]) -> UpdateError {
    UpdateError::new(
        UpdateStep::GlobalCheck,
        Error::Rolledback(Box::new(Error::ConstraintViolation(format!(
            "{} structural violation(s), first: {}",
            violations.len(),
            violations[0]
        )))),
    )
}

/// The `(relation, key)` a violation complains about.
fn violation_target(v: &Violation) -> (&str, &Key) {
    match v {
        Violation::OrphanOwned { relation, key, .. }
        | Violation::DanglingReference { relation, key, .. }
        | Violation::SubsetWithoutParent { relation, key, .. } => (relation, key),
    }
}

/// Find the last request whose ops touch the violation's tuple — "last"
/// because the most recent writer of a tuple is the request that left it
/// in its final (violating) state. `None` when the tuple pre-existed and
/// no request wrote it (e.g. a deletion elsewhere left it dangling).
fn attribute_violation(
    rec: &OpRecorder<'_>,
    violation: &Violation,
    outcomes: &[UpdateOutcome],
) -> Option<usize> {
    let (relation, key) = violation_target(violation);
    let rel_schema = rec.db.view(relation).ok()?.schema();
    let mut hit = None;
    for (i, outcome) in outcomes.iter().enumerate() {
        for op in &outcome.ops {
            if op.relation() != relation {
                continue;
            }
            let touches = match op {
                DbOp::Insert { tuple, .. } => &tuple.key(rel_schema) == key,
                DbOp::Replace { old_key, tuple, .. } => {
                    old_key == key || &tuple.key(rel_schema) == key
                }
                DbOp::Delete { key: k, .. } => k == key,
            };
            if touches {
                hit = Some(i);
            }
        }
    }
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::assemble;
    use crate::treegen::generate_omega;
    use crate::university::university_database;

    #[test]
    fn roundtrip_delete_then_reinsert_restores_database() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("EE282"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        let before = db.total_tuples();
        updater.delete(&schema, &mut db, inst.clone()).unwrap();
        assert!(db.total_tuples() < before);
        updater.insert(&schema, &mut db, inst).unwrap();
        assert_eq!(db.total_tuples(), before);
        assert!(check_database(&schema, &db).unwrap().is_empty());
    }

    #[test]
    fn replacement_equals_delete_plus_insert_for_disjoint_keys() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        let courses = db.table("COURSES").unwrap().schema().clone();

        // path A: replacement
        let mut db_a = db.clone();
        let old = assemble(
            &schema,
            &omega,
            &db_a,
            db_a.table("COURSES")
                .unwrap()
                .get(&Key::single("EE282"))
                .unwrap()
                .clone(),
        )
        .unwrap();
        let mut new = old.clone();
        new.root.tuple = new
            .root
            .tuple
            .with_named(&courses, "course_id", "EE500".into())
            .unwrap();
        updater
            .replace(&schema, &mut db_a, old.clone(), new.clone())
            .unwrap();

        // path B: delete then insert (with links propagated the same way)
        let mut db_b = db.clone();
        updater.delete(&schema, &mut db_b, old).unwrap();
        let fixed = crate::update::propagate::propagate_links(&schema, &omega, new).unwrap();
        updater.insert(&schema, &mut db_b, fixed).unwrap();

        for rel in db.relation_names() {
            let a: Vec<_> = db_a.table(rel).unwrap().scan().cloned().collect();
            let b: Vec<_> = db_b.table(rel).unwrap().scan().cloned().collect();
            assert_eq!(a, b, "relation {rel} differs between paths");
        }
    }

    #[test]
    fn strict_mode_rolls_back_inconsistent_outcomes() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let mut translator = Translator::permissive(&omega);
        // forbid the out-of-object repairs that would fix dependencies
        translator.allow_out_of_object_repairs = false;
        let updater = ViewObjectUpdater::new(&schema, omega.clone(), translator).unwrap();
        // build an instance whose new student has no PEOPLE row
        let courses = db.table("COURSES").unwrap().schema().clone();
        let grades = db.table("GRADES").unwrap().schema().clone();
        let student = db.table("STUDENT").unwrap().schema().clone();
        let gid = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "GRADES")
            .unwrap()
            .id;
        let sid = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "STUDENT")
            .unwrap()
            .id;
        let mut root = crate::instance::VoInstanceNode::leaf(
            0,
            Tuple::new(
                &courses,
                vec![
                    "CS700".into(),
                    "X".into(),
                    "graduate".into(),
                    "Computer Science".into(),
                ],
            )
            .unwrap(),
        );
        let mut g = crate::instance::VoInstanceNode::leaf(
            gid,
            Tuple::new(&grades, vec!["CS700".into(), 77.into(), "A".into()]).unwrap(),
        );
        g.push_child(crate::instance::VoInstanceNode::leaf(
            sid,
            Tuple::new(&student, vec![77.into(), "MS".into()]).unwrap(),
        ));
        root.push_child(g);
        let inst = crate::instance::VoInstance {
            object: omega.name().to_owned(),
            root,
        };
        let before = db.total_tuples();
        let err = updater.insert(&schema, &mut db, inst).unwrap_err();
        assert!(err.to_string().contains("not permitted") || matches!(err, Error::Rolledback(_)));
        assert_eq!(db.total_tuples(), before);
    }

    #[test]
    fn translate_does_not_mutate() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        let before = db.total_tuples();
        let ops = updater
            .translate(&schema, &db, UpdateRequest::CompleteDeletion(inst))
            .unwrap();
        assert!(!ops.is_empty());
        assert_eq!(db.total_tuples(), before);
    }

    #[test]
    fn apply_request_reports_steps_and_stats() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("EE282"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        let outcome = updater
            .apply_request(&schema, &mut db, UpdateRequest::CompleteDeletion(inst))
            .unwrap();
        assert_eq!(outcome.request_kind, "complete-deletion");
        assert_eq!(
            outcome.steps,
            vec![
                UpdateStep::Validate,
                UpdateStep::Translate,
                UpdateStep::GlobalCheck
            ]
        );
        assert_eq!(outcome.stats.total(), outcome.ops.len());
        assert!(outcome.stats.deletes > 0);
        assert_eq!(outcome.stats.inserts, 0);
    }

    #[test]
    fn batch_translates_over_one_overlay_and_applies_once() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        let cs345 = assemble(
            &schema,
            &omega,
            &db,
            db.table("COURSES")
                .unwrap()
                .get(&Key::single("CS345"))
                .unwrap()
                .clone(),
        )
        .unwrap();
        let ee282 = assemble(
            &schema,
            &omega,
            &db,
            db.table("COURSES")
                .unwrap()
                .get(&Key::single("EE282"))
                .unwrap()
                .clone(),
        )
        .unwrap();
        // delete both, then re-insert one — all in a single transaction
        let batch = UpdateBatch::new()
            .delete(cs345)
            .delete(ee282.clone())
            .insert(ee282);
        let outcome = updater.apply_batch(&schema, &mut db, batch).unwrap();
        assert_eq!(outcome.len(), 3);
        assert_eq!(outcome.total_ops, outcome.all_ops().count());
        assert!(check_database(&schema, &db).unwrap().is_empty());
        assert!(!db
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("CS345")));
        assert!(db
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("EE282")));
    }

    #[test]
    fn batch_failure_leaves_database_untouched_and_names_the_request() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        let ee282 = assemble(
            &schema,
            &omega,
            &db,
            db.table("COURSES")
                .unwrap()
                .get(&Key::single("EE282"))
                .unwrap()
                .clone(),
        )
        .unwrap();
        let snapshot = db.clone();
        // request #1 re-inserts an instance that still exists → translate
        // fails with a key conflict attributed to that request
        let batch = UpdateBatch::new()
            .delete(ee282.clone())
            .insert(ee282.clone())
            .insert(ee282);
        let err = updater.apply_batch(&schema, &mut db, batch).unwrap_err();
        assert_eq!(err.step, UpdateStep::Translate);
        assert_eq!(err.request_index, Some(2));
        assert_eq!(err.request_kind, Some("complete-insertion"));
        for rel in snapshot.relation_names() {
            let before: Vec<_> = snapshot.table(rel).unwrap().scan().cloned().collect();
            let after: Vec<_> = db.table(rel).unwrap().scan().cloned().collect();
            assert_eq!(before, after, "relation {rel} changed despite rollback");
        }
    }

    #[test]
    fn batch_sees_earlier_requests_through_the_overlay() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        let ee282 = assemble(
            &schema,
            &omega,
            &db,
            db.table("COURSES")
                .unwrap()
                .get(&Key::single("EE282"))
                .unwrap()
                .clone(),
        )
        .unwrap();
        // delete-then-reinsert of the same instance only works if the
        // insertion sees the deletion through the shared overlay
        let before = db.total_tuples();
        let batch = UpdateBatch::new().delete(ee282.clone()).insert(ee282);
        updater.apply_batch(&schema, &mut db, batch).unwrap();
        assert_eq!(db.total_tuples(), before);
        assert!(check_database(&schema, &db).unwrap().is_empty());
    }

    #[test]
    fn stats_tally_ops() {
        let (_, db) = university_database();
        let dept = db.table("DEPARTMENT").unwrap().schema().clone();
        let ops = vec![
            DbOp::Insert {
                relation: "DEPARTMENT".into(),
                tuple: Tuple::new(&dept, vec!["Math".into()]).unwrap(),
            },
            DbOp::Delete {
                relation: "COURSES".into(),
                key: Key::single("CS345"),
            },
        ];
        let stats = UpdateStats::from_ops(&ops);
        assert_eq!(stats.inserts, 1);
        assert_eq!(stats.deletes, 1);
        assert_eq!(stats.replaces, 0);
        assert_eq!(stats.relations_touched, 2);
        assert_eq!(stats.total(), 2);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        let before = db.total_tuples();
        let outcome = updater
            .apply_batch(&schema, &mut db, UpdateBatch::new())
            .unwrap();
        assert!(outcome.is_empty());
        assert_eq!(outcome.total_ops, 0);
        assert_eq!(db.total_tuples(), before);
    }
}
