//! The end-to-end update pipeline: steps 1–3 produce an operation list,
//! step 4 applies it transactionally under the structural consistency
//! check, rolling back on any violation.

use crate::instance::VoInstance;
use crate::island::{analyze, IslandAnalysis};
use crate::object::ViewObject;
use crate::translator::Translator;
use crate::update::delete::translate_complete_deletion;
use crate::update::insert::translate_complete_insertion;
use crate::update::replace::translate_replacement;
use crate::update::UpdateRequest;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// Bundles a view object with its island analysis and translator; the
/// analysis is computed once at construction (the paper chooses the
/// translator at view-object generation time for the same reason: all the
/// expensive reasoning happens once, every update reuses it).
#[derive(Debug, Clone)]
pub struct ViewObjectUpdater {
    object: ViewObject,
    analysis: IslandAnalysis,
    translator: Translator,
    /// When true (the default), every applied update re-verifies the full
    /// structural consistency of the database and rolls back on violation.
    pub strict: bool,
}

impl ViewObjectUpdater {
    /// Build an updater; computes the island analysis.
    pub fn new(
        schema: &StructuralSchema,
        object: ViewObject,
        translator: Translator,
    ) -> Result<Self> {
        let analysis = analyze(schema, &object)?;
        Ok(ViewObjectUpdater {
            object,
            analysis,
            translator,
            strict: true,
        })
    }

    /// The object.
    pub fn object(&self) -> &ViewObject {
        &self.object
    }

    /// The island analysis.
    pub fn analysis(&self) -> &IslandAnalysis {
        &self.analysis
    }

    /// The translator.
    pub fn translator(&self) -> &Translator {
        &self.translator
    }

    /// Translate a request into database operations without applying them.
    pub fn translate(
        &self,
        schema: &StructuralSchema,
        db: &Database,
        request: UpdateRequest,
    ) -> Result<Vec<DbOp>> {
        let mut sp = vo_obs::trace::span("penguin.translate");
        if sp.is_recording() {
            sp.field("object", Json::str(self.object.name()));
            sp.field("kind", Json::str(request.kind()));
            sp.field(
                "island_relations",
                Json::Int(self.analysis.island_relations.len() as i64),
            );
            sp.field(
                "peninsulas",
                Json::Int(self.analysis.peninsulas.len() as i64),
            );
        }
        let ops = self.translate_inner(schema, db, request)?;
        if sp.is_recording() {
            sp.field("ops", Json::Int(ops.len() as i64));
        }
        Ok(ops)
    }

    fn translate_inner(
        &self,
        schema: &StructuralSchema,
        db: &Database,
        request: UpdateRequest,
    ) -> Result<Vec<DbOp>> {
        match request {
            UpdateRequest::CompleteInsertion(inst) => translate_complete_insertion(
                schema,
                &self.object,
                &self.analysis,
                &self.translator,
                db,
                &inst,
            ),
            UpdateRequest::CompleteDeletion(inst) => translate_complete_deletion(
                schema,
                &self.object,
                &self.analysis,
                &self.translator,
                db,
                &inst,
            ),
            UpdateRequest::Replacement { old, new } => translate_replacement(
                schema,
                &self.object,
                &self.analysis,
                &self.translator,
                db,
                &old,
                new,
            ),
        }
    }

    /// Translate and apply a request transactionally; in strict mode the
    /// whole batch rolls back unless the database ends structurally
    /// consistent.
    pub fn apply(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        request: UpdateRequest,
    ) -> Result<Vec<DbOp>> {
        let ops = self.translate(schema, db, request)?;
        if self.strict {
            db.apply_all_checked(&ops, consistency_check(schema))?;
        } else {
            db.apply_all(&ops)?;
        }
        Ok(ops)
    }

    /// Convenience: insert an instance.
    pub fn insert(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        instance: VoInstance,
    ) -> Result<Vec<DbOp>> {
        self.apply(schema, db, UpdateRequest::CompleteInsertion(instance))
    }

    /// Convenience: delete an instance.
    pub fn delete(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        instance: VoInstance,
    ) -> Result<Vec<DbOp>> {
        self.apply(schema, db, UpdateRequest::CompleteDeletion(instance))
    }

    /// Convenience: replace `old` with `new`.
    pub fn replace(
        &self,
        schema: &StructuralSchema,
        db: &mut Database,
        old: VoInstance,
        new: VoInstance,
    ) -> Result<Vec<DbOp>> {
        self.apply(schema, db, UpdateRequest::Replacement { old, new })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::assemble;
    use crate::treegen::generate_omega;
    use crate::university::university_database;

    #[test]
    fn roundtrip_delete_then_reinsert_restores_database() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("EE282"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        let before = db.total_tuples();
        updater.delete(&schema, &mut db, inst.clone()).unwrap();
        assert!(db.total_tuples() < before);
        updater.insert(&schema, &mut db, inst).unwrap();
        assert_eq!(db.total_tuples(), before);
        assert!(check_database(&schema, &db).unwrap().is_empty());
    }

    #[test]
    fn replacement_equals_delete_plus_insert_for_disjoint_keys() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        let courses = db.table("COURSES").unwrap().schema().clone();

        // path A: replacement
        let mut db_a = db.clone();
        let old = assemble(
            &schema,
            &omega,
            &db_a,
            db_a.table("COURSES")
                .unwrap()
                .get(&Key::single("EE282"))
                .unwrap()
                .clone(),
        )
        .unwrap();
        let mut new = old.clone();
        new.root.tuple = new
            .root
            .tuple
            .with_named(&courses, "course_id", "EE500".into())
            .unwrap();
        updater
            .replace(&schema, &mut db_a, old.clone(), new.clone())
            .unwrap();

        // path B: delete then insert (with links propagated the same way)
        let mut db_b = db.clone();
        updater.delete(&schema, &mut db_b, old).unwrap();
        let fixed = crate::update::propagate::propagate_links(&schema, &omega, new).unwrap();
        updater.insert(&schema, &mut db_b, fixed).unwrap();

        for rel in db.relation_names() {
            let a: Vec<_> = db_a.table(rel).unwrap().scan().cloned().collect();
            let b: Vec<_> = db_b.table(rel).unwrap().scan().cloned().collect();
            assert_eq!(a, b, "relation {rel} differs between paths");
        }
    }

    #[test]
    fn strict_mode_rolls_back_inconsistent_outcomes() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let mut translator = Translator::permissive(&omega);
        // forbid the out-of-object repairs that would fix dependencies
        translator.allow_out_of_object_repairs = false;
        let updater = ViewObjectUpdater::new(&schema, omega.clone(), translator).unwrap();
        // build an instance whose new student has no PEOPLE row
        let courses = db.table("COURSES").unwrap().schema().clone();
        let grades = db.table("GRADES").unwrap().schema().clone();
        let student = db.table("STUDENT").unwrap().schema().clone();
        let gid = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "GRADES")
            .unwrap()
            .id;
        let sid = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "STUDENT")
            .unwrap()
            .id;
        let mut root = crate::instance::VoInstanceNode::leaf(
            0,
            Tuple::new(
                &courses,
                vec![
                    "CS700".into(),
                    "X".into(),
                    "graduate".into(),
                    "Computer Science".into(),
                ],
            )
            .unwrap(),
        );
        let mut g = crate::instance::VoInstanceNode::leaf(
            gid,
            Tuple::new(&grades, vec!["CS700".into(), 77.into(), "A".into()]).unwrap(),
        );
        g.push_child(crate::instance::VoInstanceNode::leaf(
            sid,
            Tuple::new(&student, vec![77.into(), "MS".into()]).unwrap(),
        ));
        root.push_child(g);
        let inst = crate::instance::VoInstance {
            object: omega.name().to_owned(),
            root,
        };
        let before = db.total_tuples();
        let err = updater.insert(&schema, &mut db, inst).unwrap_err();
        assert!(err.to_string().contains("not permitted") || matches!(err, Error::Rolledback(_)));
        assert_eq!(db.total_tuples(), before);
    }

    #[test]
    fn translate_does_not_mutate() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let updater =
            ViewObjectUpdater::new(&schema, omega.clone(), Translator::permissive(&omega)).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        let before = db.total_tuples();
        let ops = updater
            .translate(&schema, &db, UpdateRequest::CompleteDeletion(inst))
            .unwrap();
        assert!(!ops.is_empty());
        assert_eq!(db.total_tuples(), before);
    }
}
