//! Update translation (paper §5).
//!
//! A view-object update proceeds through the paper's four logical steps:
//!
//! 1. **Local validation** against the object definition and translator
//!    ([`validate`]).
//! 2. **Propagation within the view object** — hierarchical consistency of
//!    the new instance ([`propagate`]).
//! 3. **Translation into database operations** — algorithms VO-CI
//!    ([`insert`]), VO-CD ([`delete`]) and VO-R ([`replace`]).
//! 4. **Global validation against the structural model** — dependency
//!    completion and the final consistency check, performed by the
//!    pipeline ([`pipeline`]).
//!
//! All translators are pure: they take a database *snapshot* and return the
//! [`DbOp`] list that implements the request; the pipeline applies the ops
//! transactionally so a failed global check rolls everything back.

pub mod delete;
pub mod insert;
pub mod partial;
pub mod pipeline;
pub mod propagate;
pub mod replace;
pub mod validate;

use crate::instance::VoInstance;
use vo_relational::prelude::*;

/// A complete update request on a view object (paper §5's *complete
/// update*: insertion, deletion, or replacement). Partial updates live in
/// [`partial`].
#[derive(Debug, Clone)]
pub enum UpdateRequest {
    /// Add a fully specified instance to the database.
    CompleteInsertion(VoInstance),
    /// Remove a fully specified instance from the database.
    CompleteDeletion(VoInstance),
    /// Replace an instance with its fully specified replacing instance.
    Replacement {
        /// The instance as currently stored.
        old: VoInstance,
        /// The replacing instance.
        new: VoInstance,
    },
}

impl UpdateRequest {
    /// Short label for logs and experiments.
    pub fn kind(&self) -> &'static str {
        match self {
            UpdateRequest::CompleteInsertion(_) => "complete-insertion",
            UpdateRequest::CompleteDeletion(_) => "complete-deletion",
            UpdateRequest::Replacement { .. } => "replacement",
        }
    }
}

/// A scratch database plus the operation log replayed onto it. Translators
/// work against the recorder so every decision sees the effects of the ops
/// already planned, and the final log is the translation.
#[derive(Debug)]
pub struct OpRecorder {
    /// Scratch copy of the database.
    pub db: Database,
    /// Operations planned so far, in application order.
    pub ops: Vec<DbOp>,
}

impl OpRecorder {
    /// Start from a snapshot.
    pub fn new(db: &Database) -> Self {
        OpRecorder {
            db: db.clone(),
            ops: Vec::new(),
        }
    }

    /// Plan one op (applying it to the scratch database).
    pub fn apply(&mut self, op: DbOp) -> Result<()> {
        self.db.apply(&op)?;
        self.ops.push(op);
        Ok(())
    }

    /// Plan a batch.
    pub fn apply_all(&mut self, ops: Vec<DbOp>) -> Result<()> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Finish, yielding the operation list.
    pub fn into_ops(self) -> Vec<DbOp> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::university::university_database;

    #[test]
    fn recorder_tracks_and_applies() {
        let (_, db) = university_database();
        let mut rec = OpRecorder::new(&db);
        let dept = db.table("DEPARTMENT").unwrap().schema().clone();
        rec.apply(DbOp::Insert {
            relation: "DEPARTMENT".into(),
            tuple: Tuple::new(&dept, vec!["Math".into()]).unwrap(),
        })
        .unwrap();
        assert_eq!(rec.db.table("DEPARTMENT").unwrap().len(), 3);
        assert_eq!(rec.ops.len(), 1);
        // the original is untouched
        assert_eq!(db.table("DEPARTMENT").unwrap().len(), 2);
        let ops = rec.into_ops();
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn recorder_rejects_bad_op() {
        let (_, db) = university_database();
        let mut rec = OpRecorder::new(&db);
        let err = rec.apply(DbOp::Delete {
            relation: "DEPARTMENT".into(),
            key: Key::single("Nope"),
        });
        assert!(err.is_err());
        assert!(rec.ops.is_empty());
    }

    #[test]
    fn request_kinds() {
        let (schema, db) = university_database();
        let omega = crate::treegen::generate_omega(&schema).unwrap();
        let inst = crate::instance::instantiate_all(&schema, &omega, &db)
            .unwrap()
            .remove(0);
        assert_eq!(
            UpdateRequest::CompleteInsertion(inst.clone()).kind(),
            "complete-insertion"
        );
        assert_eq!(
            UpdateRequest::CompleteDeletion(inst.clone()).kind(),
            "complete-deletion"
        );
        assert_eq!(
            UpdateRequest::Replacement {
                old: inst.clone(),
                new: inst
            }
            .kind(),
            "replacement"
        );
    }
}
