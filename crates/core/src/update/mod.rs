//! Update translation (paper §5).
//!
//! A view-object update proceeds through the paper's four logical steps:
//!
//! 1. **Local validation** against the object definition and translator
//!    ([`validate`]).
//! 2. **Propagation within the view object** — hierarchical consistency of
//!    the new instance ([`propagate`]).
//! 3. **Translation into database operations** — algorithms VO-CI
//!    ([`insert`]), VO-CD ([`delete`]) and VO-R ([`replace`]).
//! 4. **Global validation against the structural model** — dependency
//!    completion and the final consistency check, performed by the
//!    pipeline ([`pipeline`]).
//!
//! All translators are pure: they read the database through a
//! [`DeltaDb`] overlay and return the [`DbOp`] list that implements the
//! request; the pipeline applies the ops transactionally so a failed
//! global check rolls everything back.
//!
//! **The no-clone contract.** [`OpRecorder`] never copies a base table:
//! it owns a [`DeltaDb`] — an O(1)-construction read view layering the
//! planned ops over a *borrowed* `&Database` — so translating a request
//! costs only the delta it plans, not a full database snapshot. A batch
//! of requests shares one recorder (and therefore one overlay), which is
//! what makes set-at-a-time update translation cheap; the
//! `translate.overlay_created` / `translate.snapshot_avoided` counters
//! verify the contract at run time.

pub mod delete;
pub mod error;
pub mod insert;
pub mod partial;
pub mod pipeline;
pub mod propagate;
pub mod replace;
pub mod validate;

use crate::instance::VoInstance;
use vo_relational::overlay::DeltaDb;
use vo_relational::prelude::*;

/// A complete update request on a view object (paper §5's *complete
/// update*: insertion, deletion, or replacement). Partial updates live in
/// [`partial`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateRequest {
    /// Add a fully specified instance to the database.
    CompleteInsertion(VoInstance),
    /// Remove a fully specified instance from the database.
    CompleteDeletion(VoInstance),
    /// Replace an instance with its fully specified replacing instance.
    Replacement {
        /// The instance as currently stored.
        old: VoInstance,
        /// The replacing instance.
        new: VoInstance,
    },
}

impl UpdateRequest {
    /// Short label for logs and experiments.
    pub fn kind(&self) -> &'static str {
        match self {
            UpdateRequest::CompleteInsertion(_) => "complete-insertion",
            UpdateRequest::CompleteDeletion(_) => "complete-deletion",
            UpdateRequest::Replacement { .. } => "replacement",
        }
    }
}

/// A delta overlay plus the operation log replayed onto it. Translators
/// work against the recorder so every decision sees the effects of the ops
/// already planned, and the final log is the translation. The overlay
/// borrows the base database — nothing is cloned (see the module docs for
/// the no-clone contract).
#[derive(Debug)]
pub struct OpRecorder<'base> {
    /// Read view: base database shadowed by the ops planned so far.
    pub db: DeltaDb<'base>,
    /// Operations planned so far, in application order.
    pub ops: Vec<DbOp>,
}

impl<'base> OpRecorder<'base> {
    /// Start from an existing overlay (which may already carry planned
    /// ops from earlier requests of the same batch).
    pub fn new(overlay: DeltaDb<'base>) -> Self {
        OpRecorder {
            db: overlay,
            ops: Vec::new(),
        }
    }

    /// Start with a fresh overlay over `db`.
    pub fn over(db: &'base Database) -> Self {
        Self::new(DeltaDb::new(db))
    }

    /// Plan one op (applying it to the overlay).
    pub fn apply(&mut self, op: DbOp) -> Result<()> {
        self.db.apply(&op)?;
        self.ops.push(op);
        Ok(())
    }

    /// Plan a batch of ops.
    pub fn apply_all(&mut self, ops: impl IntoIterator<Item = DbOp>) -> Result<()> {
        for op in ops {
            self.apply(op)?;
        }
        Ok(())
    }

    /// Position marker into the op log; pair with [`OpRecorder::ops_since`]
    /// to attribute a batch's ops to individual requests.
    pub fn mark(&self) -> usize {
        self.ops.len()
    }

    /// Ops planned since `mark`.
    pub fn ops_since(&self, mark: usize) -> &[DbOp] {
        &self.ops[mark..]
    }

    /// Finish, yielding the operation list.
    pub fn into_ops(self) -> Vec<DbOp> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::university::university_database;

    #[test]
    fn recorder_tracks_and_applies() {
        let (_, db) = university_database();
        let mut rec = OpRecorder::over(&db);
        let dept = db.table("DEPARTMENT").unwrap().schema().clone();
        rec.apply(DbOp::Insert {
            relation: "DEPARTMENT".into(),
            tuple: Tuple::new(&dept, vec!["Math".into()]).unwrap(),
        })
        .unwrap();
        assert_eq!(rec.db.view("DEPARTMENT").unwrap().len(), 3);
        assert_eq!(rec.ops.len(), 1);
        // the original is untouched
        assert_eq!(db.table("DEPARTMENT").unwrap().len(), 2);
        let ops = rec.into_ops();
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn recorder_rejects_bad_op() {
        let (_, db) = university_database();
        let mut rec = OpRecorder::over(&db);
        let err = rec.apply(DbOp::Delete {
            relation: "DEPARTMENT".into(),
            key: Key::single("Nope"),
        });
        assert!(err.is_err());
        assert!(rec.ops.is_empty());
    }

    #[test]
    fn recorder_marks_attribute_ops_to_requests() {
        let (_, db) = university_database();
        let mut rec = OpRecorder::over(&db);
        let dept = db.table("DEPARTMENT").unwrap().schema().clone();
        let m0 = rec.mark();
        rec.apply(DbOp::Insert {
            relation: "DEPARTMENT".into(),
            tuple: Tuple::new(&dept, vec!["Math".into()]).unwrap(),
        })
        .unwrap();
        let m1 = rec.mark();
        rec.apply_all(vec![DbOp::Insert {
            relation: "DEPARTMENT".into(),
            tuple: Tuple::new(&dept, vec!["Physics".into()]).unwrap(),
        }])
        .unwrap();
        assert_eq!(rec.ops_since(m0).len(), 2);
        assert_eq!(rec.ops_since(m1).len(), 1);
        assert_eq!(rec.ops_since(m1)[0].relation(), "DEPARTMENT");
    }

    #[test]
    fn request_kinds() {
        let (schema, db) = university_database();
        let omega = crate::treegen::generate_omega(&schema).unwrap();
        let inst = crate::instance::instantiate_all(&schema, &omega, &db)
            .unwrap()
            .remove(0);
        assert_eq!(
            UpdateRequest::CompleteInsertion(inst.clone()).kind(),
            "complete-insertion"
        );
        assert_eq!(
            UpdateRequest::CompleteDeletion(inst.clone()).kind(),
            "complete-deletion"
        );
        assert_eq!(
            UpdateRequest::Replacement {
                old: inst.clone(),
                new: inst
            }
            .kind(),
            "replacement"
        );
    }
}
