//! Typed pipeline errors: which step failed, on which request, and — when
//! determinable — the offending tuple.
//!
//! The update pipeline (paper §5) has four logical steps; [`UpdateError`]
//! names the one that failed so callers can distinguish a malformed
//! instance (validate), a hierarchically inconsistent replacement
//! (propagate), a translator veto or stale tuple (translate), and a
//! structural-consistency rollback (global-check). Persistent systems add
//! a fifth step (persist) for failures writing the committed translation
//! to durable storage. The underlying
//! [`Error`] is preserved unchanged in [`UpdateError::source`]; converting
//! an `UpdateError` back into [`Error`] (the `From` impl) simply unwraps
//! it, so existing variant matching (`Error::Rolledback`, `NoSuchTuple`,
//! …) keeps working across the facade boundary.

use vo_relational::prelude::*;

/// One of the four pipeline steps of paper §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateStep {
    /// Step 1 — local validation against the object definition.
    Validate,
    /// Step 2 — propagation within the view object.
    Propagate,
    /// Step 3 — translation into database operations.
    Translate,
    /// Step 4 — global validation against the structural model.
    GlobalCheck,
    /// Step 5 — durably recording the committed translation (only present
    /// on persistent systems; see `vo-store`). The database update itself
    /// succeeded; the failure is in the write-ahead log or checkpoint.
    Persist,
    /// Step 6 — first-committer-wins validation of a batch prepared
    /// against a pinned snapshot (MVCC sessions): every relation the
    /// translation read or wrote must be unchanged at the head, or the
    /// commit is rejected with [`Error::Conflict`] and must be retried.
    Commit,
}

impl UpdateStep {
    /// Short label for logs and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            UpdateStep::Validate => "validate",
            UpdateStep::Propagate => "propagate",
            UpdateStep::Translate => "translate",
            UpdateStep::GlobalCheck => "global-check",
            UpdateStep::Persist => "persist",
            UpdateStep::Commit => "commit",
        }
    }
}

impl std::fmt::Display for UpdateStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A pipeline failure: the failing step, the request it belongs to (kind
/// and — in a batch — index), and the underlying error.
#[derive(Debug)]
pub struct UpdateError {
    /// The pipeline step that failed.
    pub step: UpdateStep,
    /// Kind label of the failing request (`"complete-insertion"`, …).
    pub request_kind: Option<&'static str>,
    /// Index of the failing request within a batch.
    pub request_index: Option<usize>,
    /// The underlying error, unchanged (boxed to keep `UpdateResult`'s
    /// error arm small).
    pub source: Box<Error>,
}

impl UpdateError {
    /// Wrap `source` as a failure of `step`.
    pub fn new(step: UpdateStep, source: Error) -> Self {
        UpdateError {
            step,
            request_kind: None,
            request_index: None,
            source: Box::new(source),
        }
    }

    /// Attach the request-kind label.
    pub fn with_kind(mut self, kind: &'static str) -> Self {
        self.request_kind = Some(kind);
        self
    }

    /// Attach the batch position of the failing request.
    pub fn at_request(mut self, index: usize) -> Self {
        self.request_index = Some(index);
        self
    }

    /// The offending `(relation, key)` when the underlying error names a
    /// tuple, digging through rollback wrappers.
    pub fn offending_tuple(&self) -> Option<(&str, &str)> {
        fn dig(e: &Error) -> Option<(&str, &str)> {
            match e {
                Error::KeyConflict { relation, key } | Error::NoSuchTuple { relation, key } => {
                    Some((relation.as_str(), key.as_str()))
                }
                Error::Rolledback(inner) => dig(inner),
                _ => None,
            }
        }
        dig(&self.source)
    }
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "update failed at step {}", self.step)?;
        if let Some(kind) = self.request_kind {
            write!(f, " ({kind}")?;
            if let Some(i) = self.request_index {
                write!(f, ", request #{i}")?;
            }
            write!(f, ")")?;
        } else if let Some(i) = self.request_index {
            write!(f, " (request #{i})")?;
        }
        write!(f, ": {}", self.source)
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(self.source.as_ref())
    }
}

impl From<UpdateError> for Error {
    /// Unwrap back to the underlying relational error. The step/request
    /// attribution is dropped — callers that need it must keep the
    /// [`UpdateError`]; callers matching on [`Error`] variants see exactly
    /// what the pre-outcome API surfaced.
    fn from(e: UpdateError) -> Error {
        *e.source
    }
}

/// Result alias for the outcome-returning update API.
pub type UpdateResult<T> = std::result::Result<T, UpdateError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_step_kind_and_index() {
        let e = UpdateError::new(
            UpdateStep::Translate,
            Error::ConstraintViolation("nope".into()),
        )
        .with_kind("complete-insertion")
        .at_request(3);
        let s = e.to_string();
        assert!(s.contains("translate"));
        assert!(s.contains("complete-insertion"));
        assert!(s.contains("request #3"));
        assert!(s.contains("nope"));
    }

    #[test]
    fn offending_tuple_digs_through_rollback() {
        let e = UpdateError::new(
            UpdateStep::GlobalCheck,
            Error::Rolledback(Box::new(Error::KeyConflict {
                relation: "COURSES".into(),
                key: "(CS345)".into(),
            })),
        );
        assert_eq!(e.offending_tuple(), Some(("COURSES", "(CS345)")));
        let none = UpdateError::new(UpdateStep::Validate, Error::ConstraintViolation("x".into()));
        assert_eq!(none.offending_tuple(), None);
    }

    #[test]
    fn from_preserves_the_source_variant() {
        let e = UpdateError::new(
            UpdateStep::GlobalCheck,
            Error::Rolledback(Box::new(Error::ConstraintViolation("v".into()))),
        );
        let back: Error = e.into();
        assert!(matches!(back, Error::Rolledback(_)));
    }

    #[test]
    fn step_labels() {
        assert_eq!(UpdateStep::Validate.label(), "validate");
        assert_eq!(UpdateStep::Propagate.label(), "propagate");
        assert_eq!(UpdateStep::Translate.label(), "translate");
        assert_eq!(UpdateStep::GlobalCheck.to_string(), "global-check");
        assert_eq!(UpdateStep::Persist.label(), "persist");
        assert_eq!(UpdateStep::Commit.label(), "commit");
    }
}
