//! Update translators (paper §6).
//!
//! A translator is the *data* produced by the definition-time dialog: a
//! per-relation permission matrix plus object-wide switches. Once chosen,
//! it drives every update translation on the object without further DBA
//! interaction — "the effort of answering the series of questions once
//! during view-definition time is amortized over all the times that
//! updates against the view are subsequently requested".

use crate::island::IslandAnalysis;
use crate::object::ViewObject;
use std::collections::BTreeMap;
use vo_structural::prelude::*;

/// Per-relation permissions consulted during translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationPolicy {
    /// May new tuples be inserted during insertions/replacements?
    pub allow_insert: bool,
    /// May existing tuples be modified during insertions/replacements?
    pub allow_modify: bool,
    /// (Island relations) may the key of an instance tuple be modified
    /// during replacements?
    pub allow_key_replacement: bool,
    /// (Island relations) may the key of the corresponding *database*
    /// tuple be replaced?
    pub allow_db_key_replace: bool,
    /// (Island relations) may the system delete the old database tuple and
    /// adopt an existing tuple with the matching new key?
    pub allow_delete_adopt: bool,
}

impl RelationPolicy {
    /// Everything allowed.
    pub fn permissive() -> Self {
        RelationPolicy {
            allow_insert: true,
            allow_modify: true,
            allow_key_replacement: true,
            allow_db_key_replace: true,
            allow_delete_adopt: true,
        }
    }

    /// Nothing allowed.
    pub fn restrictive() -> Self {
        RelationPolicy {
            allow_insert: false,
            allow_modify: false,
            allow_key_replacement: false,
            allow_db_key_replace: false,
            allow_delete_adopt: false,
        }
    }
}

impl Default for RelationPolicy {
    fn default() -> Self {
        Self::restrictive()
    }
}

/// What VO-CD may do to a referencing peninsula's tuples (paper §5.1's
/// "perform a replacement on the foreign key of each matching tuple", or
/// the deletion alternative reference rule 2 offers, or nothing — in which
/// case "the transaction cannot be completed and has to be rolled back").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeninsulaAction {
    /// Replace the foreign key with NULL (impossible when the foreign key
    /// is part of the peninsula's key — then deletion fails).
    NullifyForeignKey,
    /// Delete the referencing tuples.
    #[default]
    DeleteReferencing,
    /// Reject deletions that have referencing tuples.
    Reject,
}

/// A complete update translator for one view object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Translator {
    /// Name of the object this translator belongs to.
    pub object: String,
    /// Are complete insertions allowed at all?
    pub allow_insertion: bool,
    /// Are complete deletions allowed at all?
    pub allow_deletion: bool,
    /// Are replacements allowed at all?
    pub allow_replacement: bool,
    /// Per-relation permissions (relations of the object).
    pub relation_policies: BTreeMap<String, RelationPolicy>,
    /// Per-peninsula deletion behaviour, keyed by relation name.
    pub peninsula_actions: BTreeMap<String, PeninsulaAction>,
    /// May global integrity maintenance insert missing tuples into
    /// relations *outside* the object?
    pub allow_out_of_object_repairs: bool,
    /// Default action for out-of-object referencing tuples when a
    /// referenced tuple is deleted.
    pub out_of_object_delete: OutDeleteAction,
    /// Default action for out-of-object referencing tuples when a
    /// referenced key is modified.
    pub out_of_object_modify: OutModifyAction,
}

/// Serializable mirror of [`RefDeleteAction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutDeleteAction {
    /// Reject.
    Restrict,
    /// Delete referencing tuples.
    #[default]
    Cascade,
    /// NULL the referencing attributes.
    Nullify,
}

/// Serializable mirror of [`RefModifyAction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutModifyAction {
    /// Rewrite referencing attributes to the new key.
    #[default]
    Propagate,
    /// NULL the referencing attributes.
    Nullify,
    /// Delete referencing tuples.
    Cascade,
}

impl Translator {
    /// A translator permitting everything (the paper's first dialog, with
    /// delete-adopt answered NO to match the transcript, uses
    /// `crate::dialog::paper_dialog_responder` instead).
    pub fn permissive(object: &ViewObject) -> Self {
        let mut relation_policies = BTreeMap::new();
        for rel in object.relations() {
            relation_policies.insert(rel.to_owned(), RelationPolicy::permissive());
        }
        Translator {
            object: object.name().to_owned(),
            allow_insertion: true,
            allow_deletion: true,
            allow_replacement: true,
            relation_policies,
            peninsula_actions: BTreeMap::new(),
            allow_out_of_object_repairs: true,
            out_of_object_delete: OutDeleteAction::Cascade,
            out_of_object_modify: OutModifyAction::Propagate,
        }
    }

    /// A translator forbidding every update.
    pub fn restrictive(object: &ViewObject) -> Self {
        let mut relation_policies = BTreeMap::new();
        for rel in object.relations() {
            relation_policies.insert(rel.to_owned(), RelationPolicy::restrictive());
        }
        Translator {
            object: object.name().to_owned(),
            allow_insertion: false,
            allow_deletion: false,
            allow_replacement: false,
            relation_policies,
            peninsula_actions: BTreeMap::new(),
            allow_out_of_object_repairs: false,
            out_of_object_delete: OutDeleteAction::Restrict,
            out_of_object_modify: OutModifyAction::Propagate,
        }
    }

    /// Permission set for one relation (restrictive when unknown).
    pub fn policy(&self, relation: &str) -> RelationPolicy {
        self.relation_policies
            .get(relation)
            .copied()
            .unwrap_or_else(RelationPolicy::restrictive)
    }

    /// Set one relation's policy.
    pub fn set_policy(&mut self, relation: &str, policy: RelationPolicy) {
        self.relation_policies.insert(relation.to_owned(), policy);
    }

    /// The peninsula action for a relation (defaults to delete-referencing,
    /// the only repair that always type-checks).
    pub fn peninsula_action(&self, relation: &str) -> PeninsulaAction {
        self.peninsula_actions
            .get(relation)
            .copied()
            .unwrap_or_default()
    }

    /// True when global repair may insert into `relation`.
    pub fn may_insert_into(&self, relation: &str, in_object: bool) -> bool {
        if in_object {
            self.policy(relation).allow_insert
        } else {
            self.allow_out_of_object_repairs
        }
    }

    /// Derive the structural-integrity policy used for deletions: peninsula
    /// actions become per-connection overrides; out-of-object referencers
    /// get the translator's defaults.
    pub fn deletion_policy(
        &self,
        schema: &StructuralSchema,
        object: &ViewObject,
        analysis: &IslandAnalysis,
    ) -> IntegrityPolicy {
        let mut policy = IntegrityPolicy::uniform(
            match self.out_of_object_delete {
                OutDeleteAction::Restrict => RefDeleteAction::Restrict,
                OutDeleteAction::Cascade => RefDeleteAction::Cascade,
                OutDeleteAction::Nullify => RefDeleteAction::Nullify,
            },
            match self.out_of_object_modify {
                OutModifyAction::Propagate => RefModifyAction::Propagate,
                OutModifyAction::Nullify => RefModifyAction::Nullify,
                OutModifyAction::Cascade => RefModifyAction::Cascade,
            },
        );
        for &pid in &analysis.peninsulas {
            let node = object.node(pid);
            let Some(edge) = &node.edge else { continue };
            let conn = &edge.steps[0].connection;
            let action = match self.peninsula_action(&node.relation) {
                PeninsulaAction::NullifyForeignKey => RefDeleteAction::Nullify,
                PeninsulaAction::DeleteReferencing => RefDeleteAction::Cascade,
                PeninsulaAction::Reject => RefDeleteAction::Restrict,
            };
            policy = policy.with_delete_action(conn, action);
        }
        let _ = schema;
        policy
    }

    /// Derive the structural-integrity policy used when island keys are
    /// modified: peninsula foreign keys are always propagated ("we must
    /// replace the foreign key of all tuples that were referring to any of
    /// the modified tuples"); out-of-object referencers follow the
    /// translator default.
    pub fn modification_policy(
        &self,
        object: &ViewObject,
        analysis: &IslandAnalysis,
    ) -> IntegrityPolicy {
        let mut policy = IntegrityPolicy::uniform(
            match self.out_of_object_delete {
                OutDeleteAction::Restrict => RefDeleteAction::Restrict,
                OutDeleteAction::Cascade => RefDeleteAction::Cascade,
                OutDeleteAction::Nullify => RefDeleteAction::Nullify,
            },
            match self.out_of_object_modify {
                OutModifyAction::Propagate => RefModifyAction::Propagate,
                OutModifyAction::Nullify => RefModifyAction::Nullify,
                OutModifyAction::Cascade => RefModifyAction::Cascade,
            },
        );
        for &pid in &analysis.peninsulas {
            let node = object.node(pid);
            let Some(edge) = &node.edge else { continue };
            let conn = &edge.steps[0].connection;
            policy = policy.with_modify_action(conn, RefModifyAction::Propagate);
        }
        policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::island::analyze;
    use crate::treegen::generate_omega;
    use crate::university::university_schema;

    #[test]
    fn permissive_covers_all_relations() {
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        let t = Translator::permissive(&omega);
        for rel in omega.relations() {
            assert!(t.policy(rel).allow_insert);
        }
        assert!(t.allow_replacement && t.allow_deletion && t.allow_insertion);
    }

    #[test]
    fn unknown_relation_defaults_restrictive() {
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        let t = Translator::permissive(&omega);
        assert!(!t.policy("NOPE").allow_insert);
    }

    #[test]
    fn deletion_policy_maps_peninsula_actions() {
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        let analysis = analyze(&schema, &omega).unwrap();
        let mut t = Translator::permissive(&omega);
        t.peninsula_actions
            .insert("CURRICULUM".into(), PeninsulaAction::Reject);
        let p = t.deletion_policy(&schema, &omega, &analysis);
        assert_eq!(
            p.delete_action("curriculum_courses"),
            RefDeleteAction::Restrict
        );
        // default for out-of-object connections
        assert_eq!(p.delete_action("people_dept"), RefDeleteAction::Cascade);
    }

    #[test]
    fn modification_policy_propagates_peninsulas() {
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        let analysis = analyze(&schema, &omega).unwrap();
        let mut t = Translator::permissive(&omega);
        t.out_of_object_modify = OutModifyAction::Nullify;
        let p = t.modification_policy(&omega, &analysis);
        assert_eq!(
            p.modify_action("curriculum_courses"),
            RefModifyAction::Propagate
        );
        assert_eq!(p.modify_action("people_dept"), RefModifyAction::Nullify);
    }

    #[test]
    fn may_insert_into_gates() {
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        let mut t = Translator::permissive(&omega);
        assert!(t.may_insert_into("DEPARTMENT", true));
        assert!(t.may_insert_into("PEOPLE", false));
        t.allow_out_of_object_repairs = false;
        assert!(!t.may_insert_into("PEOPLE", false));
        let mut p = t.policy("DEPARTMENT");
        p.allow_insert = false;
        t.set_policy("DEPARTMENT", p);
        assert!(!t.may_insert_into("DEPARTMENT", true));
    }
}
