//! The information metric guiding view-object generation (paper §3).
//!
//! The paper delegates the metric's definition to the thesis \[4\]; what the
//! algorithms need from it is a *relevance* score for every relation
//! reachable from the pivot, used to (a) extract the relevant subgraph `G`
//! (Figure 2a) and (b) bound the expansion of the template tree `T`
//! (Figure 2b).
//!
//! We implement it as a **path-product metric**: every traversal
//! kind/direction carries a weight in `(0, 1]`, the relevance of a path is
//! the product of its step weights, and the relevance of a relation is the
//! maximum over all paths from the pivot. Relations below
//! [`MetricWeights::threshold`] are "no longer relevant" and excluded. The
//! default weights reproduce the paper's Figure 2 exactly on the
//! university schema (see `crate::treegen` tests).

use std::collections::BTreeMap;
use vo_structural::prelude::*;

/// Per-traversal weights and the relevance cut-off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricWeights {
    /// Forward ownership `R1 —* R2` (owner to owned detail).
    pub ownership: f64,
    /// Forward reference `R1 —> R2` (entity to the abstraction it cites).
    pub reference: f64,
    /// Forward subset `R1 —⊃ R2` (general entity to specialization).
    pub subset: f64,
    /// Inverse ownership (owned detail back to owner).
    pub inv_ownership: f64,
    /// Inverse reference (abstraction out to its referencers).
    pub inv_reference: f64,
    /// Inverse subset (specialization back to the general entity).
    pub inv_subset: f64,
    /// Relations whose best path relevance falls below this are excluded.
    pub threshold: f64,
}

impl Default for MetricWeights {
    fn default() -> Self {
        MetricWeights {
            ownership: 0.9,
            reference: 0.75,
            subset: 0.85,
            inv_ownership: 0.8,
            inv_reference: 0.6,
            inv_subset: 0.8,
            threshold: 0.3,
        }
    }
}

impl MetricWeights {
    /// Weight of one traversal step.
    pub fn step_weight(&self, t: &Traversal<'_>) -> f64 {
        match (t.connection.kind, t.forward) {
            (ConnectionKind::Ownership, true) => self.ownership,
            (ConnectionKind::Ownership, false) => self.inv_ownership,
            (ConnectionKind::Reference, true) => self.reference,
            (ConnectionKind::Reference, false) => self.inv_reference,
            (ConnectionKind::Subset, true) => self.subset,
            (ConnectionKind::Subset, false) => self.inv_subset,
        }
    }

    /// Sanity check: all weights in `(0, 1]`, threshold in `(0, 1)`.
    /// Weights of exactly 1.0 are allowed only when a cycle cannot keep
    /// relevance at 1.0 forever (tree generation additionally forbids
    /// revisiting relations on a path, so expansion always terminates).
    pub fn validate(&self) -> Result<(), String> {
        let ws = [
            self.ownership,
            self.reference,
            self.subset,
            self.inv_ownership,
            self.inv_reference,
            self.inv_subset,
        ];
        if ws.iter().any(|w| !(*w > 0.0 && *w <= 1.0)) {
            return Err("all weights must lie in (0, 1]".into());
        }
        if !(self.threshold > 0.0 && self.threshold < 1.0) {
            return Err("threshold must lie in (0, 1)".into());
        }
        Ok(())
    }
}

/// The relevant subgraph `G` around a pivot (Figure 2a): the relations
/// whose best-path relevance clears the threshold, with their scores.
#[derive(Debug, Clone, PartialEq)]
pub struct Subgraph {
    /// The pivot relation.
    pub pivot: String,
    /// Relevance per included relation (pivot has relevance 1.0).
    pub relevance: BTreeMap<String, f64>,
    /// Names of connections with both endpoints included.
    pub connections: Vec<String>,
}

impl Subgraph {
    /// Included relation names, sorted.
    pub fn relations(&self) -> Vec<&str> {
        self.relevance.keys().map(|s| s.as_str()).collect()
    }

    /// True when `relation` is part of `G`.
    pub fn contains(&self, relation: &str) -> bool {
        self.relevance.contains_key(relation)
    }
}

/// Extract the relevant subgraph `G` for `pivot` — a best-first (Dijkstra
/// on `-log` weights, equivalently max-product) sweep over the connection
/// graph.
pub fn extract_subgraph(
    schema: &StructuralSchema,
    pivot: &str,
    weights: &MetricWeights,
) -> vo_relational::error::Result<Subgraph> {
    schema.catalog().relation(pivot)?; // existence check
    let mut best: BTreeMap<String, f64> = BTreeMap::new();
    best.insert(pivot.to_owned(), 1.0);
    // simple worklist relaxation; graphs are small (schemas, not data)
    let mut work: Vec<String> = vec![pivot.to_owned()];
    while let Some(rel) = work.pop() {
        let base = best[&rel];
        for t in schema.traversals_from(&rel) {
            let r = base * weights.step_weight(&t);
            if r < weights.threshold {
                continue;
            }
            let entry = best.entry(t.target().to_owned()).or_insert(0.0);
            if r > *entry {
                *entry = r;
                work.push(t.target().to_owned());
            }
        }
    }
    let connections = schema
        .connections()
        .iter()
        .filter(|c| best.contains_key(&c.from) && best.contains_key(&c.to))
        .map(|c| c.name.clone())
        .collect();
    Ok(Subgraph {
        pivot: pivot.to_owned(),
        relevance: best,
        connections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::university::university_schema;

    #[test]
    fn default_weights_validate() {
        MetricWeights::default().validate().unwrap();
    }

    #[test]
    fn bad_weights_rejected() {
        let w = MetricWeights {
            reference: 0.0,
            ..Default::default()
        };
        assert!(w.validate().is_err());
        let w = MetricWeights {
            threshold: 1.5,
            ..Default::default()
        };
        assert!(w.validate().is_err());
    }

    #[test]
    fn figure_2a_subgraph_from_courses() {
        // The paper's G for pivot COURSES contains COURSES, DEPARTMENT,
        // CURRICULUM, GRADES, STUDENT, and PEOPLE (reachable two ways).
        let schema = university_schema();
        let g = extract_subgraph(&schema, "COURSES", &MetricWeights::default()).unwrap();
        assert!(g.contains("COURSES"));
        assert!(g.contains("DEPARTMENT"));
        assert!(g.contains("CURRICULUM"));
        assert!(g.contains("GRADES"));
        assert!(g.contains("STUDENT"));
        assert!(g.contains("PEOPLE"));
        assert_eq!(g.relevance["COURSES"], 1.0);
        // GRADES is the most relevant neighbour (direct ownership)
        assert!(g.relevance["GRADES"] > g.relevance["DEPARTMENT"]);
        // PEOPLE's best path is GRADES→STUDENT→PEOPLE (0.9·0.8·0.8 = 0.576)
        let expected = 0.9 * 0.8 * 0.8;
        assert!((g.relevance["PEOPLE"] - expected).abs() < 1e-12);
    }

    #[test]
    fn pivot_unknown_is_error() {
        let schema = university_schema();
        assert!(extract_subgraph(&schema, "NOPE", &MetricWeights::default()).is_err());
    }

    #[test]
    fn tight_threshold_shrinks_subgraph() {
        let schema = university_schema();
        let w = MetricWeights {
            threshold: 0.85,
            ..Default::default()
        };
        let g = extract_subgraph(&schema, "COURSES", &w).unwrap();
        // only the direct ownership neighbour survives
        assert_eq!(g.relations(), vec!["COURSES", "GRADES"]);
    }

    #[test]
    fn included_connections_have_both_endpoints() {
        let schema = university_schema();
        let g = extract_subgraph(&schema, "COURSES", &MetricWeights::default()).unwrap();
        for cname in &g.connections {
            let c = schema.connection(cname).unwrap();
            assert!(g.contains(&c.from) && g.contains(&c.to));
        }
        // people_dept connects two included relations, so it is in G —
        // that's the circuit Figure 2(b) must break
        assert!(g.connections.iter().any(|c| c == "people_dept"));
    }
}
