//! View-object generation: subgraph → template tree → pruned object
//! (paper §3, Figure 2).
//!
//! Generation proceeds in the paper's three stages:
//!
//! 1. [`crate::metric::extract_subgraph`] isolates the relevant subgraph
//!    `G` around the pivot (Figure 2a).
//! 2. [`generate_tree`] expands all paths in `G` emanating from the pivot
//!    into a template tree `T` (Figure 2b), stopping a branch when it
//!    would revisit a relation already on its path (a circuit) or when
//!    path relevance falls below the metric threshold. Because circuits
//!    are broken by duplication, a relation may appear in several copies —
//!    the two PEOPLE nodes of Figure 2b.
//! 3. [`prune`] / [`prune_by_relations`] select the template nodes to keep
//!    (Figure 2c); children of excluded nodes re-attach to their nearest
//!    kept ancestor with the contracted multi-step edge (Figure 3's
//!    `COURSES —* GRADES *— STUDENT` path).

use crate::metric::MetricWeights;
use crate::object::{NodeId, Step, ViewObject, VoEdge, VoNode};
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// One node of the template tree `T`.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateNode {
    /// Arena index within the tree.
    pub id: usize,
    /// Base relation at this node.
    pub relation: String,
    /// Parent template node (`None` for the pivot).
    pub parent: Option<usize>,
    /// The single traversal step from the parent (`None` for the pivot).
    pub step: Option<Step>,
    /// Path relevance under the generation metric.
    pub relevance: f64,
    /// Depth (pivot = 0).
    pub depth: usize,
    /// Children, ordered by descending relevance then relation name.
    pub children: Vec<usize>,
}

/// The template tree `T`: all possible configurations for view objects
/// anchored on the pivot (paper: "once the pivot relation has been
/// determined, we have the choice to either include in or exclude from ω
/// every other relation in the tree").
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateTree {
    /// The pivot relation.
    pub pivot: String,
    /// Arena; node 0 is the pivot.
    pub nodes: Vec<TemplateNode>,
}

impl TemplateTree {
    /// Number of template nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree is just the pivot.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Ids of template nodes on `relation`, in tree order.
    pub fn nodes_on(&self, relation: &str) -> Vec<usize> {
        self.nodes
            .iter()
            .filter(|n| n.relation == relation)
            .map(|n| n.id)
            .collect()
    }

    /// The path of steps from the root to `node` (empty for the root).
    pub fn path_steps(&self, node: usize) -> Vec<Step> {
        let mut rev = Vec::new();
        let mut at = node;
        while let Some(p) = self.nodes[at].parent {
            rev.push(self.nodes[at].step.clone().expect("non-root has step"));
            at = p;
        }
        rev.reverse();
        rev
    }

    /// Render the tree (textual Figure 2b).
    pub fn to_tree_string(&self) -> String {
        let mut out = String::new();
        self.render(0, 0, &mut out);
        out
    }

    fn render(&self, id: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[id];
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&format!("{} (relevance {:.3})\n", n.relation, n.relevance));
        for &c in &n.children {
            self.render(c, depth + 1, out);
        }
    }
}

/// Generate the template tree for `pivot` (Figure 2a + 2b in one pass: the
/// expansion itself never leaves the relevant subgraph, because path
/// relevance is monotonically non-increasing).
pub fn generate_tree(
    schema: &StructuralSchema,
    pivot: &str,
    weights: &MetricWeights,
) -> Result<TemplateTree> {
    schema.catalog().relation(pivot)?;
    weights
        .validate()
        .map_err(|m| Error::InvalidSchema(format!("bad metric weights: {m}")))?;
    let mut nodes = vec![TemplateNode {
        id: 0,
        relation: pivot.to_owned(),
        parent: None,
        step: None,
        relevance: 1.0,
        depth: 0,
        children: Vec::new(),
    }];
    // depth-first expansion; the path set for cycle detection lives on the
    // explicit stack
    let mut stack: Vec<usize> = vec![0];
    while let Some(id) = stack.pop() {
        let (rel, relevance, depth) = {
            let n = &nodes[id];
            (n.relation.clone(), n.relevance, n.depth)
        };
        // relations on the path root..=id
        let mut on_path: Vec<&str> = Vec::with_capacity(depth + 1);
        {
            let mut at = id;
            loop {
                on_path.push(nodes[at].relation.as_str());
                match nodes[at].parent {
                    Some(p) => at = p,
                    None => break,
                }
            }
        }
        let on_path: Vec<String> = on_path.iter().map(|s| (*s).to_owned()).collect();

        let mut expansions: Vec<(String, Step, f64)> = Vec::new();
        for t in schema.traversals_from(&rel) {
            let target = t.target();
            if on_path.iter().any(|r| r == target) {
                continue; // would create a circuit — break it (Figure 2b)
            }
            let r = relevance * weights.step_weight(&t);
            if r < weights.threshold {
                continue; // no longer relevant
            }
            expansions.push((
                target.to_owned(),
                Step {
                    connection: t.connection.name.clone(),
                    parent_is_from: t.forward,
                },
                r,
            ));
        }
        // deterministic, figure-like ordering: most relevant child first
        expansions.sort_by(|a, b| {
            b.2.total_cmp(&a.2)
                .then_with(|| a.0.cmp(&b.0))
                .then_with(|| a.1.connection.cmp(&b.1.connection))
        });
        for (target, step, r) in expansions {
            let child_id = nodes.len();
            nodes.push(TemplateNode {
                id: child_id,
                relation: target,
                parent: Some(id),
                step: Some(step),
                relevance: r,
                depth: depth + 1,
                children: Vec::new(),
            });
            nodes[id].children.push(child_id);
            stack.push(child_id);
        }
    }
    Ok(TemplateTree {
        pivot: pivot.to_owned(),
        nodes,
    })
}

/// A node selection for pruning: template node id plus the attributes to
/// project (linking attributes and — for the pivot — key attributes are
/// added automatically).
#[derive(Debug, Clone)]
pub struct Selection {
    /// Template node to keep.
    pub template_node: usize,
    /// Projection attributes for the node.
    pub attrs: Vec<String>,
}

impl Selection {
    /// Keep `template_node` projecting `attrs`.
    pub fn new(template_node: usize, attrs: &[&str]) -> Self {
        Selection {
            template_node,
            attrs: attrs.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// Keep `template_node` projecting every attribute of its relation.
    pub fn all_attrs(template_node: usize) -> Self {
        Selection {
            template_node,
            attrs: Vec::new(),
        }
    }
}

/// Prune the template tree into a view object. `selections` must include
/// the root (template node 0); children of excluded nodes re-attach to
/// their nearest kept ancestor through a contracted multi-step edge.
/// An empty attribute list in a selection means "all attributes".
pub fn prune(
    schema: &StructuralSchema,
    tree: &TemplateTree,
    name: impl Into<String>,
    selections: &[Selection],
) -> Result<ViewObject> {
    let keep: std::collections::BTreeMap<usize, &Selection> =
        selections.iter().map(|s| (s.template_node, s)).collect();
    if !keep.contains_key(&0) {
        return Err(Error::InvalidSchema(
            "pruning must keep the pivot (template node 0)".into(),
        ));
    }
    for s in selections {
        if s.template_node >= tree.nodes.len() {
            return Err(Error::InvalidSchema(format!(
                "selection references template node {} out of bounds",
                s.template_node
            )));
        }
    }

    // map kept template node -> object node id, built in template preorder
    let mut object_id: std::collections::BTreeMap<usize, NodeId> = Default::default();
    let mut vo_nodes: Vec<VoNode> = Vec::with_capacity(keep.len());

    let mut stack = vec![0usize];
    let mut order = Vec::new();
    while let Some(t) = stack.pop() {
        order.push(t);
        for &c in tree.nodes[t].children.iter().rev() {
            stack.push(c);
        }
    }
    for t in order {
        let Some(sel) = keep.get(&t) else { continue };
        let template = &tree.nodes[t];
        let id = vo_nodes.len();
        // nearest kept ancestor + contracted edge
        let (parent, edge) = if t == 0 {
            (None, None)
        } else {
            let mut steps_rev: Vec<Step> = Vec::new();
            let mut at = t;
            let ancestor = loop {
                steps_rev.push(tree.nodes[at].step.clone().expect("non-root"));
                let p = tree.nodes[at].parent.expect("non-root");
                if keep.contains_key(&p) {
                    break p;
                }
                at = p;
            };
            steps_rev.reverse();
            let parent_obj = *object_id.get(&ancestor).ok_or_else(|| {
                Error::InvalidSchema(format!(
                    "template node {t} kept but its kept ancestor was not visited first"
                ))
            })?;
            (Some(parent_obj), Some(VoEdge { steps: steps_rev }))
        };

        // attribute set: requested ∪ required linking/key attributes
        let rel_schema = schema.catalog().relation(&template.relation)?;
        let mut attrs: Vec<String> = if sel.attrs.is_empty() {
            rel_schema
                .attributes()
                .iter()
                .map(|a| a.name.clone())
                .collect()
        } else {
            sel.attrs.clone()
        };
        let ensure = |attrs: &mut Vec<String>, a: &str| {
            if !attrs.iter().any(|x| x == a) {
                attrs.push(a.to_owned());
            }
        };
        if t == 0 {
            for k in rel_schema.key_names() {
                ensure(&mut attrs, k);
            }
        }
        if let Some(e) = &edge {
            // this node's side of the final step
            let last = e.steps.last().expect("non-empty").resolve(schema)?;
            for a in last.target_attrs() {
                ensure(&mut attrs, a);
            }
            // the parent's side of the first step
            let first = e.steps[0].resolve(schema)?;
            let p = parent.expect("edge implies parent");
            for a in first.source_attrs() {
                if !vo_nodes[p].attrs.iter().any(|x| x == a) {
                    vo_nodes[p].attrs.push(a.clone());
                }
            }
        }
        // validate requested attrs exist (before object validation for a
        // clearer error)
        for a in &attrs {
            rel_schema.index_of(a)?;
        }

        vo_nodes.push(VoNode {
            id,
            relation: template.relation.clone(),
            attrs,
            parent,
            edge,
            children: Vec::new(),
        });
        if let Some(p) = parent {
            vo_nodes[p].children.push(id);
        }
        object_id.insert(t, id);
    }

    ViewObject::from_nodes(name, vo_nodes, schema)
}

/// Convenience pruning: keep one template node per named relation,
/// choosing the *shallowest* copy (ties broken by higher relevance), and
/// project all attributes. The pivot is always kept.
pub fn prune_by_relations(
    schema: &StructuralSchema,
    tree: &TemplateTree,
    name: impl Into<String>,
    relations: &[&str],
) -> Result<ViewObject> {
    let mut selections = vec![Selection::all_attrs(0)];
    for rel in relations {
        if *rel == tree.pivot {
            continue;
        }
        let candidates = tree.nodes_on(rel);
        let best = candidates
            .into_iter()
            .min_by(|&a, &b| {
                tree.nodes[a]
                    .depth
                    .cmp(&tree.nodes[b].depth)
                    .then_with(|| tree.nodes[b].relevance.total_cmp(&tree.nodes[a].relevance))
            })
            .ok_or_else(|| {
                Error::InvalidSchema(format!(
                    "relation {rel} is not in the template tree for pivot {}",
                    tree.pivot
                ))
            })?;
        selections.push(Selection::all_attrs(best));
    }
    prune(schema, tree, name, &selections)
}

/// End-to-end generation of the paper's ω (Figure 2c) for any database
/// that has the university connection names; exposed for tests, examples
/// and benchmarks.
pub fn generate_omega(schema: &StructuralSchema) -> Result<ViewObject> {
    let tree = generate_tree(schema, "COURSES", &MetricWeights::default())?;
    prune_by_relations(
        schema,
        &tree,
        "omega",
        &["DEPARTMENT", "CURRICULUM", "GRADES", "STUDENT"],
    )
}

/// End-to-end generation of the paper's ω′ (Figure 3): COURSES plus
/// FACULTY and STUDENT only, with contracted paths.
pub fn generate_omega_prime(schema: &StructuralSchema) -> Result<ViewObject> {
    let tree = generate_tree(schema, "COURSES", &MetricWeights::default())?;
    prune_by_relations(schema, &tree, "omega_prime", &["FACULTY", "STUDENT"])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::university::university_schema;

    #[test]
    fn tree_duplicates_people_breaking_the_circuit() {
        let schema = university_schema();
        let tree = generate_tree(&schema, "COURSES", &MetricWeights::default()).unwrap();
        // Figure 2(b): two copies of PEOPLE, one per path from COURSES
        assert_eq!(tree.nodes_on("PEOPLE").len(), 2);
        // the pivot appears exactly once
        assert_eq!(tree.nodes_on("COURSES").len(), 1);
        assert_eq!(tree.nodes[0].relation, "COURSES");
    }

    #[test]
    fn tree_children_ordered_by_relevance() {
        let schema = university_schema();
        let tree = generate_tree(&schema, "COURSES", &MetricWeights::default()).unwrap();
        let root_children: Vec<&str> = tree.nodes[0]
            .children
            .iter()
            .map(|&c| tree.nodes[c].relation.as_str())
            .collect();
        // GRADES (0.9) before DEPARTMENT (0.75) before CURRICULUM (0.6)
        assert_eq!(root_children, vec!["GRADES", "DEPARTMENT", "CURRICULUM"]);
    }

    #[test]
    fn no_relation_repeats_on_a_path() {
        let schema = university_schema();
        let tree = generate_tree(&schema, "COURSES", &MetricWeights::default()).unwrap();
        for n in &tree.nodes {
            let mut rels = vec![n.relation.clone()];
            let mut at = n.id;
            while let Some(p) = tree.nodes[at].parent {
                rels.push(tree.nodes[p].relation.clone());
                at = p;
            }
            let len = rels.len();
            rels.sort();
            rels.dedup();
            assert_eq!(rels.len(), len, "path to node {} repeats a relation", n.id);
        }
    }

    #[test]
    fn relevance_decreases_along_paths() {
        let schema = university_schema();
        let tree = generate_tree(&schema, "COURSES", &MetricWeights::default()).unwrap();
        for n in &tree.nodes {
            if let Some(p) = n.parent {
                assert!(n.relevance < tree.nodes[p].relevance);
                assert!(n.relevance >= MetricWeights::default().threshold);
            }
        }
    }

    #[test]
    fn omega_matches_figure_2c() {
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        assert_eq!(omega.pivot(), "COURSES");
        assert_eq!(omega.complexity(), 5);
        assert_eq!(
            omega.relations(),
            vec!["COURSES", "CURRICULUM", "DEPARTMENT", "GRADES", "STUDENT"]
        );
        // STUDENT hangs off GRADES by a direct inverse-ownership edge
        let student = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "STUDENT")
            .unwrap();
        let parent = omega.node(student.parent.unwrap());
        assert_eq!(parent.relation, "GRADES");
        assert!(student.edge.as_ref().unwrap().is_direct());
    }

    #[test]
    fn omega_prime_matches_figure_3() {
        let schema = university_schema();
        let op = generate_omega_prime(&schema).unwrap();
        assert_eq!(op.complexity(), 3);
        assert_eq!(op.relations(), vec!["COURSES", "FACULTY", "STUDENT"]);
        // STUDENT attaches through the contracted 2-step path
        // COURSES —* GRADES *— STUDENT (Figure 3's note)
        let student = op.nodes().iter().find(|n| n.relation == "STUDENT").unwrap();
        let e = student.edge.as_ref().unwrap();
        assert_eq!(e.steps.len(), 2);
        assert_eq!(e.steps[0].connection, "courses_grades");
        assert!(e.steps[0].parent_is_from);
        assert_eq!(e.steps[1].connection, "student_grades");
        assert!(!e.steps[1].parent_is_from);
        // FACULTY attaches through DEPARTMENT and PEOPLE (3 steps)
        let fac = op.nodes().iter().find(|n| n.relation == "FACULTY").unwrap();
        assert_eq!(fac.edge.as_ref().unwrap().steps.len(), 3);
    }

    #[test]
    fn prune_rejects_missing_root() {
        let schema = university_schema();
        let tree = generate_tree(&schema, "COURSES", &MetricWeights::default()).unwrap();
        let r = prune(&schema, &tree, "bad", &[Selection::all_attrs(1)]);
        assert!(r.is_err());
    }

    #[test]
    fn prune_rejects_unknown_relation() {
        let schema = university_schema();
        let tree = generate_tree(&schema, "COURSES", &MetricWeights::default()).unwrap();
        let r = prune_by_relations(&schema, &tree, "bad", &["NOPE"]);
        assert!(r.is_err());
    }

    #[test]
    fn prune_adds_linking_attributes() {
        let schema = university_schema();
        let tree = generate_tree(&schema, "COURSES", &MetricWeights::default()).unwrap();
        // ask for GRADES projecting only "grade": linking attrs get added
        let g = tree.nodes_on("GRADES")[0];
        let o = prune(
            &schema,
            &tree,
            "slim",
            &[
                Selection::new(0, &["course_id", "title"]),
                Selection::new(g, &["grade"]),
            ],
        )
        .unwrap();
        let gn = o.nodes().iter().find(|n| n.relation == "GRADES").unwrap();
        assert!(gn.attrs.contains(&"grade".to_string()));
        assert!(gn.attrs.contains(&"course_id".to_string()));
    }

    #[test]
    fn tight_threshold_yields_tiny_tree() {
        let schema = university_schema();
        let w = MetricWeights {
            threshold: 0.85,
            ..Default::default()
        };
        let tree = generate_tree(&schema, "COURSES", &w).unwrap();
        assert_eq!(tree.len(), 2); // COURSES + GRADES
        assert!(!tree.is_empty());
    }

    #[test]
    fn path_steps_roundtrip() {
        let schema = university_schema();
        let tree = generate_tree(&schema, "COURSES", &MetricWeights::default()).unwrap();
        let people = tree.nodes_on("PEOPLE");
        for id in people {
            let steps = tree.path_steps(id);
            assert_eq!(steps.len(), tree.nodes[id].depth);
            // walk the steps and confirm they end on PEOPLE
            let mut at = "COURSES".to_owned();
            for s in &steps {
                let t = s.resolve(&schema).unwrap();
                assert_eq!(t.source(), at);
                at = t.target().to_owned();
            }
            assert_eq!(at, "PEOPLE");
        }
    }

    #[test]
    fn tree_string_shows_relevances() {
        let schema = university_schema();
        let tree = generate_tree(&schema, "COURSES", &MetricWeights::default()).unwrap();
        let s = tree.to_tree_string();
        assert!(s.contains("COURSES (relevance 1.000)"));
        assert!(s.contains("GRADES (relevance 0.900)"));
    }
}
