//! The translator-choice dialog (paper §6).
//!
//! At view-object definition time the object-definition facility asks the
//! DBA a sequence of yes/no questions derived from the object's structure;
//! the answers define the translator. Questions that become irrelevant
//! after an earlier NO are *not asked* (the paper's footnote 5).
//!
//! The question texts of the replacement portion reproduce the paper's
//! transcript verbatim; the deletion and insertion portions follow the
//! same style (the paper shows only the replacement portion "for
//! brevity").

use crate::island::IslandAnalysis;
use crate::object::ViewObject;
use crate::translator::{PeninsulaAction, RelationPolicy, Translator};
use vo_relational::prelude::Result;
use vo_structural::prelude::*;

/// Machine-readable identity of a question (what the answer will set).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuestionTopic {
    /// Object-wide: are replacements allowed?
    AllowReplacement,
    /// Object-wide: are complete deletions allowed?
    AllowDeletion,
    /// Object-wide: are complete insertions allowed?
    AllowInsertion,
    /// Island relation: may the instance tuple's key be modified?
    KeyModifiable(String),
    /// Island relation: may the database tuple's key be replaced?
    DbKeyReplace(String),
    /// Island relation: may the system delete the old tuple and adopt an
    /// existing one with the matching key?
    DeleteAdopt(String),
    /// Non-island relation: may it be modified during insertions or
    /// replacements at all?
    RelationModifiable(String),
    /// Non-island relation: may new tuples be inserted?
    CanInsert(String),
    /// Non-island relation: may existing tuples be modified?
    CanModify(String),
    /// Peninsula: on deletion, may foreign keys be set to NULL?
    PeninsulaNullify(String),
    /// Peninsula: on deletion, may referencing tuples be deleted instead?
    PeninsulaDelete(String),
    /// Global: may integrity repair insert into out-of-object relations?
    OutOfObjectRepairs,
}

/// One question shown to the DBA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// What this question decides.
    pub topic: QuestionTopic,
    /// The text, matching the paper's typewriter-style phrasing.
    pub text: String,
}

/// A yes/no answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Answer {
    /// `<YES>`
    Yes,
    /// `<NO>`
    No,
}

impl Answer {
    /// As a boolean.
    pub fn as_bool(self) -> bool {
        self == Answer::Yes
    }

    /// From a boolean.
    pub fn from_bool(b: bool) -> Self {
        if b {
            Answer::Yes
        } else {
            Answer::No
        }
    }
}

/// Supplies answers during the dialog.
pub trait Responder {
    /// Answer one question.
    fn answer(&mut self, question: &Question) -> Answer;
}

/// Answers every question YES.
#[derive(Debug, Default)]
pub struct AllYes;

impl Responder for AllYes {
    fn answer(&mut self, _question: &Question) -> Answer {
        Answer::Yes
    }
}

/// Answers from a fixed script, falling back to a default when the script
/// is exhausted; records how many answers were consumed.
#[derive(Debug)]
pub struct ScriptedResponder {
    script: Vec<bool>,
    next: usize,
    default: bool,
}

impl ScriptedResponder {
    /// Answer from `script` in order, then `default`.
    pub fn new(script: Vec<bool>, default: bool) -> Self {
        ScriptedResponder {
            script,
            next: 0,
            default,
        }
    }

    /// Number of scripted answers consumed.
    pub fn consumed(&self) -> usize {
        self.next.min(self.script.len())
    }
}

impl Responder for ScriptedResponder {
    fn answer(&mut self, _question: &Question) -> Answer {
        let v = self.script.get(self.next).copied().unwrap_or(self.default);
        self.next += 1;
        Answer::from_bool(v)
    }
}

/// Answers by topic using a decision function — useful for policy-driven
/// translators in tests and fixtures.
pub struct FnResponder<F: FnMut(&QuestionTopic) -> bool>(pub F);

impl<F: FnMut(&QuestionTopic) -> bool> Responder for FnResponder<F> {
    fn answer(&mut self, question: &Question) -> Answer {
        Answer::from_bool((self.0)(&question.topic))
    }
}

/// The full record of a dialog: every question actually asked with its
/// answer, in order.
#[derive(Debug, Clone, Default)]
pub struct DialogTranscript {
    /// `(question, answer)` pairs in the order asked.
    pub entries: Vec<(Question, Answer)>,
}

impl DialogTranscript {
    /// Render in the paper's typography: questions in plain text, answers
    /// as `<YES>` / `<NO>`.
    pub fn to_transcript_string(&self) -> String {
        let mut out = String::new();
        for (q, a) in &self.entries {
            out.push_str(&q.text);
            out.push('\n');
            out.push_str(match a {
                Answer::Yes => "<YES>\n",
                Answer::No => "<NO>\n",
            });
        }
        out
    }

    /// Number of questions asked.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no questions were asked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Run the dialog and build the translator.
///
/// Question order follows the paper's transcript: the object-wide
/// replacement switch first, then one block per object relation in
/// alphabetical order (island relations get the key-modification triplet,
/// other relations the modifiable/insert/modify triplet), then the
/// deletion portion (object-wide switch plus one block per peninsula),
/// then the insertion portion, then the out-of-object repair switch.
pub fn choose_translator(
    schema: &StructuralSchema,
    object: &ViewObject,
    analysis: &IslandAnalysis,
    responder: &mut dyn Responder,
) -> Result<(Translator, DialogTranscript)> {
    let _ = schema;
    let mut translator = Translator::restrictive(object);
    translator.allow_out_of_object_repairs = false;
    let mut transcript = DialogTranscript::default();

    let mut ask = |topic: QuestionTopic, text: String, r: &mut dyn Responder| {
        let q = Question { topic, text };
        let a = r.answer(&q);
        transcript.entries.push((q, a));
        a.as_bool()
    };

    // ---- replacement portion (paper's transcript) ----
    let allow_replacement = ask(
        QuestionTopic::AllowReplacement,
        "Is replacement of tuples in an object instance allowed?".into(),
        responder,
    );
    translator.allow_replacement = allow_replacement;

    if allow_replacement {
        for rel in object.relations() {
            let mut policy = RelationPolicy::restrictive();
            if analysis.island_has_relation(rel) {
                let key_mod = ask(
                    QuestionTopic::KeyModifiable(rel.to_owned()),
                    format!(
                        "The key of a tuple of relation {rel} could be modified \
                         during replacements. Do you allow this?"
                    ),
                    responder,
                );
                policy.allow_key_replacement = key_mod;
                if key_mod {
                    let db_key = ask(
                        QuestionTopic::DbKeyReplace(rel.to_owned()),
                        "Can we replace the key of the corresponding database tuple?".into(),
                        responder,
                    );
                    policy.allow_db_key_replace = db_key;
                    if db_key {
                        policy.allow_delete_adopt = ask(
                            QuestionTopic::DeleteAdopt(rel.to_owned()),
                            "The system might need to delete the old database tuple, \
                             and replace it with an existing tuple with matching key. \
                             Do you allow this?"
                                .into(),
                            responder,
                        );
                    }
                }
                // island tuples are the entity itself: inserts/modifies of
                // island tuples ride on the object-wide switches
                policy.allow_insert = true;
                policy.allow_modify = true;
            } else {
                let modifiable = ask(
                    QuestionTopic::RelationModifiable(rel.to_owned()),
                    format!(
                        "Can the relation {rel} be modified during insertions \
                         (or replacements)?"
                    ),
                    responder,
                );
                if modifiable {
                    policy.allow_insert = ask(
                        QuestionTopic::CanInsert(rel.to_owned()),
                        "Can a new tuple be inserted?".into(),
                        responder,
                    );
                    policy.allow_modify = ask(
                        QuestionTopic::CanModify(rel.to_owned()),
                        "Can an existing tuple be modified?".into(),
                        responder,
                    );
                }
                // footnote 5: when the gate is NO, "the two subsequent
                // questions ... are irrelevant and thus will not be asked"
            }
            translator.set_policy(rel, policy);
        }
    }

    // ---- deletion portion ----
    let allow_deletion = ask(
        QuestionTopic::AllowDeletion,
        "Is deletion of object instances allowed?".into(),
        responder,
    );
    translator.allow_deletion = allow_deletion;
    if allow_deletion {
        for &pid in &analysis.peninsulas {
            let rel = object.node(pid).relation.clone();
            // NULLifying the foreign key is only on offer when the schema
            // permits it (nullable, non-key referencing attributes)
            let nullable_fk = {
                let node = object.node(pid);
                let conn = schema
                    .connection(&node.edge.as_ref().expect("peninsula").steps[0].connection)?;
                let rel_schema = schema.catalog().relation(&rel)?;
                conn.from_attrs
                    .iter()
                    .all(|a| rel_schema.attribute(a).map(|d| d.nullable).unwrap_or(false))
            };
            let nullify = nullable_fk
                && ask(
                    QuestionTopic::PeninsulaNullify(rel.clone()),
                    format!(
                        "On deletion of an instance, tuples of relation {rel} may \
                         reference the deleted entity. May the system set their \
                         foreign keys to NULL?"
                    ),
                    responder,
                );
            let action = if nullify {
                PeninsulaAction::NullifyForeignKey
            } else {
                let del = ask(
                    QuestionTopic::PeninsulaDelete(rel.clone()),
                    format!(
                        "May the system delete the referencing tuples of \
                         relation {rel} instead?"
                    ),
                    responder,
                );
                if del {
                    PeninsulaAction::DeleteReferencing
                } else {
                    PeninsulaAction::Reject
                }
            };
            translator.peninsula_actions.insert(rel, action);
        }
    }

    // ---- insertion portion ----
    translator.allow_insertion = ask(
        QuestionTopic::AllowInsertion,
        "Is insertion of new object instances allowed?".into(),
        responder,
    );

    // ---- global repairs ----
    translator.allow_out_of_object_repairs = ask(
        QuestionTopic::OutOfObjectRepairs,
        "May global integrity maintenance insert missing tuples into \
         relations outside the object?"
            .into(),
        responder,
    );

    Ok((translator, transcript))
}

/// The exact answers of the paper's §6 dialog for ω (the permissive
/// translator of the worked example): everything YES except the
/// delete-and-adopt question for the two island relations.
pub fn paper_dialog_responder() -> FnResponder<impl FnMut(&QuestionTopic) -> bool> {
    FnResponder(|topic: &QuestionTopic| !matches!(topic, QuestionTopic::DeleteAdopt(_)))
}

/// The paper's *restrictive* variant: additionally answers NO to "Can the
/// relation DEPARTMENT be modified during insertions (or replacements)?".
pub fn paper_restrictive_responder() -> FnResponder<impl FnMut(&QuestionTopic) -> bool> {
    FnResponder(|topic: &QuestionTopic| match topic {
        QuestionTopic::DeleteAdopt(_) => false,
        QuestionTopic::RelationModifiable(rel) => rel != "DEPARTMENT",
        _ => true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::island::analyze;
    use crate::treegen::generate_omega;
    use crate::university::university_schema;

    fn setup() -> (StructuralSchema, ViewObject, IslandAnalysis) {
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        let analysis = analyze(&schema, &omega).unwrap();
        (schema, omega, analysis)
    }

    #[test]
    fn paper_dialog_replacement_portion_matches_transcript() {
        let (schema, omega, analysis) = setup();
        let mut r = paper_dialog_responder();
        let (translator, transcript) =
            choose_translator(&schema, &omega, &analysis, &mut r).unwrap();

        // The replacement portion is the first 14 entries:
        // 1 object-wide + COURSES(3) + CURRICULUM(3) + DEPARTMENT(3) +
        // GRADES(3) + STUDENT(3) would be 16, but island relations get 3
        // and the delete-adopt NO terminates their block: COURSES 3, GRADES 3.
        let texts: Vec<&str> = transcript
            .entries
            .iter()
            .map(|(q, _)| q.text.as_str())
            .collect();
        assert_eq!(
            texts[0],
            "Is replacement of tuples in an object instance allowed?"
        );
        assert!(texts[1].starts_with("The key of a tuple of relation COURSES"));
        assert_eq!(
            texts[2],
            "Can we replace the key of the corresponding database tuple?"
        );
        assert!(texts[3].starts_with("The system might need to delete"));
        assert!(texts[4].starts_with("Can the relation CURRICULUM be modified"));
        assert_eq!(texts[5], "Can a new tuple be inserted?");
        assert_eq!(texts[6], "Can an existing tuple be modified?");
        assert!(texts[7].starts_with("Can the relation DEPARTMENT be modified"));
        assert!(texts[10].starts_with("The key of a tuple of relation GRADES"));
        assert!(texts[13].starts_with("Can the relation STUDENT be modified"));

        // resulting translator mirrors the paper's answers
        assert!(translator.allow_replacement);
        let c = translator.policy("COURSES");
        assert!(c.allow_key_replacement && c.allow_db_key_replace && !c.allow_delete_adopt);
        let d = translator.policy("DEPARTMENT");
        assert!(d.allow_insert && d.allow_modify);
    }

    #[test]
    fn footnote_5_skips_irrelevant_questions() {
        let (schema, omega, analysis) = setup();
        let mut r = paper_restrictive_responder();
        let (translator, transcript) =
            choose_translator(&schema, &omega, &analysis, &mut r).unwrap();
        // DEPARTMENT's gate is NO → its two sub-questions are absent
        let dept_questions: Vec<&str> = transcript
            .entries
            .iter()
            .map(|(q, _)| q.text.as_str())
            .filter(|t| t.contains("DEPARTMENT"))
            .collect();
        assert_eq!(dept_questions.len(), 1);
        let d = translator.policy("DEPARTMENT");
        assert!(!d.allow_insert && !d.allow_modify);
    }

    #[test]
    fn replacement_no_skips_all_relation_blocks() {
        let (schema, omega, analysis) = setup();
        let mut r = ScriptedResponder::new(vec![false], true);
        let (translator, transcript) =
            choose_translator(&schema, &omega, &analysis, &mut r).unwrap();
        assert!(!translator.allow_replacement);
        // only: replacement switch, deletion switch, peninsula block,
        // insertion switch, out-of-object switch
        let texts: Vec<&str> = transcript
            .entries
            .iter()
            .map(|(q, _)| q.text.as_str())
            .collect();
        assert!(!texts.iter().any(|t| t.contains("could be modified")));
    }

    #[test]
    fn peninsula_deletion_questions() {
        let (schema, omega, analysis) = setup();
        // nullify NO, delete YES
        let mut r =
            FnResponder(|t: &QuestionTopic| !matches!(t, QuestionTopic::PeninsulaNullify(_)));
        let (translator, _) = choose_translator(&schema, &omega, &analysis, &mut r).unwrap();
        assert_eq!(
            translator.peninsula_action("CURRICULUM"),
            PeninsulaAction::DeleteReferencing
        );
        // nullify NO, delete NO → reject
        let mut r = FnResponder(|t: &QuestionTopic| {
            !matches!(
                t,
                QuestionTopic::PeninsulaNullify(_) | QuestionTopic::PeninsulaDelete(_)
            )
        });
        let (translator, _) = choose_translator(&schema, &omega, &analysis, &mut r).unwrap();
        assert_eq!(
            translator.peninsula_action("CURRICULUM"),
            PeninsulaAction::Reject
        );
    }

    #[test]
    fn transcript_renders_paper_typography() {
        let (schema, omega, analysis) = setup();
        let mut r = paper_dialog_responder();
        let (_, transcript) = choose_translator(&schema, &omega, &analysis, &mut r).unwrap();
        let s = transcript.to_transcript_string();
        assert!(s.contains("Is replacement of tuples in an object instance allowed?\n<YES>"));
        assert!(s.contains("Do you allow this?\n<NO>"));
        assert!(!transcript.is_empty());
        assert_eq!(s.lines().count(), transcript.len() * 2);
    }

    #[test]
    fn scripted_responder_tracks_consumption() {
        let mut r = ScriptedResponder::new(vec![true, false], true);
        let q = Question {
            topic: QuestionTopic::AllowReplacement,
            text: "?".into(),
        };
        assert_eq!(r.answer(&q), Answer::Yes);
        assert_eq!(r.answer(&q), Answer::No);
        assert_eq!(r.answer(&q), Answer::Yes); // default
        assert_eq!(r.consumed(), 2);
    }
}
