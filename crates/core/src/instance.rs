//! View-object instances: hierarchical values assembled from relational
//! tuples (paper §3, Figure 4).
//!
//! An instance mirrors its object's tree: the root holds one pivot tuple;
//! under each node, every child node id maps to the *set* of child
//! instances connected to it. Instances carry **full base tuples** — the
//! projection controls what is displayed and queried, while updates need
//! complete tuples (the paper notes that inserted view-object tuples "need
//! to be extended with some values for the attributes that have been
//! projected out"; carrying full tuples makes the application supply them
//! up front).

use crate::object::{NodeId, ViewObject};
use std::collections::BTreeMap;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// One node of an instance: a tuple of the node's relation plus child
/// instances grouped by child node id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoInstanceNode {
    /// The object node this instance node belongs to.
    pub node: NodeId,
    /// The full base tuple.
    pub tuple: Tuple,
    /// Child instances per child object-node id.
    pub children: BTreeMap<NodeId, Vec<VoInstanceNode>>,
}

impl VoInstanceNode {
    /// A leaf instance node.
    pub fn leaf(node: NodeId, tuple: Tuple) -> Self {
        VoInstanceNode {
            node,
            tuple,
            children: BTreeMap::new(),
        }
    }

    /// Append a child instance under `child_node`.
    pub fn push_child(&mut self, child: VoInstanceNode) {
        self.children.entry(child.node).or_default().push(child);
    }

    /// All instance nodes for object node `id` in this subtree, in
    /// traversal order.
    pub fn collect<'a>(&'a self, id: NodeId, out: &mut Vec<&'a VoInstanceNode>) {
        if self.node == id {
            out.push(self);
        }
        for nodes in self.children.values() {
            for n in nodes {
                n.collect(id, out);
            }
        }
    }

    /// Total number of instance nodes in this subtree.
    pub fn size(&self) -> usize {
        1 + self
            .children
            .values()
            .flatten()
            .map(|n| n.size())
            .sum::<usize>()
    }
}

/// A complete view-object instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoInstance {
    /// Name of the view object this instance belongs to.
    pub object: String,
    /// The pivot instance node.
    pub root: VoInstanceNode,
}

impl VoInstance {
    /// The instance's object key (the pivot tuple's key).
    pub fn key(&self, schema: &StructuralSchema, object: &ViewObject) -> Result<Key> {
        let pivot = schema.catalog().relation(object.pivot())?;
        Ok(self.root.tuple.key(pivot))
    }

    /// All tuples for object node `id`, in traversal order.
    pub fn tuples_of(&self, id: NodeId) -> Vec<&Tuple> {
        let mut nodes = Vec::new();
        self.root.collect(id, &mut nodes);
        nodes.into_iter().map(|n| &n.tuple).collect()
    }

    /// All instance nodes for object node `id`.
    pub fn nodes_of(&self, id: NodeId) -> Vec<&VoInstanceNode> {
        let mut nodes = Vec::new();
        self.root.collect(id, &mut nodes);
        nodes
    }

    /// Total number of tuples bound into the instance.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Render the instance in the paper's Figure 4 notation, showing only
    /// projected attributes:
    ///
    /// ```text
    /// (COURSES: course_id='CS345', ...
    ///   (DEPARTMENT: dept_name='Computer Science')
    ///   ...)
    /// ```
    pub fn to_display_string(
        &self,
        schema: &StructuralSchema,
        object: &ViewObject,
    ) -> Result<String> {
        let mut out = String::new();
        render_node(schema, object, &self.root, 0, &mut out)?;
        Ok(out)
    }
}

fn render_node(
    schema: &StructuralSchema,
    object: &ViewObject,
    inst: &VoInstanceNode,
    depth: usize,
    out: &mut String,
) -> Result<()> {
    let node = object.node(inst.node);
    let rel_schema = schema.catalog().relation(&node.relation)?;
    for _ in 0..depth {
        out.push_str("  ");
    }
    let fields: Vec<String> = node
        .attrs
        .iter()
        .map(|a| {
            inst.tuple
                .get_named(rel_schema, a)
                .map(|v| format!("{a}={v}"))
        })
        .collect::<Result<_>>()?;
    out.push_str(&format!("({}: {}", node.relation, fields.join(", ")));
    if inst.children.values().all(|v| v.is_empty()) && node.children.is_empty() {
        out.push(')');
        out.push('\n');
        return Ok(());
    }
    out.push('\n');
    for &child in &node.children {
        if let Some(instances) = inst.children.get(&child) {
            for ci in instances {
                render_node(schema, object, ci, depth + 1, out)?;
            }
        }
    }
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(")\n");
    Ok(())
}

/// Assemble the instance anchored on `root_tuple` by following the
/// object's edges through the database (the query model's "binding of the
/// set of relational tuples ... to the view object's structure").
pub fn assemble(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
    root_tuple: Tuple,
) -> Result<VoInstance> {
    let root = assemble_node(schema, object, db, 0, root_tuple)?;
    Ok(VoInstance {
        object: object.name().to_owned(),
        root,
    })
}

fn assemble_node(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
    node: NodeId,
    tuple: Tuple,
) -> Result<VoInstanceNode> {
    let mut inst = VoInstanceNode::leaf(node, tuple);
    for &child in &object.node(node).children {
        let terminals = follow_edge(schema, object, db, node, child, &inst.tuple)?;
        for t in terminals {
            let ci = assemble_node(schema, object, db, child, t)?;
            inst.push_child(ci);
        }
    }
    Ok(inst)
}

/// Follow the (possibly multi-step) edge from `parent`'s tuple to the
/// tuples of `child`'s relation, deduplicating terminal tuples by key.
pub fn follow_edge(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
    parent: NodeId,
    child: NodeId,
    parent_tuple: &Tuple,
) -> Result<Vec<Tuple>> {
    let edge = object
        .node(child)
        .edge
        .as_ref()
        .ok_or_else(|| Error::InvalidPlan("child node without edge".into()))?;
    debug_assert_eq!(object.node(child).parent, Some(parent));
    let mut frontier: Vec<(String, Tuple)> =
        vec![(object.node(parent).relation.clone(), parent_tuple.clone())];
    for step in &edge.steps {
        let t = step.resolve(schema)?;
        let mut next = Vec::new();
        for (rel, tuple) in &frontier {
            debug_assert_eq!(rel, t.source());
            let src_schema = db.table(rel)?.schema().clone();
            let vals: Vec<Value> = t
                .source_attrs()
                .iter()
                .map(|a| tuple.get_named(&src_schema, a).cloned())
                .collect::<Result<_>>()?;
            if vals.iter().any(Value::is_null) {
                continue; // NULL never connects (Definition 2.1)
            }
            let target = db.table(t.target())?;
            for m in target.find_by_attrs(t.target_attrs(), &vals)? {
                next.push((t.target().to_owned(), m.clone()));
            }
        }
        frontier = next;
    }
    // dedup terminals by key
    let terminal_rel = &object.node(child).relation;
    let term_schema = db.table(terminal_rel)?.schema().clone();
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for (_, t) in frontier {
        if seen.insert(t.key(&term_schema)) {
            out.push(t);
        }
    }
    Ok(out)
}

/// Assemble every instance of `object` (one per pivot tuple).
pub fn instantiate_all(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
) -> Result<Vec<VoInstance>> {
    let pivot = db.table(object.pivot())?;
    let tuples: Vec<Tuple> = pivot.scan().cloned().collect();
    tuples
        .into_iter()
        .map(|t| assemble(schema, object, db, t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treegen::{generate_omega, generate_omega_prime};
    use crate::university::university_database;

    #[test]
    fn assembles_cs345_instance() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let courses = db.table("COURSES").unwrap();
        let t = courses.get(&Key::single("CS345")).unwrap().clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        assert_eq!(inst.key(&schema, &omega).unwrap(), Key::single("CS345"));
        // children: 1 department, 2 curriculum rows, 3 grades, 3 students
        let dep = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "DEPARTMENT")
            .unwrap()
            .id;
        let cur = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "CURRICULUM")
            .unwrap()
            .id;
        let gra = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "GRADES")
            .unwrap()
            .id;
        let stu = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "STUDENT")
            .unwrap()
            .id;
        assert_eq!(inst.tuples_of(dep).len(), 1);
        assert_eq!(inst.tuples_of(cur).len(), 2);
        assert_eq!(inst.tuples_of(gra).len(), 3);
        assert_eq!(inst.tuples_of(stu).len(), 3);
        assert_eq!(inst.size(), 1 + 1 + 2 + 3 + 3);
    }

    #[test]
    fn multi_step_edge_instantiates_students_directly() {
        let (schema, db) = university_database();
        let op = generate_omega_prime(&schema).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &op, &db, t).unwrap();
        let stu = op
            .nodes()
            .iter()
            .find(|n| n.relation == "STUDENT")
            .unwrap()
            .id;
        // 3 enrolled students, reached through GRADES without a GRADES node
        assert_eq!(inst.tuples_of(stu).len(), 3);
    }

    #[test]
    fn dedups_terminal_tuples_on_contracted_paths() {
        let (schema, mut db) = university_database();
        // give student 1 a second grade row in CS345? impossible (same key);
        // instead: faculty reached via DEPARTMENT→PEOPLE dedups when two
        // people rows share the department — here each person is one row, so
        // count faculty of Computer Science
        let op = generate_omega_prime(&schema).unwrap();
        let fac = op
            .nodes()
            .iter()
            .find(|n| n.relation == "FACULTY")
            .unwrap()
            .id;
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &op, &db, t.clone()).unwrap();
        assert_eq!(inst.tuples_of(fac).len(), 2); // faculty 20 and 21

        // an extra CS course does not change the faculty set for CS345
        db.insert(
            "COURSES",
            vec![
                "CS999".into(),
                "X".into(),
                "graduate".into(),
                "Computer Science".into(),
            ],
        )
        .unwrap();
        let inst2 = assemble(&schema, &op, &db, t).unwrap();
        assert_eq!(inst2.tuples_of(fac).len(), 2);
    }

    #[test]
    fn null_links_yield_no_children() {
        let (schema, mut db) = university_database();
        db.insert(
            "COURSES",
            vec![
                "X1".into(),
                "Detached".into(),
                "graduate".into(),
                Value::Null,
            ],
        )
        .unwrap();
        let omega = generate_omega(&schema).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("X1"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        let dep = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "DEPARTMENT")
            .unwrap()
            .id;
        assert!(inst.tuples_of(dep).is_empty());
    }

    #[test]
    fn instantiate_all_yields_one_per_pivot_tuple() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let all = instantiate_all(&schema, &omega, &db).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn display_matches_figure_4_shape() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        let s = inst.to_display_string(&schema, &omega).unwrap();
        assert!(s.starts_with("(COURSES: course_id='CS345'"));
        assert!(s.contains("(DEPARTMENT: dept_name='Computer Science')"));
        assert!(s.contains("(GRADES:"));
        assert!(s.contains("(STUDENT:"));
    }

    #[test]
    fn manual_instance_construction() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let courses = db.table("COURSES").unwrap().schema().clone();
        let t = Tuple::new(
            &courses,
            vec!["NEW1".into(), "T".into(), "graduate".into(), Value::Null],
        )
        .unwrap();
        let mut root = VoInstanceNode::leaf(0, t);
        let gra = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "GRADES")
            .unwrap()
            .id;
        let grades = db.table("GRADES").unwrap().schema().clone();
        root.push_child(VoInstanceNode::leaf(
            gra,
            Tuple::new(&grades, vec!["NEW1".into(), 1.into(), "A".into()]).unwrap(),
        ));
        let inst = VoInstance {
            object: omega.name().to_owned(),
            root,
        };
        assert_eq!(inst.size(), 2);
        assert_eq!(inst.tuples_of(gra).len(), 1);
    }
}
