//! View-object instances: hierarchical values assembled from relational
//! tuples (paper §3, Figure 4).
//!
//! An instance mirrors its object's tree: the root holds one pivot tuple;
//! under each node, every child node id maps to the *set* of child
//! instances connected to it. Instances carry **full base tuples** — the
//! projection controls what is displayed and queried, while updates need
//! complete tuples (the paper notes that inserted view-object tuples "need
//! to be extended with some values for the attributes that have been
//! projected out"; carrying full tuples makes the application supply them
//! up front).

use crate::object::{NodeId, ViewObject};
use std::collections::BTreeMap;
use std::time::Instant;
use vo_obs::trace;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// One node of an instance: a tuple of the node's relation plus child
/// instances grouped by child node id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoInstanceNode {
    /// The object node this instance node belongs to.
    pub node: NodeId,
    /// The full base tuple.
    pub tuple: Tuple,
    /// Child instances per child object-node id.
    pub children: BTreeMap<NodeId, Vec<VoInstanceNode>>,
}

impl VoInstanceNode {
    /// A leaf instance node.
    pub fn leaf(node: NodeId, tuple: Tuple) -> Self {
        VoInstanceNode {
            node,
            tuple,
            children: BTreeMap::new(),
        }
    }

    /// Append a child instance under `child_node`.
    pub fn push_child(&mut self, child: VoInstanceNode) {
        self.children.entry(child.node).or_default().push(child);
    }

    /// All instance nodes for object node `id` in this subtree, in
    /// traversal order.
    pub fn collect<'a>(&'a self, id: NodeId, out: &mut Vec<&'a VoInstanceNode>) {
        if self.node == id {
            out.push(self);
        }
        for nodes in self.children.values() {
            for n in nodes {
                n.collect(id, out);
            }
        }
    }

    /// Total number of instance nodes in this subtree.
    pub fn size(&self) -> usize {
        1 + self
            .children
            .values()
            .flatten()
            .map(|n| n.size())
            .sum::<usize>()
    }
}

/// A complete view-object instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoInstance {
    /// Name of the view object this instance belongs to.
    pub object: String,
    /// The pivot instance node.
    pub root: VoInstanceNode,
}

impl VoInstance {
    /// The instance's object key (the pivot tuple's key).
    pub fn key(&self, schema: &StructuralSchema, object: &ViewObject) -> Result<Key> {
        let pivot = schema.catalog().relation(object.pivot())?;
        Ok(self.root.tuple.key(pivot))
    }

    /// All tuples for object node `id`, in traversal order.
    pub fn tuples_of(&self, id: NodeId) -> Vec<&Tuple> {
        let mut nodes = Vec::new();
        self.root.collect(id, &mut nodes);
        nodes.into_iter().map(|n| &n.tuple).collect()
    }

    /// All instance nodes for object node `id`.
    pub fn nodes_of(&self, id: NodeId) -> Vec<&VoInstanceNode> {
        let mut nodes = Vec::new();
        self.root.collect(id, &mut nodes);
        nodes
    }

    /// Total number of tuples bound into the instance.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Render the instance in the paper's Figure 4 notation, showing only
    /// projected attributes:
    ///
    /// ```text
    /// (COURSES: course_id='CS345', ...
    ///   (DEPARTMENT: dept_name='Computer Science')
    ///   ...)
    /// ```
    pub fn to_display_string(
        &self,
        schema: &StructuralSchema,
        object: &ViewObject,
    ) -> Result<String> {
        let mut out = String::new();
        render_node(schema, object, &self.root, 0, &mut out)?;
        Ok(out)
    }
}

fn render_node(
    schema: &StructuralSchema,
    object: &ViewObject,
    inst: &VoInstanceNode,
    depth: usize,
    out: &mut String,
) -> Result<()> {
    let node = object.node(inst.node);
    let rel_schema = schema.catalog().relation(&node.relation)?;
    for _ in 0..depth {
        out.push_str("  ");
    }
    let fields: Vec<String> = node
        .attrs
        .iter()
        .map(|a| {
            inst.tuple
                .get_named(rel_schema, a)
                .map(|v| format!("{a}={v}"))
        })
        .collect::<Result<_>>()?;
    out.push_str(&format!("({}: {}", node.relation, fields.join(", ")));
    if inst.children.values().all(|v| v.is_empty()) && node.children.is_empty() {
        out.push(')');
        out.push('\n');
        return Ok(());
    }
    out.push('\n');
    for &child in &node.children {
        if let Some(instances) = inst.children.get(&child) {
            for ci in instances {
                render_node(schema, object, ci, depth + 1, out)?;
            }
        }
    }
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(")\n");
    Ok(())
}

/// Assemble the instance anchored on `root_tuple` by following the
/// object's edges through the database (the query model's "binding of the
/// set of relational tuples ... to the view object's structure").
pub fn assemble(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
    root_tuple: Tuple,
) -> Result<VoInstance> {
    let root = assemble_node(schema, object, db, 0, root_tuple)?;
    Ok(VoInstance {
        object: object.name().to_owned(),
        root,
    })
}

fn assemble_node(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
    node: NodeId,
    tuple: Tuple,
) -> Result<VoInstanceNode> {
    let mut inst = VoInstanceNode::leaf(node, tuple);
    for &child in &object.node(node).children {
        let terminals = follow_edge(schema, object, db, node, child, &inst.tuple)?;
        for t in terminals {
            let ci = assemble_node(schema, object, db, child, t)?;
            inst.push_child(ci);
        }
    }
    Ok(inst)
}

/// Follow the (possibly multi-step) edge from `parent`'s tuple to the
/// tuples of `child`'s relation, deduplicating terminal tuples by key.
///
/// This is the tuple-at-a-time path, retained as the semantic reference
/// for the batched engine ([`follow_edge_batch`]). Step resolution and
/// attribute-position lookups are hoisted out of the per-tuple loop.
pub fn follow_edge(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
    parent: NodeId,
    child: NodeId,
    parent_tuple: &Tuple,
) -> Result<Vec<Tuple>> {
    let edge = object
        .node(child)
        .edge
        .as_ref()
        .ok_or_else(|| Error::InvalidPlan("child node without edge".into()))?;
    if object.node(child).parent != Some(parent) {
        return Err(Error::InvalidPlan(format!(
            "node {child} is not a child of node {parent}"
        )));
    }
    let mut at = object.node(parent).relation.clone();
    let mut frontier: Vec<Tuple> = vec![parent_tuple.clone()];
    for step in &edge.steps {
        let t = step.resolve(schema)?;
        if t.source() != at {
            return Err(Error::InvalidPlan(format!(
                "edge step over {} starts at {}, but the traversal is at {at}",
                step.connection,
                t.source()
            )));
        }
        let src_indices = db.table(&at)?.schema().indices_of(t.source_attrs())?;
        let target = db.table(t.target())?;
        let target_indices = target.schema().indices_of(t.target_attrs())?;
        let mut next = Vec::new();
        for tuple in &frontier {
            let vals = tuple.project(&src_indices);
            if vals.iter().any(Value::is_null) {
                continue; // NULL never connects (Definition 2.1)
            }
            for m in target.find_by_indices(&target_indices, &vals) {
                next.push(m.clone());
            }
        }
        at = t.target().to_owned();
        frontier = next;
    }
    // dedup terminals by key
    let term_schema = db.table(&object.node(child).relation)?.schema();
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::new();
    for t in frontier {
        if seen.insert(t.key(term_schema)) {
            out.push(t);
        }
    }
    Ok(out)
}

/// One prepared traversal step: relation names and attribute positions
/// resolved once, so executing the step is pure position arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepPlan {
    /// Relation the step starts at.
    pub source: String,
    /// Relation the step arrives at.
    pub target: String,
    /// Positions of the connecting attributes in `source` tuples.
    pub source_indices: Vec<usize>,
    /// Names of the connecting attributes in `target` (the attributes a
    /// secondary index must cover for indexed probing).
    pub target_attrs: Vec<String>,
    /// Positions of the connecting attributes in `target` tuples.
    pub target_indices: Vec<usize>,
}

/// A fully resolved object edge: the prepared steps from the parent
/// node's relation to the child node's relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgePlan {
    /// Parent node id.
    pub parent: NodeId,
    /// Child node id (the node this edge instantiates).
    pub child: NodeId,
    /// Prepared steps, in traversal order (non-empty).
    pub steps: Vec<StepPlan>,
    /// The child node's relation (the last step's target).
    pub terminal: String,
}

impl EdgePlan {
    /// The `(relation, attrs)` pairs a database should index so every
    /// step of this edge probes instead of scanning.
    pub fn required_indexes(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.steps
            .iter()
            .map(|s| (s.target.as_str(), s.target_attrs.as_slice()))
    }
}

/// Resolve the edge into `child` once: connection lookups, direction, and
/// attribute positions. Fails with [`Error::InvalidPlan`] when the edge's
/// step chain does not connect the parent's relation to the child's.
pub fn plan_edge(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
    child: NodeId,
) -> Result<EdgePlan> {
    let node = object.node(child);
    let edge = node
        .edge
        .as_ref()
        .ok_or_else(|| Error::InvalidPlan("child node without edge".into()))?;
    let parent = node
        .parent
        .ok_or_else(|| Error::InvalidPlan("child node without parent".into()))?;
    let mut at = object.node(parent).relation.clone();
    let mut steps = Vec::with_capacity(edge.steps.len());
    for step in &edge.steps {
        let t = step.resolve(schema)?;
        if t.source() != at {
            return Err(Error::InvalidPlan(format!(
                "edge step over {} starts at {}, but the path is at {at}",
                step.connection,
                t.source()
            )));
        }
        let source_indices = db.table(&at)?.schema().indices_of(t.source_attrs())?;
        let target_indices = db
            .table(t.target())?
            .schema()
            .indices_of(t.target_attrs())?;
        steps.push(StepPlan {
            source: at.clone(),
            target: t.target().to_owned(),
            source_indices,
            target_attrs: t.target_attrs().to_vec(),
            target_indices,
        });
        at = t.target().to_owned();
    }
    if at != node.relation {
        return Err(Error::InvalidPlan(format!(
            "edge into node {child} ends at {at}, expected {}",
            node.relation
        )));
    }
    Ok(EdgePlan {
        parent,
        child,
        steps,
        terminal: node.relation.clone(),
    })
}

/// Execute one prepared step over a whole frontier: each input is a
/// `(origin, tuple)` pair, and every match inherits its input's origin.
/// With a secondary index on the target's connecting attributes each
/// probe is an index lookup; otherwise ONE hash table is built over the
/// target and probed for every input — never a per-input scan.
pub(crate) fn probe_step(
    step: &StepPlan,
    db: &Database,
    inputs: &[(usize, &Tuple)],
) -> Result<Vec<(usize, Tuple)>> {
    let target = db.table(&step.target)?;
    let mut out = Vec::new();
    let indexed = target.has_index_at(&step.target_indices);
    // Counter bumps are aggregated locally and recorded once per frontier
    // pass: parallel workers otherwise serialize on the shared counter
    // cache lines, one relaxed RMW per input tuple.
    let mut probes = 0u64;
    let mut rows = 0u64;
    if indexed {
        for &(origin, tuple) in inputs {
            let vals = tuple.project(&step.source_indices);
            if vals.iter().any(Value::is_null) {
                continue; // NULL never connects (Definition 2.1)
            }
            let matches = target
                .probe_index_at(&step.target_indices, &vals)
                .expect("index presence checked via has_index_at");
            probes += 1;
            rows += matches.len() as u64;
            out.extend(matches.into_iter().map(|m| (origin, m.clone())));
        }
    } else {
        let groups = target.group_by_indices(&step.target_indices);
        for &(origin, tuple) in inputs {
            let vals = tuple.project(&step.source_indices);
            if vals.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = groups.get(&vals) {
                rows += matches.len() as u64;
                out.extend(matches.iter().map(|m| (origin, (*m).clone())));
            }
        }
    }
    if probes > 0 {
        vo_relational::stats::count_index_probes(probes);
    }
    if rows > 0 {
        vo_relational::stats::count_join_rows(rows);
    }
    trace::debug_event_with("core.probe_step", || {
        vec![
            ("source", Json::str(step.source.clone())),
            ("target", Json::str(step.target.clone())),
            ("access", Json::str(step_access_label(indexed))),
            ("rows_in", Json::Int(inputs.len() as i64)),
            ("rows_out", Json::Int(out.len() as i64)),
        ]
    });
    Ok(out)
}

/// Access-path label for one edge step, keyed off the same index check
/// [`probe_step`] makes — `index probe` when a secondary index covers the
/// target's connecting attributes, `hash build (scan)` when the step falls
/// back to scanning the target into a hash table.
fn step_access_label(indexed: bool) -> &'static str {
    if indexed {
        "index probe"
    } else {
        "hash build (scan)"
    }
}

/// Follow a prepared edge for every parent tuple at once. Returns one
/// terminal list per parent, each deduplicated by key in first-seen
/// order — exactly what [`follow_edge`] returns per parent, computed with
/// one join pass per step over the whole frontier.
pub fn follow_edge_batch(
    plan: &EdgePlan,
    db: &Database,
    parents: &[&Tuple],
) -> Result<Vec<Vec<Tuple>>> {
    follow_edge_batch_inner(plan, db, parents, None)
}

/// [`follow_edge_batch`] with an optional per-step profile sink: when
/// `profile` is `Some`, one [`ProfileNode`] per step (access path, rows
/// in/out, elapsed time) is appended to it.
fn follow_edge_batch_inner(
    plan: &EdgePlan,
    db: &Database,
    parents: &[&Tuple],
    mut profile: Option<&mut Vec<ProfileNode>>,
) -> Result<Vec<Vec<Tuple>>> {
    if plan.steps.is_empty() {
        return Err(Error::InvalidPlan("edge plan without steps".into()));
    }
    let mut frontier: Vec<(usize, Tuple)> = Vec::new();
    for (i, step) in plan.steps.iter().enumerate() {
        let inputs: Vec<(usize, &Tuple)> = if i == 0 {
            parents.iter().copied().enumerate().collect()
        } else {
            frontier.iter().map(|(o, t)| (*o, t)).collect()
        };
        let rows_in = inputs.len();
        let start = profile.as_ref().map(|_| Instant::now());
        frontier = probe_step(step, db, &inputs)?;
        if let Some(sink) = profile.as_deref_mut() {
            let indexed = db.table(&step.target)?.has_index_at(&step.target_indices);
            let mut node = ProfileNode::new(format!("Step[{} -> {}]", step.source, step.target));
            node.access_path = step_access_label(indexed).to_owned();
            node.rows_in = rows_in as u64;
            node.rows_out = frontier.len() as u64;
            if let Some(s) = start {
                node.set_elapsed(s.elapsed());
            }
            sink.push(node);
        }
    }
    let term_schema = db.table(&plan.terminal)?.schema();
    let mut out: Vec<Vec<Tuple>> = vec![Vec::new(); parents.len()];
    let mut seen: Vec<std::collections::BTreeSet<Key>> =
        vec![std::collections::BTreeSet::new(); parents.len()];
    for (origin, t) in frontier {
        if seen[origin].insert(t.key(term_schema)) {
            out[origin].push(t);
        }
    }
    Ok(out)
}

/// Every edge of an object resolved into [`EdgePlan`]s, stamped with the
/// database structure epoch it was prepared against. A plan prepared at
/// epoch `e` stays valid through any number of tuple-level updates; any
/// structural change (relation created/dropped, index created, a table
/// borrowed mutably) moves the epoch and invalidates it.
#[derive(Debug, Clone)]
pub struct ObjectPlan {
    object: String,
    /// One plan per non-root node; position `id - 1` holds node `id`'s.
    edges: Vec<EdgePlan>,
    epoch: u64,
}

impl ObjectPlan {
    /// Name of the object this plan was prepared for.
    pub fn object(&self) -> &str {
        &self.object
    }

    /// The structure epoch the plan was prepared at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when the plan was prepared at `db`'s current structure epoch.
    pub fn is_current(&self, db: &Database) -> bool {
        self.epoch == db.structure_epoch()
    }

    /// The prepared edge into node `child`.
    pub fn edge(&self, child: NodeId) -> Result<&EdgePlan> {
        self.edges
            .get(child.wrapping_sub(1))
            .filter(|e| e.child == child)
            .ok_or_else(|| Error::InvalidPlan(format!("no edge plan for node {child}")))
    }

    /// All `(relation, attrs)` pairs the plan wants indexed, deduplicated.
    pub fn required_indexes(&self) -> Vec<(String, Vec<String>)> {
        let mut set = std::collections::BTreeSet::new();
        for e in &self.edges {
            for (rel, attrs) in e.required_indexes() {
                set.insert((rel.to_owned(), attrs.to_vec()));
            }
        }
        set.into_iter().collect()
    }
}

/// Prepare every edge of `object` against `db`'s current structure.
pub fn plan_object(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
) -> Result<ObjectPlan> {
    let mut edges = Vec::with_capacity(object.nodes().len().saturating_sub(1));
    for node in object.nodes().iter().skip(1) {
        edges.push(plan_edge(schema, object, db, node.id)?);
    }
    Ok(ObjectPlan {
        object: object.name().to_owned(),
        edges,
        epoch: db.structure_epoch(),
    })
}

/// Instantiate the object for every pivot in `pivots` using a prepared
/// plan: one batched join pass per edge step over the whole frontier
/// (set-at-a-time), instead of re-resolving and re-probing per tuple.
/// Instances come back in pivot order and are node-for-node identical to
/// per-tuple [`assemble`].
pub fn instantiate_many_planned(
    object: &ViewObject,
    db: &Database,
    plan: &ObjectPlan,
    pivots: &[&Tuple],
) -> Result<Vec<VoInstance>> {
    instantiate_planned_inner(object, db, plan, pivots, None)
}

/// [`instantiate_many_planned`], additionally returning a structured
/// profile of the instantiation: the root node covers the whole call, one
/// child per object edge (in instantiation order), and one grandchild per
/// edge step carrying the access path actually taken (`index probe` vs
/// `hash build (scan)`), rows in/out and elapsed time.
pub fn instantiate_many_profiled(
    object: &ViewObject,
    db: &Database,
    plan: &ObjectPlan,
    pivots: &[&Tuple],
) -> Result<(Vec<VoInstance>, ProfileNode)> {
    let start = Instant::now();
    let mut root = ProfileNode::new(format!("Instantiate({})", object.name()));
    let instances = instantiate_planned_inner(object, db, plan, pivots, Some(&mut root))?;
    root.rows_in = pivots.len() as u64;
    root.rows_out = instances.len() as u64;
    root.set_elapsed(start.elapsed());
    Ok((instances, root))
}

fn instantiate_planned_inner(
    object: &ViewObject,
    db: &Database,
    plan: &ObjectPlan,
    pivots: &[&Tuple],
    mut profile: Option<&mut ProfileNode>,
) -> Result<Vec<VoInstance>> {
    if plan.object != object.name() {
        return Err(Error::InvalidPlan(format!(
            "plan prepared for object {}, used with {}",
            plan.object,
            object.name()
        )));
    }
    let mut sp = trace::span("core.instantiate");
    let n = object.nodes().len();
    // rows[id]: every tuple bound at node id across all instances, in
    // parent-major order; parent_row[id][k]: index into rows[parent] of
    // row k's parent.
    let mut rows: Vec<Vec<Tuple>> = vec![Vec::new(); n];
    let mut parent_row: Vec<Vec<usize>> = vec![Vec::new(); n];
    rows[0] = pivots.iter().map(|t| (*t).clone()).collect();
    let order = object.preorder();
    for &id in order.iter().skip(1) {
        let eplan = plan.edge(id)?;
        let parent_refs: Vec<&Tuple> = rows[eplan.parent].iter().collect();
        let per_parent = if let Some(prof) = profile.as_deref_mut() {
            let start = Instant::now();
            let mut steps = Vec::new();
            let per_parent = follow_edge_batch_inner(eplan, db, &parent_refs, Some(&mut steps))?;
            let mut node = ProfileNode::new(format!(
                "Edge[{} -> {}]",
                object.node(eplan.parent).relation,
                eplan.terminal
            ));
            node.access_path = edge_access_label(&steps);
            node.rows_in = parent_refs.len() as u64;
            node.rows_out = per_parent.iter().map(Vec::len).sum::<usize>() as u64;
            node.set_elapsed(start.elapsed());
            node.children = steps;
            prof.children.push(node);
            per_parent
        } else {
            follow_edge_batch(eplan, db, &parent_refs)?
        };
        let mut r = Vec::new();
        let mut pr = Vec::new();
        for (j, terminals) in per_parent.into_iter().enumerate() {
            for t in terminals {
                r.push(t);
                pr.push(j);
            }
        }
        rows[id] = r;
        parent_row[id] = pr;
    }
    // Stitch bottom-up: reverse preorder guarantees every child level is
    // assembled before its parent attaches it.
    let mut built: Vec<Vec<VoInstanceNode>> = vec![Vec::new(); n];
    for &id in order.iter().rev() {
        let mut insts: Vec<VoInstanceNode> = std::mem::take(&mut rows[id])
            .into_iter()
            .map(|t| VoInstanceNode::leaf(id, t))
            .collect();
        for &c in &object.node(id).children {
            for (k, ci) in std::mem::take(&mut built[c]).into_iter().enumerate() {
                insts[parent_row[c][k]].push_child(ci);
            }
        }
        built[id] = insts;
    }
    let roots = std::mem::take(&mut built[0]);
    vo_relational::stats::count_instances_built(roots.len() as u64);
    if sp.is_recording() {
        sp.field("object", Json::str(object.name()));
        sp.field("pivots", Json::Int(pivots.len() as i64));
        sp.field("instances", Json::Int(roots.len() as i64));
    }
    Ok(roots
        .into_iter()
        .map(|root| VoInstance {
            object: object.name().to_owned(),
            root,
        })
        .collect())
}

/// Summarize an edge's access path from its step profiles: the single
/// shared label when every step agrees, `mixed` otherwise.
fn edge_access_label(steps: &[ProfileNode]) -> String {
    let mut labels: Vec<&str> = steps.iter().map(|s| s.access_path.as_str()).collect();
    labels.dedup();
    match labels.as_slice() {
        [only] => (*only).to_owned(),
        _ => "mixed".to_owned(),
    }
}

// The parallel engine hands `&ObjectPlan` and the instances it builds
// across worker threads; pin their thread-safety at compile time.
const _: fn() = vo_exec::assert_send_sync::<ObjectPlan>;
const _: fn() = vo_exec::assert_send_sync::<EdgePlan>;
const _: fn() = vo_exec::assert_send_sync::<VoInstance>;

/// Instantiate the object for every pivot in `pivots` on up to `workers`
/// threads: the pivot set is split into contiguous chunks
/// ([`vo_exec::partition`]), each chunk runs the batched probe pipeline
/// ([`instantiate_many_planned`]) against the shared immutable database,
/// and per-chunk results are concatenated in chunk order.
///
/// **Determinism:** pivot tuples are independent work units (each instance
/// derives from exactly one pivot plus edge probes; per-parent terminal
/// dedup never crosses pivots), and chunks are contiguous in pivot order,
/// so the output is **identical — order and content — to the sequential
/// path** at every worker count. `workers <= 1` (or fewer than two
/// pivots) runs the sequential path inline with zero thread spawn.
///
/// Tracing: the fork point opens a `core.instantiate_parallel` span and
/// hands its id to every worker ([`trace::link_parent`]), so each chunk's
/// `core.instantiate` span — recorded into the shared collector at worker
/// join — parents into the caller's tree and profiles stay coherent under
/// parallelism.
pub fn instantiate_many_parallel(
    object: &ViewObject,
    db: &Database,
    plan: &ObjectPlan,
    pivots: &[&Tuple],
    workers: usize,
) -> Result<Vec<VoInstance>> {
    if workers <= 1 || pivots.len() < 2 {
        return instantiate_many_planned(object, db, plan, pivots);
    }
    let mut sp = trace::span("core.instantiate_parallel");
    let fork = trace::current_span_id();
    let chunks = vo_exec::partition(pivots.len(), workers).len();
    let instances = vo_exec::map_chunks(pivots, workers, |_, chunk| {
        let _link = trace::link_parent(fork);
        instantiate_planned_inner(object, db, plan, chunk, None)
    })?;
    if sp.is_recording() {
        sp.field("object", Json::str(object.name()));
        sp.field("pivots", Json::Int(pivots.len() as i64));
        sp.field("workers", Json::Int(chunks as i64));
        sp.field("instances", Json::Int(instances.len() as i64));
    }
    Ok(instances)
}

/// Assemble every instance of `object` (one per pivot tuple) on up to
/// `workers` threads — the parallel counterpart of [`instantiate_all`].
/// Output is identical to the sequential path at every worker count.
pub fn instantiate_all_parallel(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
    workers: usize,
) -> Result<Vec<VoInstance>> {
    let plan = plan_object(schema, object, db)?;
    let pivots: Vec<&Tuple> = db.table(object.pivot())?.scan().collect();
    instantiate_many_parallel(object, db, &plan, &pivots, workers)
}

/// Plan and batch-instantiate in one call.
pub fn instantiate_many(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
    pivots: &[&Tuple],
) -> Result<Vec<VoInstance>> {
    let plan = plan_object(schema, object, db)?;
    instantiate_many_planned(object, db, &plan, pivots)
}

/// Assemble every instance of `object` (one per pivot tuple), batched:
/// edges are planned once and each edge step joins the whole frontier in
/// one pass. Pivot tuples are borrowed from the table scan and cloned
/// only into their instances.
pub fn instantiate_all(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
) -> Result<Vec<VoInstance>> {
    let plan = plan_object(schema, object, db)?;
    let pivots: Vec<&Tuple> = db.table(object.pivot())?.scan().collect();
    instantiate_many_planned(object, db, &plan, &pivots)
}

/// The original tuple-at-a-time instantiation: one [`assemble`] per pivot
/// tuple. Kept as the semantic oracle for the batched engine and as the
/// baseline the experiments compare against.
pub fn instantiate_all_legacy(
    schema: &StructuralSchema,
    object: &ViewObject,
    db: &Database,
) -> Result<Vec<VoInstance>> {
    db.table(object.pivot())?
        .scan()
        .map(|t| assemble(schema, object, db, t.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treegen::{generate_omega, generate_omega_prime};
    use crate::university::university_database;

    #[test]
    fn assembles_cs345_instance() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let courses = db.table("COURSES").unwrap();
        let t = courses.get(&Key::single("CS345")).unwrap().clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        assert_eq!(inst.key(&schema, &omega).unwrap(), Key::single("CS345"));
        // children: 1 department, 2 curriculum rows, 3 grades, 3 students
        let dep = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "DEPARTMENT")
            .unwrap()
            .id;
        let cur = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "CURRICULUM")
            .unwrap()
            .id;
        let gra = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "GRADES")
            .unwrap()
            .id;
        let stu = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "STUDENT")
            .unwrap()
            .id;
        assert_eq!(inst.tuples_of(dep).len(), 1);
        assert_eq!(inst.tuples_of(cur).len(), 2);
        assert_eq!(inst.tuples_of(gra).len(), 3);
        assert_eq!(inst.tuples_of(stu).len(), 3);
        assert_eq!(inst.size(), 1 + 1 + 2 + 3 + 3);
    }

    #[test]
    fn multi_step_edge_instantiates_students_directly() {
        let (schema, db) = university_database();
        let op = generate_omega_prime(&schema).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &op, &db, t).unwrap();
        let stu = op
            .nodes()
            .iter()
            .find(|n| n.relation == "STUDENT")
            .unwrap()
            .id;
        // 3 enrolled students, reached through GRADES without a GRADES node
        assert_eq!(inst.tuples_of(stu).len(), 3);
    }

    #[test]
    fn dedups_terminal_tuples_on_contracted_paths() {
        let (schema, mut db) = university_database();
        // give student 1 a second grade row in CS345? impossible (same key);
        // instead: faculty reached via DEPARTMENT→PEOPLE dedups when two
        // people rows share the department — here each person is one row, so
        // count faculty of Computer Science
        let op = generate_omega_prime(&schema).unwrap();
        let fac = op
            .nodes()
            .iter()
            .find(|n| n.relation == "FACULTY")
            .unwrap()
            .id;
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &op, &db, t.clone()).unwrap();
        assert_eq!(inst.tuples_of(fac).len(), 2); // faculty 20 and 21

        // an extra CS course does not change the faculty set for CS345
        db.insert(
            "COURSES",
            vec![
                "CS999".into(),
                "X".into(),
                "graduate".into(),
                "Computer Science".into(),
            ],
        )
        .unwrap();
        let inst2 = assemble(&schema, &op, &db, t).unwrap();
        assert_eq!(inst2.tuples_of(fac).len(), 2);
    }

    #[test]
    fn null_links_yield_no_children() {
        let (schema, mut db) = university_database();
        db.insert(
            "COURSES",
            vec![
                "X1".into(),
                "Detached".into(),
                "graduate".into(),
                Value::Null,
            ],
        )
        .unwrap();
        let omega = generate_omega(&schema).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("X1"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        let dep = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "DEPARTMENT")
            .unwrap()
            .id;
        assert!(inst.tuples_of(dep).is_empty());
    }

    #[test]
    fn instantiate_all_yields_one_per_pivot_tuple() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let all = instantiate_all(&schema, &omega, &db).unwrap();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn follow_edge_rejects_non_child_node() {
        // regression: this used to be a debug_assert, i.e. silently wrong
        // answers in release builds when parent/child are not adjacent
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let stu = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "STUDENT")
            .unwrap()
            .id;
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        // STUDENT's parent is GRADES, not the pivot
        let err = follow_edge(&schema, &omega, &db, 0, stu, &t).unwrap_err();
        assert!(matches!(err, Error::InvalidPlan(_)), "got {err}");
        // and the pivot itself has no edge at all
        let err = follow_edge(&schema, &omega, &db, 0, 0, &t).unwrap_err();
        assert!(matches!(err, Error::InvalidPlan(_)));
    }

    #[test]
    fn batched_matches_legacy_on_university() {
        let (schema, mut db) = university_database();
        // add a NULL-linked and a dangling pivot so both paths must agree
        // on the edge cases too
        db.insert(
            "COURSES",
            vec![
                "X1".into(),
                "Detached".into(),
                "graduate".into(),
                Value::Null,
            ],
        )
        .unwrap();
        for object in [
            generate_omega(&schema).unwrap(),
            generate_omega_prime(&schema).unwrap(),
        ] {
            let legacy = instantiate_all_legacy(&schema, &object, &db).unwrap();
            let batched = instantiate_all(&schema, &object, &db).unwrap();
            assert_eq!(legacy, batched, "object {}", object.name());
        }
    }

    #[test]
    fn batched_is_equivalent_with_and_without_indexes() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let bare = instantiate_all(&schema, &omega, &db).unwrap();
        let plan = plan_object(&schema, &omega, &db).unwrap();
        for (rel, attrs) in plan.required_indexes() {
            assert!(db.ensure_index(&rel, &attrs).unwrap());
        }
        let indexed = instantiate_all(&schema, &omega, &db).unwrap();
        assert_eq!(bare, indexed);
    }

    #[test]
    fn object_plan_tracks_structure_epoch() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let plan = plan_object(&schema, &omega, &db).unwrap();
        assert!(plan.is_current(&db));
        // data changes keep the plan valid
        db.insert(
            "COURSES",
            vec!["Z9".into(), "T".into(), "graduate".into(), Value::Null],
        )
        .unwrap();
        assert!(plan.is_current(&db));
        // an index build invalidates it
        db.ensure_index("GRADES", &["course_id".to_string()])
            .unwrap();
        assert!(!plan.is_current(&db));
    }

    #[test]
    fn plan_reports_required_indexes() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let plan = plan_object(&schema, &omega, &db).unwrap();
        let req = plan.required_indexes();
        // every edge target appears: DEPARTMENT, CURRICULUM, GRADES, STUDENT
        let rels: Vec<&str> = req.iter().map(|(r, _)| r.as_str()).collect();
        for rel in ["CURRICULUM", "DEPARTMENT", "GRADES", "STUDENT"] {
            assert!(rels.contains(&rel), "{rel} missing from {rels:?}");
        }
    }

    #[test]
    fn profiled_instantiation_matches_planned_and_labels_access() {
        let (schema, mut db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let plan = plan_object(&schema, &omega, &db).unwrap();
        {
            let pivots: Vec<&Tuple> = db.table("COURSES").unwrap().scan().collect();
            let plain = instantiate_many_planned(&omega, &db, &plan, &pivots).unwrap();
            let (profiled, prof) = instantiate_many_profiled(&omega, &db, &plan, &pivots).unwrap();
            assert_eq!(plain, profiled);
            assert!(prof.label.contains("Instantiate(omega)"), "{}", prof.label);
            assert_eq!(prof.rows_in, 3);
            assert_eq!(prof.rows_out, 3);
            // one child per non-root object node, each with >= 1 step
            assert_eq!(prof.children.len(), omega.nodes().len() - 1);
            assert!(prof.children.iter().all(|e| !e.children.is_empty()));
            // without secondary indexes every step hash-builds over a scan
            assert!(prof.any(&|n| n.access_path == "hash build (scan)"));
            assert!(!prof.any(&|n| n.access_path == "index probe"));
        }
        // index every edge target and re-plan: all steps become probes
        for (rel, attrs) in plan.required_indexes() {
            db.ensure_index(&rel, &attrs).unwrap();
        }
        let plan = plan_object(&schema, &omega, &db).unwrap();
        let pivots: Vec<&Tuple> = db.table("COURSES").unwrap().scan().collect();
        let (_, prof) = instantiate_many_profiled(&omega, &db, &plan, &pivots).unwrap();
        assert!(
            !prof.any(&|n| n.access_path.contains("scan")),
            "{}",
            prof.render()
        );
        assert!(prof.any(&|n| n.access_path == "index probe"));
        let grades = prof.find("Edge[COURSES -> GRADES]").unwrap();
        assert_eq!(grades.access_path, "index probe");
        assert_eq!(grades.rows_out, 17); // all GRADES rows bind across the 3 pivots
    }

    #[test]
    fn instantiation_emits_spans_and_probe_events() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let scope = vo_obs::trace::start_trace();
        instantiate_all(&schema, &omega, &db).unwrap();
        let me = vo_obs::trace::current_thread_id();
        let mine: Vec<_> = vo_obs::trace::events()
            .into_iter()
            .filter(|e| e.thread == me)
            .collect();
        drop(scope);
        let inst = mine
            .iter()
            .find(|e| e.name == "core.instantiate")
            .expect("instantiate span recorded");
        assert_eq!(inst.field("object").unwrap(), &Json::str("omega"));
        assert_eq!(inst.field("instances").unwrap(), &Json::Int(3));
        let probes: Vec<_> = mine
            .iter()
            .filter(|e| e.name == "core.probe_step")
            .collect();
        assert_eq!(probes.len(), 4); // one batched step per edge
        assert!(probes
            .iter()
            .all(|p| p.field("access").unwrap() == &Json::str("hash build (scan)")));
    }

    #[test]
    fn parallel_matches_sequential_at_every_worker_count() {
        let (schema, mut db) = university_database();
        db.insert(
            "COURSES",
            vec![
                "X1".into(),
                "Detached".into(),
                "graduate".into(),
                Value::Null,
            ],
        )
        .unwrap();
        for object in [
            generate_omega(&schema).unwrap(),
            generate_omega_prime(&schema).unwrap(),
        ] {
            let sequential = instantiate_all(&schema, &object, &db).unwrap();
            for workers in [1usize, 2, 3, 7, 64] {
                let parallel = instantiate_all_parallel(&schema, &object, &db, workers).unwrap();
                assert_eq!(sequential, parallel, "object {} k={workers}", object.name());
            }
        }
    }

    #[test]
    fn parallel_worker_spans_parent_into_fork_span() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let plan = plan_object(&schema, &omega, &db).unwrap();
        let pivots: Vec<&Tuple> = db.table("COURSES").unwrap().scan().collect();
        let scope = vo_obs::trace::start_trace();
        instantiate_many_parallel(&omega, &db, &plan, &pivots, 3).unwrap();
        let me = vo_obs::trace::current_thread_id();
        let evs = vo_obs::trace::events();
        drop(scope);
        // other tests may trace concurrently; our fork span is the one on
        // this thread, and chunk spans are tied to it by parent id
        let fork = evs
            .iter()
            .rfind(|e| e.thread == me && e.name == "core.instantiate_parallel")
            .expect("fork span recorded");
        assert_eq!(fork.field("object").unwrap(), &Json::str("omega"));
        assert_eq!(fork.field("pivots").unwrap(), &Json::Int(3));
        assert_eq!(fork.field("workers").unwrap(), &Json::Int(3));
        assert_eq!(fork.field("instances").unwrap(), &Json::Int(3));
        // every chunk's core.instantiate span links back to the fork span,
        // each from its own worker thread
        let chunks: Vec<_> = evs
            .iter()
            .filter(|e| e.name == "core.instantiate" && e.parent == Some(fork.id))
            .collect();
        assert_eq!(chunks.len(), 3, "one merged chunk span per worker");
        let threads: std::collections::BTreeSet<u64> = chunks.iter().map(|e| e.thread).collect();
        assert_eq!(threads.len(), 3);
    }

    #[test]
    fn parallel_falls_back_to_sequential_inline() {
        // workers=1 and tiny pivot sets must not spawn: the chunk span is
        // recorded on the calling thread with no parallel fork span.
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let plan = plan_object(&schema, &omega, &db).unwrap();
        let pivots: Vec<&Tuple> = db.table("COURSES").unwrap().scan().collect();
        let one = &pivots[..1];
        let scope = vo_obs::trace::start_trace();
        instantiate_many_parallel(&omega, &db, &plan, one, 8).unwrap();
        instantiate_many_parallel(&omega, &db, &plan, &pivots, 1).unwrap();
        let me = vo_obs::trace::current_thread_id();
        let mine: Vec<_> = vo_obs::trace::events()
            .into_iter()
            .filter(|e| e.thread == me)
            .collect();
        drop(scope);
        assert!(mine.iter().any(|e| e.name == "core.instantiate"));
        assert!(!mine.iter().any(|e| e.name == "core.instantiate_parallel"));
    }

    #[test]
    fn parallel_handles_empty_pivot_set() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let plan = plan_object(&schema, &omega, &db).unwrap();
        let none: Vec<&Tuple> = Vec::new();
        assert!(instantiate_many_parallel(&omega, &db, &plan, &none, 4)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn parallel_surfaces_plan_errors() {
        // a plan prepared for one object used with another must fail the
        // same way it does sequentially, from whichever chunk hits it
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let op = generate_omega_prime(&schema).unwrap();
        let plan = plan_object(&schema, &op, &db).unwrap();
        let pivots: Vec<&Tuple> = db.table("COURSES").unwrap().scan().collect();
        let err = instantiate_many_parallel(&omega, &db, &plan, &pivots, 2).unwrap_err();
        assert!(matches!(err, Error::InvalidPlan(_)), "got {err}");
    }

    #[test]
    fn display_matches_figure_4_shape() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        let inst = assemble(&schema, &omega, &db, t).unwrap();
        let s = inst.to_display_string(&schema, &omega).unwrap();
        assert!(s.starts_with("(COURSES: course_id='CS345'"));
        assert!(s.contains("(DEPARTMENT: dept_name='Computer Science')"));
        assert!(s.contains("(GRADES:"));
        assert!(s.contains("(STUDENT:"));
    }

    #[test]
    fn manual_instance_construction() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let courses = db.table("COURSES").unwrap().schema().clone();
        let t = Tuple::new(
            &courses,
            vec!["NEW1".into(), "T".into(), "graduate".into(), Value::Null],
        )
        .unwrap();
        let mut root = VoInstanceNode::leaf(0, t);
        let gra = omega
            .nodes()
            .iter()
            .find(|n| n.relation == "GRADES")
            .unwrap()
            .id;
        let grades = db.table("GRADES").unwrap().schema().clone();
        root.push_child(VoInstanceNode::leaf(
            gra,
            Tuple::new(&grades, vec!["NEW1".into(), 1.into(), "A".into()]).unwrap(),
        ));
        let inst = VoInstance {
            object: omega.name().to_owned(),
            root,
        };
        assert_eq!(inst.size(), 2);
        assert_eq!(inst.tuples_of(gra).len(), 1);
    }
}
