//! # vo-core — the view-object model and its update translation
//!
//! A from-scratch implementation of *Updating Relational Databases through
//! Object-Based Views* (Barsalou, Keller, Siambela, Wiederhold; SIGMOD
//! 1991).
//!
//! A **view object** is an uninstantiated, hierarchical window over a
//! normalized relational database: a tree of projections rooted at a
//! *pivot relation*, derived from the database's structural model
//! (`vo-structural`). Instances are assembled on demand; updates on
//! instances are translated into relational operations by translators
//! chosen once, at object-definition time, through a DBA dialog.
//!
//! The crate follows the paper section by section:
//!
//! | paper | module |
//! |-------|--------|
//! | §3 view objects, pivot, complexity | [`object`] |
//! | §3 information metric, Figure 2(a) | [`metric`] |
//! | §3 tree generation + pruning, Figures 2(b,c)/3 | [`treegen`] |
//! | §3 instantiation, Figure 4 | [`instance`], [`query`] |
//! | §5 dependency island & peninsulas (Defs. 5.1–5.2) | [`island`] |
//! | §5.1 VO-CD | [`update::delete`] |
//! | §5.2 VO-CI | [`update::insert`] |
//! | §5.3 VO-R | [`update::replace`] |
//! | §5 four-step pipeline | [`update::pipeline`] |
//! | §6 translator choice by dialog | [`translator`], [`dialog`] |
//! | Figure 1 running example | [`university`] |
//!
//! ## Quickstart
//!
//! ```
//! use vo_core::prelude::*;
//!
//! // the paper's university database (Figure 1) with Figure 4's data
//! let (schema, mut db) = university_database();
//!
//! // generate ω (Figure 2): pivot COURSES + DEPARTMENT, CURRICULUM,
//! // GRADES, STUDENT
//! let omega = generate_omega(&schema).unwrap();
//! assert_eq!(omega.complexity(), 5);
//!
//! // Figure 4's query: graduate courses with fewer than 5 students
//! let student = omega.nodes().iter().find(|n| n.relation == "STUDENT").unwrap().id;
//! let hits = VoQuery::new()
//!     .with_predicate(0, Expr::attr("level").eq(Expr::lit("graduate")))
//!     .with_count(student, CmpOp::Lt, 5)
//!     .execute(&schema, &omega, &db)
//!     .unwrap();
//! assert_eq!(hits.len(), 1);
//!
//! // choose a translator by dialog, then update through the object
//! let analysis = analyze(&schema, &omega).unwrap();
//! let mut responder = paper_dialog_responder();
//! let (translator, _transcript) =
//!     choose_translator(&schema, &omega, &analysis, &mut responder).unwrap();
//! let updater = ViewObjectUpdater::new(&schema, omega, translator).unwrap();
//! let instance = hits.into_iter().next().unwrap();
//! updater.delete(&schema, &mut db, instance).unwrap();
//! ```

pub mod codec;
pub mod dialog;
pub mod instance;
pub mod island;
pub mod maintain;
pub mod metric;
pub mod object;
pub mod query;
pub mod translator;
pub mod treegen;
pub mod university;
pub mod update;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::dialog::{
        choose_translator, paper_dialog_responder, paper_restrictive_responder, AllYes, Answer,
        DialogTranscript, FnResponder, Question, QuestionTopic, Responder, ScriptedResponder,
    };
    pub use crate::instance::{
        assemble, follow_edge, follow_edge_batch, instantiate_all, instantiate_all_legacy,
        instantiate_all_parallel, instantiate_many, instantiate_many_parallel,
        instantiate_many_planned, instantiate_many_profiled, plan_edge, plan_object, EdgePlan,
        ObjectPlan, StepPlan, VoInstance, VoInstanceNode,
    };
    pub use crate::island::{analyze, IslandAnalysis, KeySplit};
    pub use crate::maintain::{
        reverse_indexes_for, ChangeKind, InstanceChange, MaterializedView, RefreshOutcome,
        ViewStaleness,
    };
    pub use crate::metric::{extract_subgraph, MetricWeights, Subgraph};
    pub use crate::object::{NodeId, Step, ViewObject, ViewObjectBuilder, VoEdge, VoNode};
    pub use crate::query::{CountCondition, VoQuery};
    pub use crate::translator::{
        OutDeleteAction, OutModifyAction, PeninsulaAction, RelationPolicy, Translator,
    };
    pub use crate::treegen::{
        generate_omega, generate_omega_prime, generate_tree, prune, prune_by_relations, Selection,
        TemplateNode, TemplateTree,
    };
    pub use crate::university::{seed_figure4, university_database, university_schema};
    pub use crate::update::delete::{
        translate_complete_deletion, translate_complete_deletion_into,
    };
    pub use crate::update::error::{UpdateError, UpdateResult, UpdateStep};
    pub use crate::update::insert::{
        translate_complete_insertion, translate_complete_insertion_into,
    };
    pub use crate::update::partial::PartialOp;
    pub use crate::update::pipeline::{
        BatchOutcome, PreparedBatch, UpdateBatch, UpdateOutcome, UpdateStats, ViewObjectUpdater,
    };
    pub use crate::update::propagate::propagate_links;
    pub use crate::update::replace::{
        translate_replacement, translate_replacement_into, translate_replacement_traced, TraceEvent,
    };
    pub use crate::update::validate::{validate_instance, LocalValidation};
    pub use crate::update::{OpRecorder, UpdateRequest};
    pub use vo_exec::{available_parallelism, Parallelism};
    pub use vo_relational::prelude::*;
    pub use vo_structural::prelude::*;
}
