//! The paper's running example: the university database of Figure 1.
//!
//! Eight relations — DEPARTMENT, PEOPLE, STUDENT, FACULTY, STAFF,
//! CURRICULUM, COURSES, GRADES — connected so that *courses and people
//! relate to a department, a person is either a student, a faculty, or a
//! staff, a curriculum describes the required courses for a given degree,
//! and grades are associated with courses and students*.
//!
//! Connection inventory (names are used throughout tests, dialogs and
//! experiments):
//!
//! | name                | shape                                  |
//! |---------------------|----------------------------------------|
//! | `courses_dept`      | COURSES —> DEPARTMENT                  |
//! | `people_dept`       | PEOPLE —> DEPARTMENT                   |
//! | `people_student`    | PEOPLE —⊃ STUDENT                      |
//! | `people_faculty`    | PEOPLE —⊃ FACULTY                      |
//! | `people_staff`      | PEOPLE —⊃ STAFF                        |
//! | `curriculum_courses`| CURRICULUM —> COURSES                  |
//! | `courses_grades`    | COURSES —* GRADES                      |
//! | `student_grades`    | STUDENT —* GRADES                      |

use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// Build the Figure 1 structural schema.
pub fn university_schema() -> StructuralSchema {
    StructuralSchemaBuilder::new()
        .relation(
            "DEPARTMENT",
            &[("dept_name", DataType::Text)],
            &["dept_name"],
        )
        .relation(
            "PEOPLE",
            &[
                ("ssn", DataType::Int),
                ("name", DataType::Text),
                ("dept_name", DataType::Text),
            ],
            &["ssn"],
        )
        .relation(
            "STUDENT",
            &[("ssn", DataType::Int), ("degree_program", DataType::Text)],
            &["ssn"],
        )
        .relation(
            "FACULTY",
            &[("ssn", DataType::Int), ("rank", DataType::Text)],
            &["ssn"],
        )
        .relation(
            "STAFF",
            &[("ssn", DataType::Int), ("title", DataType::Text)],
            &["ssn"],
        )
        .relation(
            "COURSES",
            &[
                ("course_id", DataType::Text),
                ("title", DataType::Text),
                ("level", DataType::Text),
                ("dept_name", DataType::Text),
            ],
            &["course_id"],
        )
        .relation(
            "CURRICULUM",
            &[("degree", DataType::Text), ("course_id", DataType::Text)],
            &["degree", "course_id"],
        )
        .relation(
            "GRADES",
            &[
                ("course_id", DataType::Text),
                ("ssn", DataType::Int),
                ("grade", DataType::Text),
            ],
            &["course_id", "ssn"],
        )
        .references(
            "courses_dept",
            "COURSES",
            &["dept_name"],
            "DEPARTMENT",
            &["dept_name"],
        )
        .references(
            "people_dept",
            "PEOPLE",
            &["dept_name"],
            "DEPARTMENT",
            &["dept_name"],
        )
        .subset("people_student", "PEOPLE", &["ssn"], "STUDENT", &["ssn"])
        .subset("people_faculty", "PEOPLE", &["ssn"], "FACULTY", &["ssn"])
        .subset("people_staff", "PEOPLE", &["ssn"], "STAFF", &["ssn"])
        .references(
            "curriculum_courses",
            "CURRICULUM",
            &["course_id"],
            "COURSES",
            &["course_id"],
        )
        .owns(
            "courses_grades",
            "COURSES",
            &["course_id"],
            "GRADES",
            &["course_id"],
        )
        .owns("student_grades", "STUDENT", &["ssn"], "GRADES", &["ssn"])
        .build()
        .expect("the Figure 1 schema is valid")
}

/// Seed the database with the small data set behind Figure 4: CS345 is a
/// graduate course with 3 enrolled students; CS101 is an undergraduate
/// course with many; EE282 is a graduate course with 6.
pub fn seed_figure4(db: &mut Database) -> Result<()> {
    for d in ["Computer Science", "Electrical Engineering"] {
        db.insert("DEPARTMENT", vec![d.into()])?;
    }
    // people 1..=10 are students; 20, 21 faculty; 30 staff
    for ssn in 1..=10i64 {
        db.insert(
            "PEOPLE",
            vec![
                ssn.into(),
                format!("student-{ssn}").into(),
                "Computer Science".into(),
            ],
        )?;
        db.insert(
            "STUDENT",
            vec![ssn.into(), if ssn % 2 == 0 { "MS" } else { "PhD" }.into()],
        )?;
    }
    for ssn in [20i64, 21] {
        db.insert(
            "PEOPLE",
            vec![
                ssn.into(),
                format!("faculty-{ssn}").into(),
                "Computer Science".into(),
            ],
        )?;
        db.insert("FACULTY", vec![ssn.into(), "Professor".into()])?;
    }
    db.insert(
        "PEOPLE",
        vec![
            30.into(),
            "staff-30".into(),
            "Electrical Engineering".into(),
        ],
    )?;
    db.insert("STAFF", vec![30.into(), "Administrator".into()])?;

    db.insert(
        "COURSES",
        vec![
            "CS345".into(),
            "Database Systems".into(),
            "graduate".into(),
            "Computer Science".into(),
        ],
    )?;
    db.insert(
        "COURSES",
        vec![
            "CS101".into(),
            "Introduction".into(),
            "undergraduate".into(),
            "Computer Science".into(),
        ],
    )?;
    db.insert(
        "COURSES",
        vec![
            "EE282".into(),
            "Computer Architecture".into(),
            "graduate".into(),
            "Electrical Engineering".into(),
        ],
    )?;
    // CS345: 3 students (Figure 4's "< 5 students" instance)
    for ssn in 1..=3i64 {
        db.insert("GRADES", vec!["CS345".into(), ssn.into(), "A".into()])?;
    }
    // CS101: 8 students
    for ssn in 1..=8i64 {
        db.insert("GRADES", vec!["CS101".into(), ssn.into(), "B".into()])?;
    }
    // EE282: 6 students
    for ssn in 1..=6i64 {
        db.insert("GRADES", vec!["EE282".into(), ssn.into(), "A".into()])?;
    }
    db.insert("CURRICULUM", vec!["MS".into(), "CS345".into()])?;
    db.insert("CURRICULUM", vec!["MS".into(), "CS101".into()])?;
    db.insert("CURRICULUM", vec!["PhD".into(), "CS345".into()])?;
    Ok(())
}

/// A freshly seeded university database.
pub fn university_database() -> (StructuralSchema, Database) {
    let schema = university_schema();
    let mut db = Database::from_schema(schema.catalog());
    seed_figure4(&mut db).expect("seed data is valid");
    (schema, db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_eight_relations_eight_connections() {
        let s = university_schema();
        assert_eq!(s.catalog().len(), 8);
        assert_eq!(s.connections().len(), 8);
    }

    #[test]
    fn seeded_database_is_consistent() {
        let (schema, db) = university_database();
        assert!(check_database(&schema, &db).unwrap().is_empty());
        assert_eq!(db.table("COURSES").unwrap().len(), 3);
        assert_eq!(db.table("GRADES").unwrap().len(), 17);
    }

    #[test]
    fn schema_has_the_figure_2_circuit() {
        // the COURSES→DEPARTMENT←PEOPLE⊃STUDENT—*GRADES*—COURSES circuit
        let s = university_schema();
        assert!(s.has_circuit_from("COURSES"));
    }
}
