//! Declarative queries on view objects (paper §3's query model).
//!
//! A [`VoQuery`] attaches predicates to nodes of the object and may add
//! *cardinality conditions* over set-valued children (Figure 4's request —
//! "graduate courses with less than 5 students having enrolled" — is a
//! predicate on the pivot plus a count condition on the STUDENT node).
//!
//! Semantics:
//! - the **pivot predicate** selects candidate instances;
//! - a **node predicate** on a non-pivot node filters which child tuples
//!   are bound into the instance;
//! - a **count condition** on a node keeps only instances where the total
//!   number of tuples bound to that node compares as required;
//! - an **exists condition** keeps only instances that bind at least one
//!   tuple to the node.
//!
//! Each query also *composes with the object's structure into relational
//! plans* ([`VoQuery::pivot_plan`]): the pivot predicate plus every exists/
//! node condition on direct-edge children becomes a select-join plan on
//! base relations, mirroring the paper's "query on a view object is
//! composed dynamically with the object's structure to obtain a relational
//! query".

use crate::instance::{instantiate_many_planned, plan_object, VoInstance};
use crate::object::{NodeId, ViewObject};
use std::collections::BTreeMap;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// Comparison applied by a count condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CountCondition {
    /// The node whose bound-tuple count is tested.
    pub node: NodeId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand count.
    pub count: usize,
}

impl CountCondition {
    fn holds(&self, n: usize) -> bool {
        let (a, b) = (n, self.count);
        match self.op {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// A query over one view object.
#[derive(Debug, Clone, Default)]
pub struct VoQuery {
    /// Per-node tuple predicates (attribute names are the node relation's).
    pub node_predicates: BTreeMap<NodeId, Expr>,
    /// Cardinality conditions evaluated per instance.
    pub count_conditions: Vec<CountCondition>,
    /// Nodes that must bind at least one tuple.
    pub must_exist: Vec<NodeId>,
    /// Order instances by these pivot attributes (ascending).
    pub order_by: Vec<String>,
    /// Keep at most this many instances.
    pub limit: Option<usize>,
}

impl VoQuery {
    /// The empty query (selects every instance whole).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a predicate on `node`'s tuples.
    pub fn with_predicate(mut self, node: NodeId, pred: Expr) -> Self {
        let entry = self
            .node_predicates
            .remove(&node)
            .map(|e| e.and(pred.clone()))
            .unwrap_or(pred);
        self.node_predicates.insert(node, entry);
        self
    }

    /// Add a count condition on `node`.
    pub fn with_count(mut self, node: NodeId, op: CmpOp, count: usize) -> Self {
        self.count_conditions
            .push(CountCondition { node, op, count });
        self
    }

    /// Require at least one tuple bound to `node`.
    pub fn with_exists(mut self, node: NodeId) -> Self {
        self.must_exist.push(node);
        self
    }

    /// Order resulting instances by pivot attributes (ascending).
    pub fn with_order_by(mut self, attrs: &[&str]) -> Self {
        self.order_by.extend(attrs.iter().map(|s| (*s).to_owned()));
        self
    }

    /// Keep at most `n` instances.
    pub fn with_limit(mut self, n: usize) -> Self {
        self.limit = Some(n);
        self
    }

    /// Compose the query with the object structure into a relational plan
    /// that returns the *pivot keys* of candidate instances. Node
    /// predicates on direct-edge descendants become joins; count
    /// conditions are not expressible relationally here and are applied
    /// during [`VoQuery::execute`]'s instance filter.
    pub fn pivot_plan(&self, schema: &StructuralSchema, object: &ViewObject) -> Result<Plan> {
        let pivot_rel = object.pivot();
        let pivot_schema = schema.catalog().relation(pivot_rel)?;
        let mut plan = Plan::scan(pivot_rel);
        if let Some(pred) = self.node_predicates.get(&0) {
            plan = plan.select(qualify(pred, pivot_rel));
        }
        // join in each predicated or must-exist node connected by a chain
        // of direct edges to the pivot
        for node in object.nodes() {
            if node.id == 0 {
                continue;
            }
            let relevant =
                self.node_predicates.contains_key(&node.id) || self.must_exist.contains(&node.id);
            if !relevant {
                continue;
            }
            let Some(steps) = direct_chain(object, node.id) else {
                continue; // contracted edges are handled instance-side
            };
            let mut sub = plan;
            for step in steps {
                let t = step.resolve(schema)?;
                let on: Vec<(String, String)> = t
                    .source_attrs()
                    .iter()
                    .zip(t.target_attrs())
                    .map(|(a, b)| (format!("{}.{a}", t.source()), format!("{}.{b}", t.target())))
                    .collect();
                sub = sub.join(Plan::scan(t.target()), on);
            }
            if let Some(pred) = self.node_predicates.get(&node.id) {
                sub = sub.select(qualify(pred, &node.relation));
            }
            plan = sub;
        }
        let key_cols: Vec<String> = pivot_schema
            .key_names()
            .iter()
            .map(|k| format!("{pivot_rel}.{k}"))
            .collect();
        Ok(plan.project(key_cols).distinct())
    }

    /// Execute: find candidate pivot tuples via the composed relational
    /// plan, assemble instances (applying node predicates as child
    /// filters), then apply count/exists conditions.
    pub fn execute(
        &self,
        schema: &StructuralSchema,
        object: &ViewObject,
        db: &Database,
    ) -> Result<Vec<VoInstance>> {
        let plan = self.pivot_plan(schema, object)?;
        let keys = db.execute(&plan)?;
        let pivot = db.table(object.pivot())?;
        let candidates: Vec<&Tuple> = keys
            .rows
            .iter()
            .filter_map(|row| pivot.get(&Key::new(row.clone())))
            .collect();
        // assemble all candidate instances set-at-a-time
        let object_plan = plan_object(schema, object, db)?;
        let mut out = Vec::new();
        for inst in instantiate_many_planned(object, db, &object_plan, &candidates)? {
            let inst = self.filter_instance(schema, object, db, inst)?;
            let Some(inst) = inst else { continue };
            out.push(inst);
        }
        if !self.order_by.is_empty() {
            let pivot_schema = schema.catalog().relation(object.pivot())?;
            let idx: Vec<usize> = self
                .order_by
                .iter()
                .map(|a| pivot_schema.index_of(a))
                .collect::<Result<_>>()?;
            out.sort_by(|a, b| {
                for &i in &idx {
                    let ord = a.root.tuple.get(i).cmp(b.root.tuple.get(i));
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        if let Some(n) = self.limit {
            out.truncate(n);
        }
        Ok(out)
    }

    /// Apply node predicates (pruning unmatched children) and count/exists
    /// conditions; `None` means the instance is filtered out.
    fn filter_instance(
        &self,
        schema: &StructuralSchema,
        object: &ViewObject,
        db: &Database,
        mut inst: VoInstance,
    ) -> Result<Option<VoInstance>> {
        for (&node, pred) in &self.node_predicates {
            if node == 0 {
                continue; // already applied in the plan
            }
            let rel = &object.node(node).relation;
            let rel_schema = db.table(rel)?.schema().clone();
            let columns: Vec<String> = rel_schema
                .attributes()
                .iter()
                .map(|a| a.name.clone())
                .collect();
            let mut err = None;
            prune_children(&mut inst.root, node, &mut |t: &Tuple| match pred
                .eval_truth(&columns, t.values())
            {
                Ok(tr) => tr.is_true(),
                Err(e) => {
                    err = Some(e);
                    false
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
        let _ = schema;
        for c in &self.count_conditions {
            if !c.holds(inst.tuples_of(c.node).len()) {
                return Ok(None);
            }
        }
        for &n in &self.must_exist {
            if inst.tuples_of(n).is_empty() {
                return Ok(None);
            }
        }
        Ok(Some(inst))
    }
}

/// Keep only children of `node_id` anywhere in the subtree whose tuple
/// passes `keep`.
fn prune_children(
    inst: &mut crate::instance::VoInstanceNode,
    node_id: NodeId,
    keep: &mut dyn FnMut(&Tuple) -> bool,
) {
    for (_, children) in inst.children.iter_mut() {
        children.retain(|c| c.node != node_id || keep(&c.tuple));
        for c in children.iter_mut() {
            prune_children(c, node_id, keep);
        }
    }
}

/// The steps from the pivot to `node` when *every* edge on the way is
/// direct; `None` if any edge is contracted.
fn direct_chain(object: &ViewObject, node: NodeId) -> Option<Vec<crate::object::Step>> {
    let mut rev: Vec<crate::object::Step> = Vec::new();
    let mut at = node;
    while let Some(parent) = object.node(at).parent {
        let edge = object.node(at).edge.as_ref()?;
        if !edge.is_direct() {
            return None;
        }
        rev.push(edge.steps[0].clone());
        at = parent;
    }
    rev.reverse();
    Some(rev)
}

/// Qualify an expression's bare attribute references with a relation name
/// so it can run over scan output (`rel.attr` columns).
fn qualify(expr: &Expr, relation: &str) -> Expr {
    match expr {
        Expr::Attr(a) => {
            if a.contains('.') {
                Expr::Attr(a.clone())
            } else {
                Expr::Attr(format!("{relation}.{a}"))
            }
        }
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Cmp(op, l, r) => Expr::Cmp(
            *op,
            Box::new(qualify(l, relation)),
            Box::new(qualify(r, relation)),
        ),
        Expr::And(l, r) => qualify(l, relation).and(qualify(r, relation)),
        Expr::Or(l, r) => qualify(l, relation).or(qualify(r, relation)),
        Expr::Not(e) => qualify(e, relation).not(),
        Expr::IsNull(e) => qualify(e, relation).is_null(),
        Expr::True => Expr::True,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treegen::{generate_omega, generate_omega_prime};
    use crate::university::university_database;

    fn node_id(o: &ViewObject, rel: &str) -> NodeId {
        o.nodes().iter().find(|n| n.relation == rel).unwrap().id
    }

    #[test]
    fn figure_4_query_returns_cs345() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let stu = node_id(&omega, "STUDENT");
        // graduate courses with fewer than 5 students enrolled
        let q = VoQuery::new()
            .with_predicate(0, Expr::attr("level").eq(Expr::lit("graduate")))
            .with_count(stu, CmpOp::Lt, 5);
        let hits = q.execute(&schema, &omega, &db).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].key(&schema, &omega).unwrap(), Key::single("CS345"));
    }

    #[test]
    fn empty_query_returns_everything() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let hits = VoQuery::new().execute(&schema, &omega, &db).unwrap();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn child_predicate_prunes_children_not_instances() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let gra = node_id(&omega, "GRADES");
        let q = VoQuery::new().with_predicate(gra, Expr::attr("grade").eq(Expr::lit("A")));
        let hits = q.execute(&schema, &omega, &db).unwrap();
        // CS101 instance survives (joins via plan) only if it has an A — it
        // has only Bs, so the join filters it out of candidates
        let ids: Vec<Key> = hits
            .iter()
            .map(|h| h.key(&schema, &omega).unwrap())
            .collect();
        assert!(ids.contains(&Key::single("CS345")));
        assert!(ids.contains(&Key::single("EE282")));
        assert!(!ids.contains(&Key::single("CS101")));
        // and the CS345 instance carries only its A grades
        let cs345 = hits
            .iter()
            .find(|h| h.key(&schema, &omega).unwrap() == Key::single("CS345"))
            .unwrap();
        assert_eq!(cs345.tuples_of(gra).len(), 3);
    }

    #[test]
    fn count_condition_operators() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let stu = node_id(&omega, "STUDENT");
        let count = |op, n| {
            VoQuery::new()
                .with_count(stu, op, n)
                .execute(&schema, &omega, &db)
                .unwrap()
                .len()
        };
        assert_eq!(count(CmpOp::Eq, 3), 1); // CS345
        assert_eq!(count(CmpOp::Ge, 6), 2); // CS101 (8), EE282 (6)
        assert_eq!(count(CmpOp::Ne, 3), 2);
        assert_eq!(count(CmpOp::Le, 8), 3);
        assert_eq!(count(CmpOp::Gt, 8), 0);
    }

    #[test]
    fn must_exist_filters() {
        let (schema, mut db) = university_database();
        db.insert(
            "COURSES",
            vec!["X1".into(), "Empty".into(), "graduate".into(), Value::Null],
        )
        .unwrap();
        let omega = generate_omega(&schema).unwrap();
        let gra = node_id(&omega, "GRADES");
        let q = VoQuery::new().with_exists(gra);
        let hits = q.execute(&schema, &omega, &db).unwrap();
        assert_eq!(hits.len(), 3); // X1 excluded
    }

    #[test]
    fn predicate_on_contracted_node_filters_instance_side() {
        let (schema, db) = university_database();
        let op = generate_omega_prime(&schema).unwrap();
        let stu = node_id(&op, "STUDENT");
        let q =
            VoQuery::new().with_predicate(stu, Expr::attr("degree_program").eq(Expr::lit("PhD")));
        let hits = q.execute(&schema, &op, &db).unwrap();
        // every course instance remains, but only PhD students are bound
        for h in &hits {
            for t in h.tuples_of(stu) {
                let sschema = db.table("STUDENT").unwrap().schema().clone();
                assert_eq!(
                    t.get_named(&sschema, "degree_program").unwrap(),
                    &Value::text("PhD")
                );
            }
        }
    }

    #[test]
    fn pivot_plan_composes_joins() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let gra = node_id(&omega, "GRADES");
        let q = VoQuery::new()
            .with_predicate(0, Expr::attr("level").eq(Expr::lit("graduate")))
            .with_predicate(gra, Expr::attr("grade").eq(Expr::lit("A")));
        let plan = q.pivot_plan(&schema, &omega).unwrap();
        assert!(plan.relations().contains(&"GRADES"));
        let rs = db.execute(&plan).unwrap();
        assert_eq!(rs.len(), 2); // CS345 and EE282 have A grades and are graduate
    }

    #[test]
    fn conjunction_of_predicates_on_same_node() {
        let (schema, db) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let q = VoQuery::new()
            .with_predicate(0, Expr::attr("level").eq(Expr::lit("graduate")))
            .with_predicate(0, Expr::attr("dept_name").eq(Expr::lit("Computer Science")));
        let hits = q.execute(&schema, &omega, &db).unwrap();
        assert_eq!(hits.len(), 1);
    }
}
