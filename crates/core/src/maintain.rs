//! Incremental maintenance of materialized view-object instances from the
//! commit journal.
//!
//! A [`MaterializedView`] holds every instance of one view object, keyed
//! by pivot key, plus a **binding index**: for each `(relation, tuple
//! key)` its instantiation traversed — pivot tuples, node tuples, *and*
//! intermediate step tuples — the set of pivot keys whose instances
//! depend on it. Refreshing translates the committed [`DbOp`] stream
//! (read through the view's own journal cursor) into instance effects,
//! semi-naive style:
//!
//! - Ops on relations the object never traverses are skipped outright.
//! - A same-key `Replace` whose connecting-attribute projections are
//!   unchanged cannot move any instance membership: the new tuple is
//!   **patched in place** wherever the binding index says it appears.
//! - Every other op dirties exactly the pivots whose instances could have
//!   changed: deletes and key replaces through the binding index (the old
//!   traversal), inserts and new tuples by walking the edge steps *in
//!   reverse* from the op's tuple up to the pivot relation (the new
//!   traversal). Dirty pivots are then recomputed in one batch through
//!   the canonical planned instantiation engine — the same code full
//!   instantiation uses, which is what makes refreshed instances
//!   byte-identical to re-instantiation.
//!
//! Refresh cost is therefore proportional to the delta (ops processed ×
//! affected instances), not to the database size. A refresh falls back to
//! a full rebuild only when the structure epoch drifted (DDL invalidated
//! the plan), the journal cursor lapsed past evicted entries, or a prior
//! incremental attempt failed midway.

use crate::instance::{
    instantiate_many_planned, plan_object, probe_step, ObjectPlan, StepPlan, VoInstance,
    VoInstanceNode,
};
use crate::object::ViewObject;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::OnceLock;
use vo_obs::metrics::{self, Counter, Histogram};
use vo_obs::trace;
use vo_relational::database::JournalRead;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

fn refreshes() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("maintain.refreshes"))
}

fn full_rebuilds() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("maintain.full_rebuilds"))
}

fn instances_patched() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("maintain.instances_patched"))
}

fn instances_rebuilt() -> Counter {
    static C: OnceLock<Counter> = OnceLock::new();
    *C.get_or_init(|| metrics::counter("maintain.instances_rebuilt"))
}

fn journal_lag() -> Histogram {
    static H: OnceLock<Histogram> = OnceLock::new();
    *H.get_or_init(|| metrics::histogram("maintain.journal_lag"))
}

/// How one refresh changed one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// The instance appeared (its pivot tuple was inserted).
    Inserted,
    /// The instance disappeared (its pivot tuple was deleted).
    Removed,
    /// The instance's content changed.
    Updated,
}

/// One instance-level change produced by a refresh, for `watch`
/// subscribers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceChange {
    /// Pivot key of the affected instance.
    pub pivot: Key,
    /// What happened to it.
    pub kind: ChangeKind,
}

/// What one [`MaterializedView::refresh`] did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefreshOutcome {
    /// Committed transactions consumed from the journal.
    pub transactions: u64,
    /// Total ops across those transactions.
    pub ops: u64,
    /// True when the refresh fell back to re-instantiating every pivot
    /// (epoch drift, lapsed cursor, or a failed prior incremental pass).
    pub full_rebuild: bool,
    /// Instances updated by in-place tuple patches (no recomputation).
    pub patched: u64,
    /// Instances recomputed through the instantiation engine.
    pub rebuilt: u64,
    /// Per-instance changes, in pivot-key order.
    pub changes: Vec<InstanceChange>,
}

/// How far a [`MaterializedView`] trails its database, as a cheap
/// point-in-time probe (no entries are cloned, nothing is refreshed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ViewStaleness {
    /// Committed transactions the view has not applied yet.
    pub pending: u64,
    /// Journal entries evicted past the view's cursor — a hole in its
    /// delta stream; the next refresh will rebuild in full.
    pub lapsed: u64,
    /// True when a full rebuild is already forced (failed incremental
    /// pass or structural drift detected earlier).
    pub needs_full: bool,
}

/// Every instance of one view object, maintained incrementally from the
/// commit journal. See the module docs for the algorithm.
#[derive(Debug, Clone)]
pub struct MaterializedView {
    object: ViewObject,
    plan: ObjectPlan,
    cursor: JournalCursor,
    /// Pivot key → instance, in key order (matching
    /// [`crate::instance::instantiate_all`], which scans the pivot table
    /// in key order).
    instances: BTreeMap<Key, VoInstance>,
    /// relation → tuple key → pivot keys whose traversal visited it.
    bindings: BTreeMap<String, BTreeMap<Key, BTreeSet<Key>>>,
    /// Pivot key → its bindings, for O(per-instance) unbinding.
    per_pivot: BTreeMap<Key, Vec<(String, Key)>>,
    /// Relations whose ops can affect this object (pivot + every step
    /// source and target); ops on any other relation are skipped.
    relevant: BTreeSet<String>,
    /// Relations bound as object *nodes* (patches need the old tuple,
    /// which only node tuples retain inside instances).
    node_rels: BTreeSet<String>,
    /// Per relation, the union of attribute positions any edge step uses
    /// to connect through it. A same-key replace leaving these positions
    /// unchanged cannot alter instance membership.
    connecting: BTreeMap<String, Vec<usize>>,
    /// Forced full rebuild on next refresh (set when an incremental pass
    /// fails partway, leaving instances half-patched).
    needs_full: bool,
}

impl MaterializedView {
    /// Materialize `object` against the current database state. `cursor`
    /// must be a journal cursor positioned at (or before) the present —
    /// typically subscribed at [`JournalStart::Head`] just before this
    /// call; entries already reflected in the database are harmless to
    /// replay, but entries committed *after* build must all reach the
    /// cursor.
    pub fn build(
        schema: &StructuralSchema,
        object: ViewObject,
        db: &Database,
        cursor: JournalCursor,
    ) -> Result<MaterializedView> {
        let plan = plan_object(schema, &object, db)?;
        let mut relevant = BTreeSet::new();
        let mut connecting: BTreeMap<String, BTreeSet<usize>> = BTreeMap::new();
        relevant.insert(object.pivot().to_owned());
        for node in object.nodes().iter().skip(1) {
            for step in &plan.edge(node.id)?.steps {
                relevant.insert(step.source.clone());
                relevant.insert(step.target.clone());
                connecting
                    .entry(step.source.clone())
                    .or_default()
                    .extend(step.source_indices.iter().copied());
                connecting
                    .entry(step.target.clone())
                    .or_default()
                    .extend(step.target_indices.iter().copied());
            }
        }
        let node_rels = object.relations().iter().map(|r| (*r).to_owned()).collect();
        let mut view = MaterializedView {
            object,
            plan,
            cursor,
            instances: BTreeMap::new(),
            bindings: BTreeMap::new(),
            per_pivot: BTreeMap::new(),
            relevant,
            node_rels,
            connecting: connecting
                .into_iter()
                .map(|(r, s)| (r, s.into_iter().collect()))
                .collect(),
            needs_full: false,
        };
        view.rebuild_full(schema, db)?;
        Ok(view)
    }

    /// The view's object.
    pub fn object(&self) -> &ViewObject {
        &self.object
    }

    /// The journal cursor feeding this view.
    pub fn cursor(&self) -> JournalCursor {
        self.cursor
    }

    /// True when the next refresh is forced to rebuild from scratch
    /// (a previous incremental pass failed partway).
    pub fn needs_full(&self) -> bool {
        self.needs_full
    }

    /// How far the view trails `db`, without touching either: committed
    /// transactions its cursor has not applied, entries evicted past the
    /// cursor, and whether a full rebuild is already forced. The health
    /// monitor polls this per refresh-able view.
    pub fn staleness(&self, db: &Database) -> Result<ViewStaleness> {
        Ok(ViewStaleness {
            pending: db.journal_lag(self.cursor)?,
            lapsed: db.journal_lapsed(self.cursor)?,
            needs_full: self.needs_full,
        })
    }

    /// Number of materialized instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the pivot relation is empty.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The instance with pivot key `key`, if present.
    pub fn instance(&self, key: &Key) -> Option<&VoInstance> {
        self.instances.get(key)
    }

    /// All instances in pivot-key order — the same order
    /// [`crate::instance::instantiate_all`] produces (the pivot table
    /// scans in key order).
    pub fn instances(&self) -> impl Iterator<Item = &VoInstance> {
        self.instances.values()
    }

    /// Clone all instances into a vector, in pivot-key order.
    pub fn snapshot(&self) -> Vec<VoInstance> {
        self.instances.values().cloned().collect()
    }

    /// The `(relation, attrs)` pairs that should be indexed so the
    /// reverse walks of incremental refresh probe instead of scanning:
    /// for every edge step, the *source* relation's connecting
    /// attributes (forward instantiation already wants the targets',
    /// see [`ObjectPlan::required_indexes`]).
    pub fn reverse_required_indexes(&self, db: &Database) -> Result<Vec<(String, Vec<String>)>> {
        reverse_indexes_for(&self.object, &self.plan, db)
    }

    /// Apply one journal delta (obtained by peeking this view's cursor).
    /// The caller advances the cursor after a successful return; on error
    /// the view marks itself for a full rebuild, since instances may be
    /// half-patched.
    pub fn refresh(
        &mut self,
        schema: &StructuralSchema,
        db: &Database,
        read: &JournalRead,
    ) -> Result<RefreshOutcome> {
        let mut sp = trace::span("maintain.refresh");
        refreshes().inc();
        journal_lag().record(read.transactions.len() as u64);
        let mut outcome = RefreshOutcome {
            transactions: read.transactions.len() as u64,
            ops: read.op_count() as u64,
            ..RefreshOutcome::default()
        };
        if read.lapsed > 0 || self.needs_full || !self.plan.is_current(db) {
            outcome.full_rebuild = true;
            full_rebuilds().inc();
            outcome.changes = self.rebuild_full(schema, db)?;
            outcome.rebuilt = self.instances.len() as u64;
        } else {
            let r = self.apply_incremental(db, read, &mut outcome);
            if r.is_err() {
                // instances may be half-patched; resynchronize from the
                // database on the next refresh
                self.needs_full = true;
                return r.map(|_| outcome);
            }
        }
        instances_patched().add(outcome.patched);
        instances_rebuilt().add(outcome.rebuilt);
        if sp.is_recording() {
            sp.field("object", Json::str(self.object.name()));
            sp.field("transactions", Json::Int(outcome.transactions as i64));
            sp.field("ops", Json::Int(outcome.ops as i64));
            sp.field("patched", Json::Int(outcome.patched as i64));
            sp.field("rebuilt", Json::Int(outcome.rebuilt as i64));
            sp.field("full_rebuild", Json::Bool(outcome.full_rebuild));
        }
        Ok(outcome)
    }

    fn apply_incremental(
        &mut self,
        db: &Database,
        read: &JournalRead,
        outcome: &mut RefreshOutcome,
    ) -> Result<()> {
        let pivot_rel = self.object.pivot().to_owned();
        let mut dirty: BTreeSet<Key> = BTreeSet::new();
        let mut events: BTreeMap<Key, ChangeKind> = BTreeMap::new();
        let mut patched: BTreeSet<Key> = BTreeSet::new();
        for tx in &read.transactions {
            for op in tx.iter() {
                let rel = op.relation();
                if !self.relevant.contains(rel) {
                    continue; // semi-naive: the object never traverses it
                }
                match op {
                    DbOp::Insert { relation, tuple } => {
                        if *relation == pivot_rel {
                            dirty.insert(tuple.key(db.table(relation)?.schema()));
                        }
                        self.reverse_affected(db, relation, tuple, &mut dirty)?;
                    }
                    DbOp::Delete { relation, key } => {
                        // the old traversal is exactly what the binding
                        // index recorded (pivot tuples self-bind, so a
                        // pivot delete dirties its own instance)
                        self.bound_pivots(relation, key, &mut dirty);
                    }
                    DbOp::Replace {
                        relation,
                        old_key,
                        tuple,
                    } => {
                        let new_key = tuple.key(db.table(relation)?.schema());
                        if *old_key == new_key
                            && self.try_patch(
                                db,
                                relation,
                                &new_key,
                                tuple,
                                &mut events,
                                &mut patched,
                            )?
                        {
                            continue;
                        }
                        // key change or connecting change: delete + insert
                        self.bound_pivots(relation, old_key, &mut dirty);
                        if *relation == pivot_rel {
                            dirty.insert(new_key);
                        }
                        self.reverse_affected(db, relation, tuple, &mut dirty)?;
                    }
                }
            }
        }
        // a patched pivot that also went dirty gets recomputed anyway —
        // don't double-count it
        outcome.patched = patched.difference(&dirty).count() as u64;
        outcome.rebuilt = self.recompute(db, &dirty, &mut events)?;
        outcome.changes = events
            .into_iter()
            .map(|(pivot, kind)| InstanceChange { pivot, kind })
            .collect();
        Ok(())
    }

    /// Add every pivot whose last traversal visited `(rel, key)`.
    fn bound_pivots(&self, rel: &str, key: &Key, dirty: &mut BTreeSet<Key>) {
        if let Some(pivots) = self.bindings.get(rel).and_then(|m| m.get(key)) {
            dirty.extend(pivots.iter().cloned());
        }
    }

    /// Walk edge steps in reverse from `tuple` (a tuple of `rel`, in its
    /// post-op state) up to the pivot relation, against the current
    /// database: every pivot reached could traverse `tuple` now, so its
    /// instance must be recomputed.
    fn reverse_affected(
        &self,
        db: &Database,
        rel: &str,
        tuple: &Tuple,
        dirty: &mut BTreeSet<Key>,
    ) -> Result<()> {
        for node in self.object.nodes().iter().skip(1) {
            let eplan = self.plan.edge(node.id)?;
            for (i, step) in eplan.steps.iter().enumerate() {
                if step.target != rel {
                    continue;
                }
                let mut frontier = vec![tuple.clone()];
                for j in (0..=i).rev() {
                    frontier = reverse_step(&eplan.steps[j], db, &frontier)?;
                    if frontier.is_empty() {
                        break;
                    }
                }
                self.pivots_reaching(db, eplan.parent, frontier, dirty)?;
            }
        }
        Ok(())
    }

    /// Continue a reverse walk: `tuples` are tuples of object node
    /// `node`'s relation; ascend edge by edge to node 0 and record the
    /// pivot keys reached.
    fn pivots_reaching(
        &self,
        db: &Database,
        node: usize,
        tuples: Vec<Tuple>,
        dirty: &mut BTreeSet<Key>,
    ) -> Result<()> {
        if tuples.is_empty() {
            return Ok(());
        }
        if node == 0 {
            let schema = db.table(self.object.pivot())?.schema();
            // only pivots that actually exist — a reverse probe can land
            // on any tuple of the pivot relation, which is exactly right
            dirty.extend(tuples.iter().map(|t| t.key(schema)));
            return Ok(());
        }
        let eplan = self.plan.edge(node)?;
        let mut frontier = tuples;
        for step in eplan.steps.iter().rev() {
            frontier = reverse_step(step, db, &frontier)?;
            if frontier.is_empty() {
                return Ok(());
            }
        }
        self.pivots_reaching(db, eplan.parent, frontier, dirty)
    }

    /// Try to apply a same-key replace as in-place tuple patches. Returns
    /// true when the op is fully absorbed: the tuple's connecting
    /// attributes are unchanged, so instance membership cannot move and
    /// every occurrence recorded in the binding index is rewritten
    /// directly. Returns false when the op needs the dirty/recompute path
    /// (unbound tuple, non-node relation, or a connecting change).
    fn try_patch(
        &mut self,
        db: &Database,
        rel: &str,
        key: &Key,
        new_tuple: &Tuple,
        events: &mut BTreeMap<Key, ChangeKind>,
        patched: &mut BTreeSet<Key>,
    ) -> Result<bool> {
        if !self.node_rels.contains(rel) {
            // intermediate-step relations are not stored in instances, so
            // the old tuple (needed for the connecting comparison) is
            // unavailable
            return Ok(false);
        }
        let Some(pivots) = self.bindings.get(rel).and_then(|m| m.get(key)) else {
            // not on any materialized traversal: if the replace changed
            // connecting values it may *become* reachable — let the
            // reverse walk decide
            return Ok(false);
        };
        let pivots: Vec<Key> = pivots.iter().cloned().collect();
        let rschema = db.table(rel)?.schema().clone();
        // the pre-op tuple as the instances currently hold it (patches
        // applied earlier in this refresh included)
        let sample = self
            .instances
            .get(&pivots[0])
            .and_then(|inst| find_tuple(&inst.root, &self.object, &rschema, rel, key))
            .cloned();
        let Some(old) = sample else {
            // binding recorded but tuple not found in the instance tree —
            // be conservative
            return Ok(false);
        };
        if let Some(positions) = self.connecting.get(rel) {
            if old.project(positions) != new_tuple.project(positions) {
                return Ok(false);
            }
        }
        if old == *new_tuple {
            return Ok(true); // byte-identical: nothing to do
        }
        for pivot in pivots {
            if let Some(inst) = self.instances.get_mut(&pivot) {
                if patch_tuple(&mut inst.root, &self.object, &rschema, rel, key, new_tuple) {
                    patched.insert(pivot.clone());
                    events.entry(pivot).or_insert(ChangeKind::Updated);
                }
            }
        }
        Ok(true)
    }

    /// Recompute every dirty pivot through the canonical instantiation
    /// engine and refresh its bindings. Returns the number of instances
    /// rebuilt.
    fn recompute(
        &mut self,
        db: &Database,
        dirty: &BTreeSet<Key>,
        events: &mut BTreeMap<Key, ChangeKind>,
    ) -> Result<u64> {
        if dirty.is_empty() {
            return Ok(0);
        }
        for k in dirty {
            if let Some(binds) = self.per_pivot.remove(k) {
                for (rel, key) in binds {
                    if let Some(per_rel) = self.bindings.get_mut(&rel) {
                        if let Some(set) = per_rel.get_mut(&key) {
                            set.remove(k);
                            if set.is_empty() {
                                per_rel.remove(&key);
                            }
                        }
                    }
                }
            }
        }
        let table = db.table(self.object.pivot())?;
        let mut present: Vec<(Key, Tuple)> = Vec::new();
        for k in dirty {
            if let Some(t) = table.get(k) {
                present.push((k.clone(), t.clone()));
            }
        }
        let refs: Vec<&Tuple> = present.iter().map(|(_, t)| t).collect();
        let insts = instantiate_many_planned(&self.object, db, &self.plan, &refs)?;
        let binds = collect_bindings(&self.object, &self.plan, db, &refs)?;
        let mut rebuilt = 0u64;
        for (((key, _), inst), bind) in present.iter().zip(insts).zip(binds) {
            rebuilt += 1;
            self.install_bindings(key, bind);
            match self.instances.insert(key.clone(), inst) {
                None => {
                    events.insert(key.clone(), ChangeKind::Inserted);
                }
                Some(ref old) if *old != self.instances[key] => {
                    events.insert(key.clone(), ChangeKind::Updated);
                }
                Some(_) => {}
            }
        }
        for k in dirty {
            if !table.contains_key(k) && self.instances.remove(k).is_some() {
                events.insert(k.clone(), ChangeKind::Removed);
            }
        }
        Ok(rebuilt)
    }

    fn install_bindings(&mut self, pivot: &Key, binds: Vec<(String, Key)>) {
        for (rel, key) in &binds {
            self.bindings
                .entry(rel.clone())
                .or_default()
                .entry(key.clone())
                .or_default()
                .insert(pivot.clone());
        }
        self.per_pivot.insert(pivot.clone(), binds);
    }

    /// Re-instantiate every pivot from scratch (re-planning first) and
    /// diff against the previous state for watch events.
    fn rebuild_full(
        &mut self,
        schema: &StructuralSchema,
        db: &Database,
    ) -> Result<Vec<InstanceChange>> {
        self.plan = plan_object(schema, &self.object, db)?;
        let table = db.table(self.object.pivot())?;
        let pschema = table.schema().clone();
        let tuples: Vec<&Tuple> = table.scan().collect();
        let insts = instantiate_many_planned(&self.object, db, &self.plan, &tuples)?;
        let binds = collect_bindings(&self.object, &self.plan, db, &tuples)?;
        self.bindings.clear();
        self.per_pivot.clear();
        let mut fresh = BTreeMap::new();
        for ((t, inst), bind) in tuples.iter().zip(insts).zip(binds) {
            let key = t.key(&pschema);
            self.install_bindings(&key, bind);
            fresh.insert(key, inst);
        }
        let old = std::mem::replace(&mut self.instances, fresh);
        self.needs_full = false;
        let mut changes = Vec::new();
        for (key, inst) in &self.instances {
            match old.get(key) {
                None => changes.push(InstanceChange {
                    pivot: key.clone(),
                    kind: ChangeKind::Inserted,
                }),
                Some(prev) if prev != inst => changes.push(InstanceChange {
                    pivot: key.clone(),
                    kind: ChangeKind::Updated,
                }),
                Some(_) => {}
            }
        }
        for key in old.keys() {
            if !self.instances.contains_key(key) {
                changes.push(InstanceChange {
                    pivot: key.clone(),
                    kind: ChangeKind::Removed,
                });
            }
        }
        changes.sort_by(|a, b| a.pivot.cmp(&b.pivot));
        Ok(changes)
    }
}

/// The `(relation, attrs)` pairs whose indexes make `object`'s reverse
/// walks probe instead of scan — see
/// [`MaterializedView::reverse_required_indexes`]. A free function so
/// callers can provision the indexes *before* materializing (index
/// creation moves the structure epoch, which would otherwise invalidate
/// the freshly built view's plan).
pub fn reverse_indexes_for(
    object: &ViewObject,
    plan: &ObjectPlan,
    db: &Database,
) -> Result<Vec<(String, Vec<String>)>> {
    let mut set = BTreeSet::new();
    for node in object.nodes().iter().skip(1) {
        for step in &plan.edge(node.id)?.steps {
            let schema = db.table(&step.source)?.schema();
            let attrs: Vec<String> = step
                .source_indices
                .iter()
                .map(|&i| schema.attributes()[i].name.clone())
                .collect();
            set.insert((step.source.clone(), attrs));
        }
    }
    Ok(set.into_iter().collect())
}

/// Execute one step *backwards*: given tuples of the step's target
/// relation, find the source-relation tuples whose connecting projection
/// matches. Probes a secondary index on the source's connecting
/// attributes when present, otherwise builds one hash table over the
/// source. Results are deduplicated by key.
fn reverse_step(step: &StepPlan, db: &Database, targets: &[Tuple]) -> Result<Vec<Tuple>> {
    let source = db.table(&step.source)?;
    let sschema = source.schema();
    let mut seen: BTreeSet<Key> = BTreeSet::new();
    let mut out = Vec::new();
    let indexed = source.has_index_at(&step.source_indices);
    if indexed {
        for t in targets {
            let vals = t.project(&step.target_indices);
            if vals.iter().any(Value::is_null) {
                continue; // NULL never connects (Definition 2.1)
            }
            let matches = source
                .probe_index_at(&step.source_indices, &vals)
                .expect("index presence checked via has_index_at");
            for m in matches {
                if seen.insert(m.key(sschema)) {
                    out.push(m.clone());
                }
            }
        }
    } else {
        let groups = source.group_by_indices(&step.source_indices);
        for t in targets {
            let vals = t.project(&step.target_indices);
            if vals.iter().any(Value::is_null) {
                continue;
            }
            if let Some(matches) = groups.get(&vals) {
                for m in matches {
                    if seen.insert(m.key(sschema)) {
                        out.push((*m).clone());
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Find the tuple bound for `(rel, key)` anywhere in an instance subtree.
fn find_tuple<'a>(
    node: &'a VoInstanceNode,
    object: &ViewObject,
    rschema: &RelationSchema,
    rel: &str,
    key: &Key,
) -> Option<&'a Tuple> {
    if object.node(node.node).relation == rel && node.tuple.key(rschema) == *key {
        return Some(&node.tuple);
    }
    node.children
        .values()
        .flatten()
        .find_map(|c| find_tuple(c, object, rschema, rel, key))
}

/// Replace every occurrence of `(rel, key)` in an instance subtree with
/// `new_tuple`. Returns true when at least one tuple was rewritten.
fn patch_tuple(
    node: &mut VoInstanceNode,
    object: &ViewObject,
    rschema: &RelationSchema,
    rel: &str,
    key: &Key,
    new_tuple: &Tuple,
) -> bool {
    let mut hit = false;
    if object.node(node.node).relation == rel && node.tuple.key(rschema) == *key {
        node.tuple = new_tuple.clone();
        hit = true;
    }
    for child in node.children.values_mut().flatten() {
        hit |= patch_tuple(child, object, rschema, rel, key, new_tuple);
    }
    hit
}

/// Walk the object's edges for every pivot (the same frontier passes
/// instantiation makes) and record each `(relation, tuple key)` touched —
/// node tuples *and* intermediate step tuples — per originating pivot.
/// Returned in pivot order; each pivot's list starts with its own
/// self-binding.
fn collect_bindings(
    object: &ViewObject,
    plan: &ObjectPlan,
    db: &Database,
    pivots: &[&Tuple],
) -> Result<Vec<Vec<(String, Key)>>> {
    let pschema = db.table(object.pivot())?.schema();
    let mut out: Vec<BTreeSet<(String, Key)>> = pivots
        .iter()
        .map(|t| {
            let mut s = BTreeSet::new();
            s.insert((object.pivot().to_owned(), t.key(pschema)));
            s
        })
        .collect();
    let n = object.nodes().len();
    // rows[id]: (pivot ordinal, tuple) pairs reaching node id, deduplicated
    // per (pivot, key) — duplicates add no reachability
    let mut rows: Vec<Vec<(usize, Tuple)>> = vec![Vec::new(); n];
    rows[0] = pivots
        .iter()
        .enumerate()
        .map(|(i, t)| (i, (*t).clone()))
        .collect();
    for &id in object.preorder().iter().skip(1) {
        let eplan = plan.edge(id)?;
        let mut frontier: Vec<(usize, Tuple)> = rows[eplan.parent].clone();
        for step in &eplan.steps {
            let inputs: Vec<(usize, &Tuple)> = frontier.iter().map(|(o, t)| (*o, t)).collect();
            let next = probe_step(step, db, &inputs)?;
            let tschema = db.table(&step.target)?.schema();
            let mut seen: BTreeSet<(usize, Key)> = BTreeSet::new();
            frontier = Vec::with_capacity(next.len());
            for (o, t) in next {
                let k = t.key(tschema);
                out[o].insert((step.target.clone(), k.clone()));
                if seen.insert((o, k)) {
                    frontier.push((o, t));
                }
            }
        }
        rows[id] = frontier;
    }
    Ok(out.into_iter().map(|s| s.into_iter().collect()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::instantiate_all;
    use crate::treegen::generate_omega;
    use crate::university::university_database;

    fn tup(db: &Database, rel: &str, values: Vec<Value>) -> Tuple {
        Tuple::new(db.table(rel).unwrap().schema(), values).unwrap()
    }

    fn omega_view(db: &mut Database) -> (StructuralSchema, MaterializedView) {
        let (schema, _) = university_database();
        let omega = generate_omega(&schema).unwrap();
        let cursor = db.journal_subscribe(JournalStart::Head);
        let view = MaterializedView::build(&schema, omega, db, cursor).unwrap();
        (schema, view)
    }

    fn refresh(
        view: &mut MaterializedView,
        schema: &StructuralSchema,
        db: &mut Database,
    ) -> RefreshOutcome {
        let read = db.journal_peek(view.cursor()).unwrap();
        let n = read.transactions.len();
        let outcome = view.refresh(schema, db, &read).unwrap();
        db.journal_advance(view.cursor(), n).unwrap();
        outcome
    }

    fn assert_equiv(view: &MaterializedView, schema: &StructuralSchema, db: &Database) {
        let full = instantiate_all(schema, view.object(), db).unwrap();
        assert_eq!(view.snapshot(), full, "view diverged from re-instantiation");
    }

    #[test]
    fn build_matches_full_instantiation() {
        let (_, mut db) = university_database();
        let (schema, view) = omega_view(&mut db);
        assert_eq!(view.len(), 3); // CS101, CS345, EE282
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn irrelevant_ops_are_skipped() {
        let (_, mut db) = university_database();
        let (schema, mut view) = omega_view(&mut db);
        // ω never traverses STAFF or FACULTY
        db.insert("STAFF", vec![31.into(), "Registrar".into()])
            .unwrap();
        db.insert("FACULTY", vec![22.into(), "Lecturer".into()])
            .unwrap();
        let out = refresh(&mut view, &schema, &mut db);
        assert_eq!(out.transactions, 2);
        assert_eq!(out.patched, 0);
        assert_eq!(out.rebuilt, 0);
        assert!(out.changes.is_empty());
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn non_connecting_replace_is_patched_in_place() {
        let (_, mut db) = university_database();
        let (schema, mut view) = omega_view(&mut db);
        // the grade value connects nothing: (course_id, ssn) are the
        // connecting attributes of GRADES
        let new = tup(&db, "GRADES", vec!["CS345".into(), 1.into(), "A+".into()]);
        db.apply(&DbOp::Replace {
            relation: "GRADES".into(),
            old_key: Key::new(vec!["CS345".into(), 1.into()]),
            tuple: new,
        })
        .unwrap();
        let out = refresh(&mut view, &schema, &mut db);
        assert_eq!(out.patched, 1, "grade change should patch, not rebuild");
        assert_eq!(out.rebuilt, 0);
        assert!(!out.full_rebuild);
        assert_eq!(
            out.changes,
            vec![InstanceChange {
                pivot: Key::single("CS345"),
                kind: ChangeKind::Updated,
            }]
        );
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn pivot_non_connecting_replace_is_patched() {
        let (_, mut db) = university_database();
        let (schema, mut view) = omega_view(&mut db);
        // title and level don't connect COURSES to anything
        let new = tup(
            &db,
            "COURSES",
            vec![
                "CS345".into(),
                "Advanced Database Systems".into(),
                "graduate".into(),
                "Computer Science".into(),
            ],
        );
        db.apply(&DbOp::Replace {
            relation: "COURSES".into(),
            old_key: Key::single("CS345"),
            tuple: new,
        })
        .unwrap();
        let out = refresh(&mut view, &schema, &mut db);
        assert_eq!(out.patched, 1);
        assert_eq!(out.rebuilt, 0);
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn connecting_replace_recomputes() {
        let (_, mut db) = university_database();
        let (schema, mut view) = omega_view(&mut db);
        // moving EE282 to Computer Science changes its DEPARTMENT child
        let new = tup(
            &db,
            "COURSES",
            vec![
                "EE282".into(),
                "Computer Architecture".into(),
                "graduate".into(),
                "Computer Science".into(),
            ],
        );
        db.apply(&DbOp::Replace {
            relation: "COURSES".into(),
            old_key: Key::single("EE282"),
            tuple: new,
        })
        .unwrap();
        let out = refresh(&mut view, &schema, &mut db);
        assert_eq!(out.patched, 0);
        assert_eq!(out.rebuilt, 1);
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn insert_dirties_only_reachable_pivots() {
        let (_, mut db) = university_database();
        let (schema, mut view) = omega_view(&mut db);
        // student 9 enrolls in CS101: only CS101's instance changes
        db.insert("GRADES", vec!["CS101".into(), 9.into(), "C".into()])
            .unwrap();
        let out = refresh(&mut view, &schema, &mut db);
        assert_eq!(out.rebuilt, 1);
        assert_eq!(
            out.changes,
            vec![InstanceChange {
                pivot: Key::single("CS101"),
                kind: ChangeKind::Updated,
            }]
        );
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn pivot_insert_and_delete_produce_instance_events() {
        let (_, mut db) = university_database();
        let (schema, mut view) = omega_view(&mut db);
        db.insert(
            "COURSES",
            vec![
                "CS229".into(),
                "Machine Learning".into(),
                "graduate".into(),
                "Computer Science".into(),
            ],
        )
        .unwrap();
        let out = refresh(&mut view, &schema, &mut db);
        assert_eq!(view.len(), 4);
        assert!(out.changes.contains(&InstanceChange {
            pivot: Key::single("CS229"),
            kind: ChangeKind::Inserted,
        }));
        assert_equiv(&view, &schema, &db);

        db.apply(&DbOp::Delete {
            relation: "COURSES".into(),
            key: Key::single("CS229"),
        })
        .unwrap();
        let out = refresh(&mut view, &schema, &mut db);
        assert_eq!(view.len(), 3);
        assert_eq!(
            out.changes,
            vec![InstanceChange {
                pivot: Key::single("CS229"),
                kind: ChangeKind::Removed,
            }]
        );
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn key_replace_moves_membership() {
        let (_, mut db) = university_database();
        let (schema, mut view) = omega_view(&mut db);
        // re-attribute student 1's CS345 grade to student 4
        let new = tup(&db, "GRADES", vec!["CS345".into(), 4.into(), "B".into()]);
        db.apply(&DbOp::Replace {
            relation: "GRADES".into(),
            old_key: Key::new(vec!["CS345".into(), 1.into()]),
            tuple: new,
        })
        .unwrap();
        let out = refresh(&mut view, &schema, &mut db);
        assert_eq!(out.patched, 0);
        assert_eq!(out.rebuilt, 1);
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn shared_node_delete_dirties_every_dependent_pivot() {
        let (_, mut db) = university_database();
        let (schema, mut view) = omega_view(&mut db);
        // student 1 has grades in CS345, CS101, and EE282
        db.apply(&DbOp::Delete {
            relation: "STUDENT".into(),
            key: Key::single(1),
        })
        .unwrap();
        let out = refresh(&mut view, &schema, &mut db);
        assert_eq!(out.rebuilt, 3);
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn mixed_transaction_stays_equivalent() {
        let (_, mut db) = university_database();
        let (schema, mut view) = omega_view(&mut db);
        let ops = vec![
            DbOp::Insert {
                relation: "GRADES".into(),
                tuple: tup(&db, "GRADES", vec!["EE282".into(), 7.into(), "B".into()]),
            },
            DbOp::Delete {
                relation: "GRADES".into(),
                key: Key::new(vec!["CS101".into(), 2.into()]),
            },
            DbOp::Replace {
                relation: "STUDENT".into(),
                old_key: Key::single(3),
                tuple: tup(&db, "STUDENT", vec![3.into(), "MBA".into()]),
            },
            DbOp::Insert {
                relation: "CURRICULUM".into(),
                tuple: tup(&db, "CURRICULUM", vec!["MBA".into(), "CS101".into()]),
            },
        ];
        db.apply_all(&ops).unwrap();
        let out = refresh(&mut view, &schema, &mut db);
        assert_eq!(out.transactions, 1);
        assert_eq!(out.ops, 4);
        assert!(!out.full_rebuild);
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn lapsed_cursor_falls_back_to_full_rebuild() {
        let (_, mut db) = university_database();
        let (schema, mut view) = omega_view(&mut db);
        db.set_journal_cap(Some(JournalCap::drop_oldest(2)));
        for ssn in 4..=8i64 {
            db.insert("GRADES", vec!["CS345".into(), ssn.into(), "B".into()])
                .unwrap();
        }
        let read = db.journal_peek(view.cursor()).unwrap();
        assert!(read.lapsed > 0);
        let out = refresh(&mut view, &schema, &mut db);
        assert!(out.full_rebuild);
        assert_equiv(&view, &schema, &db);
        // subsequent refreshes are incremental again
        db.insert("GRADES", vec!["CS101".into(), 9.into(), "A".into()])
            .unwrap();
        let out = refresh(&mut view, &schema, &mut db);
        assert!(!out.full_rebuild);
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn empty_read_is_a_noop() {
        let (_, mut db) = university_database();
        let (schema, mut view) = omega_view(&mut db);
        let out = refresh(&mut view, &schema, &mut db);
        assert_eq!(out, RefreshOutcome::default());
        assert_equiv(&view, &schema, &db);
    }

    #[test]
    fn reverse_required_indexes_lists_step_sources() {
        let (_, mut db) = university_database();
        let (_, view) = omega_view(&mut db);
        let idx = view.reverse_required_indexes(&db).unwrap();
        // every ω edge connects out of COURSES or GRADES
        assert!(idx
            .iter()
            .any(|(rel, attrs)| rel == "COURSES" && attrs == &["dept_name".to_owned()]));
        assert!(idx
            .iter()
            .any(|(rel, attrs)| rel == "GRADES" && attrs == &["ssn".to_owned()]));
    }
}
