//! Dependency islands and referencing peninsulas (paper §5,
//! Definitions 5.1–5.2).
//!
//! The **dependency island** `D_ω` is the maximal subtree rooted at the
//! pivot whose every edge is a *forward* ownership or subset connection:
//! those relations together form the single entity the object is centered
//! on, so updates must have consistent repercussions throughout.
//!
//! A **referencing peninsula** is a relation of the object directly
//! connected to an island relation by a reference connection pointing *at*
//! the island — its tuples cite the entity, so deletions and key changes
//! must repair their foreign keys.

use crate::object::{NodeId, ViewObject};
use std::collections::BTreeSet;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

/// The island/peninsula analysis of one view object, computed once per
/// object and reused by every update translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IslandAnalysis {
    /// Node ids in the dependency island (always contains the root).
    pub island: BTreeSet<NodeId>,
    /// Relations of the island (distinct, sorted).
    pub island_relations: BTreeSet<String>,
    /// Node ids of referencing peninsulas.
    pub peninsulas: BTreeSet<NodeId>,
    /// For each island node, the attributes *inherited* from its island
    /// parent (`K(R_i)` mapped through the connection) and the complement
    /// `A_j = K(R_j) − inherited` that is locally accessible (paper §5.3).
    pub key_split: Vec<Option<KeySplit>>,
}

/// The key partition of one island node (paper §5.3's `A_j`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeySplit {
    /// Key attributes inherited from the island parent via the connection.
    pub inherited: Vec<String>,
    /// Locally accessible key complement `A_j`.
    pub complement: Vec<String>,
}

/// Compute the island analysis for `object`.
pub fn analyze(schema: &StructuralSchema, object: &ViewObject) -> Result<IslandAnalysis> {
    let mut island: BTreeSet<NodeId> = BTreeSet::new();
    island.insert(0);
    // preorder guarantees parents are classified before children
    for id in object.preorder() {
        if id == 0 {
            continue;
        }
        let node = object.node(id);
        let parent = node.parent.expect("non-root");
        if !island.contains(&parent) {
            continue;
        }
        let edge = node.edge.as_ref().expect("non-root");
        // Definition 5.1: all directed paths from the pivot must contain
        // exclusively ownership and subset connections — every step of the
        // edge must be a *forward* ownership/subset.
        let all_dependent = edge.steps.iter().try_fold(true, |acc, s| {
            let t = s.resolve(schema)?;
            Ok::<bool, Error>(
                acc && t.forward
                    && matches!(
                        t.connection.kind,
                        ConnectionKind::Ownership | ConnectionKind::Subset
                    ),
            )
        })?;
        if all_dependent {
            island.insert(id);
        }
    }

    let island_relations: BTreeSet<String> = island
        .iter()
        .map(|&id| object.node(id).relation.clone())
        .collect();

    // Definition 5.2: a peninsula is a node of the object directly
    // connected (single-step edge) to an island relation by a reference
    // connection pointing at the island.
    let mut peninsulas = BTreeSet::new();
    for node in object.nodes() {
        if island.contains(&node.id) {
            continue;
        }
        let Some(edge) = &node.edge else { continue };
        if !edge.is_direct() {
            continue;
        }
        let parent = node.parent.expect("non-root");
        if !island.contains(&parent) {
            continue;
        }
        let step = &edge.steps[0];
        let t = step.resolve(schema)?;
        // parent is the island side; the reference must point from this
        // node's relation *to* the island relation, i.e. the step is an
        // inverse reference traversal.
        if t.connection.kind == ConnectionKind::Reference && !t.forward {
            peninsulas.insert(node.id);
        }
    }

    // key splits for island nodes
    let mut key_split: Vec<Option<KeySplit>> = vec![None; object.nodes().len()];
    for &id in &island {
        let node = object.node(id);
        let rel_schema = schema.catalog().relation(&node.relation)?;
        let key: Vec<String> = rel_schema
            .key_names()
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        if id == 0 {
            key_split[id] = Some(KeySplit {
                inherited: Vec::new(),
                complement: key,
            });
            continue;
        }
        // inherited = this node's side of the final step of its edge
        let inherited: Vec<String> = object.child_link_attrs(schema, id)?.to_vec();
        let complement: Vec<String> = key.into_iter().filter(|k| !inherited.contains(k)).collect();
        key_split[id] = Some(KeySplit {
            inherited,
            complement,
        });
    }

    Ok(IslandAnalysis {
        island,
        island_relations,
        peninsulas,
        key_split,
    })
}

impl IslandAnalysis {
    /// True when node `id` is part of the dependency island.
    pub fn in_island(&self, id: NodeId) -> bool {
        self.island.contains(&id)
    }

    /// True when node `id` is a referencing peninsula.
    pub fn is_peninsula(&self, id: NodeId) -> bool {
        self.peninsulas.contains(&id)
    }

    /// True when `relation` belongs to the island's relation set.
    pub fn island_has_relation(&self, relation: &str) -> bool {
        self.island_relations.contains(relation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{ViewObjectBuilder, VoEdge};
    use crate::treegen::{generate_omega, generate_omega_prime};
    use crate::university::university_schema;

    fn node_id(o: &ViewObject, rel: &str) -> NodeId {
        o.nodes().iter().find(|n| n.relation == rel).unwrap().id
    }

    #[test]
    fn omega_island_is_courses_grades() {
        // paper: "the dependency island is the subtree rooted at the pivot
        // relation COURSES and including GRADES. The only referencing
        // peninsula corresponds to relation CURRICULUM."
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        let a = analyze(&schema, &omega).unwrap();
        assert!(a.in_island(0));
        assert!(a.in_island(node_id(&omega, "GRADES")));
        assert!(!a.in_island(node_id(&omega, "DEPARTMENT")));
        assert!(!a.in_island(node_id(&omega, "STUDENT")));
        assert_eq!(a.island.len(), 2);
        assert_eq!(
            a.island_relations.iter().collect::<Vec<_>>(),
            vec!["COURSES", "GRADES"]
        );
        assert_eq!(a.peninsulas.len(), 1);
        assert!(a.is_peninsula(node_id(&omega, "CURRICULUM")));
    }

    #[test]
    fn omega_prime_island_is_pivot_only() {
        let schema = university_schema();
        let op = generate_omega_prime(&schema).unwrap();
        let a = analyze(&schema, &op).unwrap();
        assert_eq!(a.island.len(), 1);
        assert!(a.peninsulas.is_empty()); // contracted edges, no direct refs
    }

    #[test]
    fn key_splits_follow_section_5_3() {
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        let a = analyze(&schema, &omega).unwrap();
        // pivot: A_1 = K(COURSES)
        let root = a.key_split[0].as_ref().unwrap();
        assert!(root.inherited.is_empty());
        assert_eq!(root.complement, vec!["course_id"]);
        // GRADES: inherited course_id, complement ssn
        let g = node_id(&omega, "GRADES");
        let gs = a.key_split[g].as_ref().unwrap();
        assert_eq!(gs.inherited, vec!["course_id"]);
        assert_eq!(gs.complement, vec!["ssn"]);
        // non-island nodes carry no split
        assert!(a.key_split[node_id(&omega, "DEPARTMENT")].is_none());
    }

    #[test]
    fn subset_chains_extend_the_island() {
        // PEOPLE —⊃ STUDENT —* GRADES: island from PEOPLE spans all three
        let schema = university_schema();
        let mut b = ViewObjectBuilder::new("people_obj", "PEOPLE", &["ssn", "name", "dept_name"]);
        let s = b.child(
            0,
            "STUDENT",
            &["ssn", "degree_program"],
            VoEdge::single("people_student", true),
        );
        b.child(
            s,
            "GRADES",
            &["course_id", "ssn", "grade"],
            VoEdge::single("student_grades", true),
        );
        let o = b.build(&schema).unwrap();
        let a = analyze(&schema, &o).unwrap();
        assert_eq!(a.island.len(), 3);
        // GRADES inherits ssn from STUDENT; complement is course_id
        let gs = a.key_split[2].as_ref().unwrap();
        assert_eq!(gs.inherited, vec!["ssn"]);
        assert_eq!(gs.complement, vec!["course_id"]);
    }

    #[test]
    fn island_does_not_resume_below_a_break() {
        // COURSES —> DEPARTMENT breaks the island; nothing below DEPARTMENT
        // can rejoin even over ownership edges.
        let schema = university_schema();
        let mut b = ViewObjectBuilder::new("o", "COURSES", &["course_id", "dept_name"]);
        let d = b.child(
            0,
            "DEPARTMENT",
            &["dept_name"],
            VoEdge::single("courses_dept", true),
        );
        b.child(
            d,
            "PEOPLE",
            &["ssn", "name", "dept_name"],
            VoEdge::single("people_dept", false),
        );
        let o = b.build(&schema).unwrap();
        let a = analyze(&schema, &o).unwrap();
        assert_eq!(a.island.len(), 1);
        assert!(a.peninsulas.is_empty()); // PEOPLE —> DEPARTMENT targets a non-island node
    }

    #[test]
    fn peninsula_requires_reference_toward_island() {
        // STUDENT under GRADES is inverse *ownership*, not a peninsula.
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        let a = analyze(&schema, &omega).unwrap();
        assert!(!a.is_peninsula(node_id(&omega, "STUDENT")));
        // DEPARTMENT is a *forward* reference (island cites it), not a peninsula
        assert!(!a.is_peninsula(node_id(&omega, "DEPARTMENT")));
    }
}
