//! JSON codecs for view-object definitions and translators.
//!
//! These are the types a saved PENGUIN system persists. Decoding a
//! [`ViewObject`] requires the structural schema so the full Definition
//! 3.1–3.2 validation re-runs — a tampered document cannot produce an
//! object the in-memory API could not have built.

use crate::instance::{VoInstance, VoInstanceNode};
use crate::object::{NodeId, Step, ViewObject, VoEdge, VoNode};
use crate::translator::{
    OutDeleteAction, OutModifyAction, PeninsulaAction, RelationPolicy, Translator,
};
use crate::update::UpdateRequest;
use std::collections::BTreeMap;
use vo_relational::prelude::*;
use vo_structural::prelude::*;

fn bad(msg: impl Into<String>) -> Error {
    Error::Serialization(msg.into())
}

fn strings_to_json(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::str(s.clone())).collect())
}

fn strings_from_json(json: &Json) -> Result<Vec<String>> {
    json.elements()?
        .iter()
        .map(|s| s.as_str().map(str::to_owned).map_err(Error::from))
        .collect()
}

impl Step {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("connection", Json::str(self.connection.clone())),
            ("parent_is_from", Json::Bool(self.parent_is_from)),
        ])
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> Result<Self> {
        Ok(Step {
            connection: json.field("connection")?.as_str()?.to_owned(),
            parent_is_from: json.field("parent_is_from")?.as_bool()?,
        })
    }
}

impl VoEdge {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "steps",
            Json::Arr(self.steps.iter().map(|s| s.to_json()).collect()),
        )])
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> Result<Self> {
        Ok(VoEdge {
            steps: json
                .field("steps")?
                .elements()?
                .iter()
                .map(Step::from_json)
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

impl VoNode {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Int(self.id as i64)),
            ("relation", Json::str(self.relation.clone())),
            ("attrs", strings_to_json(&self.attrs)),
            (
                "parent",
                match self.parent {
                    Some(p) => Json::Int(p as i64),
                    None => Json::Null,
                },
            ),
            (
                "edge",
                match &self.edge {
                    Some(e) => e.to_json(),
                    None => Json::Null,
                },
            ),
            (
                "children",
                Json::Arr(self.children.iter().map(|&c| Json::Int(c as i64)).collect()),
            ),
        ])
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> Result<Self> {
        let parent = match json.field("parent")? {
            Json::Null => None,
            other => Some(other.as_usize()?),
        };
        let edge = match json.field("edge")? {
            Json::Null => None,
            other => Some(VoEdge::from_json(other)?),
        };
        Ok(VoNode {
            id: json.field("id")?.as_usize()?,
            relation: json.field("relation")?.as_str()?.to_owned(),
            attrs: strings_from_json(json.field("attrs")?)?,
            parent,
            edge,
            children: json
                .field("children")?
                .elements()?
                .iter()
                .map(|c| c.as_usize().map_err(Error::from))
                .collect::<Result<Vec<_>>>()?,
        })
    }
}

impl ViewObject {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name())),
            (
                "nodes",
                Json::Arr(self.nodes().iter().map(|n| n.to_json()).collect()),
            ),
        ])
    }

    /// Decode from JSON and re-validate against `schema` (full Definition
    /// 3.1–3.2 checking via [`ViewObject::from_nodes`]).
    pub fn from_json(json: &Json, schema: &StructuralSchema) -> Result<Self> {
        let name = json.field("name")?.as_str()?.to_owned();
        let nodes = json
            .field("nodes")?
            .elements()?
            .iter()
            .map(VoNode::from_json)
            .collect::<Result<Vec<_>>>()?;
        for (i, n) in nodes.iter().enumerate() {
            if n.id != i {
                return Err(bad(format!(
                    "object {name}: node at position {i} claims id {}",
                    n.id
                )));
            }
        }
        ViewObject::from_nodes(name, nodes, schema)
    }
}

impl RelationPolicy {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("allow_insert", Json::Bool(self.allow_insert)),
            ("allow_modify", Json::Bool(self.allow_modify)),
            (
                "allow_key_replacement",
                Json::Bool(self.allow_key_replacement),
            ),
            (
                "allow_db_key_replace",
                Json::Bool(self.allow_db_key_replace),
            ),
            ("allow_delete_adopt", Json::Bool(self.allow_delete_adopt)),
        ])
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> Result<Self> {
        Ok(RelationPolicy {
            allow_insert: json.field("allow_insert")?.as_bool()?,
            allow_modify: json.field("allow_modify")?.as_bool()?,
            allow_key_replacement: json.field("allow_key_replacement")?.as_bool()?,
            allow_db_key_replace: json.field("allow_db_key_replace")?.as_bool()?,
            allow_delete_adopt: json.field("allow_delete_adopt")?.as_bool()?,
        })
    }
}

impl PeninsulaAction {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::str(match self {
            PeninsulaAction::NullifyForeignKey => "nullify_foreign_key",
            PeninsulaAction::DeleteReferencing => "delete_referencing",
            PeninsulaAction::Reject => "reject",
        })
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> Result<Self> {
        match json.as_str()? {
            "nullify_foreign_key" => Ok(PeninsulaAction::NullifyForeignKey),
            "delete_referencing" => Ok(PeninsulaAction::DeleteReferencing),
            "reject" => Ok(PeninsulaAction::Reject),
            other => Err(bad(format!("unknown peninsula action `{other}`"))),
        }
    }
}

impl OutDeleteAction {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::str(match self {
            OutDeleteAction::Restrict => "restrict",
            OutDeleteAction::Cascade => "cascade",
            OutDeleteAction::Nullify => "nullify",
        })
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> Result<Self> {
        match json.as_str()? {
            "restrict" => Ok(OutDeleteAction::Restrict),
            "cascade" => Ok(OutDeleteAction::Cascade),
            "nullify" => Ok(OutDeleteAction::Nullify),
            other => Err(bad(format!(
                "unknown out-of-object delete action `{other}`"
            ))),
        }
    }
}

impl OutModifyAction {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::str(match self {
            OutModifyAction::Propagate => "propagate",
            OutModifyAction::Nullify => "nullify",
            OutModifyAction::Cascade => "cascade",
        })
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> Result<Self> {
        match json.as_str()? {
            "propagate" => Ok(OutModifyAction::Propagate),
            "nullify" => Ok(OutModifyAction::Nullify),
            "cascade" => Ok(OutModifyAction::Cascade),
            other => Err(bad(format!(
                "unknown out-of-object modify action `{other}`"
            ))),
        }
    }
}

impl Translator {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("object", Json::str(self.object.clone())),
            ("allow_insertion", Json::Bool(self.allow_insertion)),
            ("allow_deletion", Json::Bool(self.allow_deletion)),
            ("allow_replacement", Json::Bool(self.allow_replacement)),
            (
                "relation_policies",
                Json::Obj(
                    self.relation_policies
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "peninsula_actions",
                Json::Obj(
                    self.peninsula_actions
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "allow_out_of_object_repairs",
                Json::Bool(self.allow_out_of_object_repairs),
            ),
            ("out_of_object_delete", self.out_of_object_delete.to_json()),
            ("out_of_object_modify", self.out_of_object_modify.to_json()),
        ])
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> Result<Self> {
        let mut relation_policies = BTreeMap::new();
        for (k, v) in json.field("relation_policies")?.entries()? {
            relation_policies.insert(k.clone(), RelationPolicy::from_json(v)?);
        }
        let mut peninsula_actions = BTreeMap::new();
        for (k, v) in json.field("peninsula_actions")?.entries()? {
            peninsula_actions.insert(k.clone(), PeninsulaAction::from_json(v)?);
        }
        Ok(Translator {
            object: json.field("object")?.as_str()?.to_owned(),
            allow_insertion: json.field("allow_insertion")?.as_bool()?,
            allow_deletion: json.field("allow_deletion")?.as_bool()?,
            allow_replacement: json.field("allow_replacement")?.as_bool()?,
            relation_policies,
            peninsula_actions,
            allow_out_of_object_repairs: json.field("allow_out_of_object_repairs")?.as_bool()?,
            out_of_object_delete: OutDeleteAction::from_json(json.field("out_of_object_delete")?)?,
            out_of_object_modify: OutModifyAction::from_json(json.field("out_of_object_modify")?)?,
        })
    }
}

impl VoInstanceNode {
    /// Encode as JSON. Children are keyed by their object-node id
    /// (stringified, since JSON object keys are strings).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("node", Json::Int(self.node as i64)),
            ("tuple", self.tuple.to_json()),
            (
                "children",
                Json::Obj(
                    self.children
                        .iter()
                        .map(|(id, nodes)| {
                            (
                                id.to_string(),
                                Json::Arr(nodes.iter().map(VoInstanceNode::to_json).collect()),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Decode from JSON. Tuples are structural only — validation against
    /// a relation schema happens when the instance enters the update
    /// pipeline, exactly as for an instance built by hand.
    pub fn from_json(json: &Json) -> Result<Self> {
        let mut children = BTreeMap::new();
        for (key, nodes) in json.field("children")?.entries()? {
            let id: NodeId = key
                .parse()
                .map_err(|_| bad(format!("instance child key `{key}` is not a node id")))?;
            let decoded = nodes
                .elements()?
                .iter()
                .map(VoInstanceNode::from_json)
                .collect::<Result<Vec<_>>>()?;
            children.insert(id, decoded);
        }
        Ok(VoInstanceNode {
            node: json.field("node")?.as_usize()?,
            tuple: Tuple::from_json(json.field("tuple")?)?,
            children,
        })
    }
}

impl VoInstance {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("object", Json::str(self.object.clone())),
            ("root", self.root.to_json()),
        ])
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> Result<Self> {
        Ok(VoInstance {
            object: json.field("object")?.as_str()?.to_owned(),
            root: VoInstanceNode::from_json(json.field("root")?)?,
        })
    }
}

impl UpdateRequest {
    /// Encode as JSON, tagged by [`UpdateRequest::kind`].
    pub fn to_json(&self) -> Json {
        match self {
            UpdateRequest::CompleteInsertion(inst) => Json::obj(vec![
                ("kind", Json::str(self.kind())),
                ("instance", inst.to_json()),
            ]),
            UpdateRequest::CompleteDeletion(inst) => Json::obj(vec![
                ("kind", Json::str(self.kind())),
                ("instance", inst.to_json()),
            ]),
            UpdateRequest::Replacement { old, new } => Json::obj(vec![
                ("kind", Json::str(self.kind())),
                ("old", old.to_json()),
                ("new", new.to_json()),
            ]),
        }
    }

    /// Decode from JSON.
    pub fn from_json(json: &Json) -> Result<Self> {
        match json.field("kind")?.as_str()? {
            "complete-insertion" => Ok(UpdateRequest::CompleteInsertion(VoInstance::from_json(
                json.field("instance")?,
            )?)),
            "complete-deletion" => Ok(UpdateRequest::CompleteDeletion(VoInstance::from_json(
                json.field("instance")?,
            )?)),
            "replacement" => Ok(UpdateRequest::Replacement {
                old: VoInstance::from_json(json.field("old")?)?,
                new: VoInstance::from_json(json.field("new")?)?,
            }),
            other => Err(bad(format!("unknown update request kind `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::treegen::generate_omega;
    use crate::university::university_schema;
    use vo_relational::json::parse;

    #[test]
    fn view_object_roundtrip_revalidates() {
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        let text = omega.to_json().pretty();
        let back = ViewObject::from_json(&parse(&text).unwrap(), &schema).unwrap();
        assert_eq!(omega, back);
    }

    #[test]
    fn tampered_object_rejected() {
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        // strip the pivot key attribute from the root projection
        let text = omega.to_json().pretty().replacen("\"course_id\",", "", 1);
        let parsed = parse(&text).unwrap();
        assert!(ViewObject::from_json(&parsed, &schema).is_err());
    }

    #[test]
    fn translator_roundtrip() {
        let schema = university_schema();
        let omega = generate_omega(&schema).unwrap();
        let mut t = Translator::permissive(&omega);
        t.peninsula_actions
            .insert("CURRICULUM".into(), PeninsulaAction::Reject);
        t.out_of_object_modify = OutModifyAction::Cascade;
        let back = Translator::from_json(&parse(&t.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn instance_roundtrip_preserves_tree() {
        let (schema, db) = crate::university::university_database();
        let omega = generate_omega(&schema).unwrap();
        let insts = crate::instance::instantiate_all(&schema, &omega, &db).unwrap();
        assert!(!insts.is_empty());
        for inst in insts {
            let text = inst.to_json().compact();
            let back = VoInstance::from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(inst, back);
        }
    }

    #[test]
    fn update_request_roundtrip_all_kinds() {
        let (schema, db) = crate::university::university_database();
        let omega = generate_omega(&schema).unwrap();
        let insts = crate::instance::instantiate_all(&schema, &omega, &db).unwrap();
        let a = insts[0].clone();
        let b = insts[1].clone();
        for req in [
            UpdateRequest::CompleteInsertion(a.clone()),
            UpdateRequest::CompleteDeletion(a.clone()),
            UpdateRequest::Replacement {
                old: a.clone(),
                new: b,
            },
        ] {
            let back = UpdateRequest::from_json(&parse(&req.to_json().compact()).unwrap()).unwrap();
            assert_eq!(req.kind(), back.kind());
            assert_eq!(req.to_json(), back.to_json());
        }
        let bad = parse("{\"kind\":\"partial\"}").unwrap();
        assert!(UpdateRequest::from_json(&bad).is_err());
    }
}
