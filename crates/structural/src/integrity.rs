//! Global integrity maintenance over the structural model.
//!
//! This module implements the integrity rules of Definitions 2.2–2.4 as an
//! executable engine:
//!
//! - [`check_database`] scans for violations (orphan owned tuples, dangling
//!   references, subset tuples without their general entity).
//! - [`plan_delete`] computes the full set of [`DbOp`]s implied by deleting
//!   one tuple: cascades across ownership and subset connections, and
//!   policy-driven repair (cascade / nullify / restrict) of referencing
//!   tuples.
//! - [`plan_key_replacement`] propagates a key change to owned and subset
//!   children (recursively — their keys change too) and to referencing
//!   tuples.
//! - [`missing_dependencies`] / [`plan_completion`] find and repair the
//!   dependencies a newly inserted tuple requires (owner, general entity,
//!   referenced tuple), inserting stub tuples recursively — the process
//!   the paper's VO-CI global-validation step describes.
//!
//! All planners are *read-only*: they return operation lists which callers
//! apply transactionally via [`Database::apply_all`]. They are generic over
//! [`DbRead`], so they run identically against a committed [`Database`] or
//! a [`vo_relational::overlay::DeltaDb`] overlay of planned-but-uncommitted
//! ops — the substrate of batch update translation.

use crate::connection::ConnectionKind;
use crate::schema::{StructuralSchema, Traversal};
use std::collections::{BTreeMap, BTreeSet};
use vo_obs::trace;
use vo_relational::prelude::*;

/// A detected integrity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An owned tuple whose owner is missing (ownership rule 1).
    OrphanOwned {
        connection: String,
        relation: String,
        key: Key,
    },
    /// A referencing tuple pointing at a non-existent target with non-NULL
    /// connecting attributes (reference rule 1).
    DanglingReference {
        connection: String,
        relation: String,
        key: Key,
    },
    /// A subset tuple without its general entity (subset rule 1).
    SubsetWithoutParent {
        connection: String,
        relation: String,
        key: Key,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::OrphanOwned {
                connection,
                relation,
                key,
            } => {
                write!(
                    f,
                    "orphan owned tuple {relation}{key} (connection {connection})"
                )
            }
            Violation::DanglingReference {
                connection,
                relation,
                key,
            } => {
                write!(
                    f,
                    "dangling reference {relation}{key} (connection {connection})"
                )
            }
            Violation::SubsetWithoutParent {
                connection,
                relation,
                key,
            } => write!(
                f,
                "subset tuple without parent {relation}{key} (connection {connection})"
            ),
        }
    }
}

/// What to do with referencing tuples when their referenced tuple is
/// deleted (reference rule 2 offers exactly these choices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefDeleteAction {
    /// Reject the deletion.
    Restrict,
    /// Delete the referencing tuples too.
    Cascade,
    /// Set the referencing attributes to NULL (fails when they are key
    /// attributes, which are non-nullable).
    #[default]
    Nullify,
}

/// What to do with referencing tuples when their referenced tuple's key is
/// modified (reference rule 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefModifyAction {
    /// Propagate the new key into the referencing attributes.
    #[default]
    Propagate,
    /// Set the referencing attributes to NULL.
    Nullify,
    /// Delete the referencing tuples.
    Cascade,
}

/// Per-connection integrity policy with defaults.
#[derive(Debug, Clone, Default)]
pub struct IntegrityPolicy {
    delete_overrides: BTreeMap<String, RefDeleteAction>,
    modify_overrides: BTreeMap<String, RefModifyAction>,
    /// Default action for reference connections on deletion.
    pub on_delete: RefDeleteAction,
    /// Default action for reference connections on key modification.
    pub on_modify: RefModifyAction,
}

impl IntegrityPolicy {
    /// Policy using the given defaults for every connection.
    pub fn uniform(on_delete: RefDeleteAction, on_modify: RefModifyAction) -> Self {
        IntegrityPolicy {
            on_delete,
            on_modify,
            ..Default::default()
        }
    }

    /// Override the delete action for one named connection.
    pub fn with_delete_action(mut self, connection: &str, action: RefDeleteAction) -> Self {
        self.delete_overrides.insert(connection.to_owned(), action);
        self
    }

    /// Override the modify action for one named connection.
    pub fn with_modify_action(mut self, connection: &str, action: RefModifyAction) -> Self {
        self.modify_overrides.insert(connection.to_owned(), action);
        self
    }

    /// Effective delete action for a connection.
    pub fn delete_action(&self, connection: &str) -> RefDeleteAction {
        self.delete_overrides
            .get(connection)
            .copied()
            .unwrap_or(self.on_delete)
    }

    /// Effective modify action for a connection.
    pub fn modify_action(&self, connection: &str) -> RefModifyAction {
        self.modify_overrides
            .get(connection)
            .copied()
            .unwrap_or(self.on_modify)
    }
}

/// Scan the whole database (or overlay) for structural violations.
pub fn check_database(schema: &StructuralSchema, db: &impl DbRead) -> Result<Vec<Violation>> {
    let mut out = Vec::new();
    for conn in schema.connections() {
        let r1 = db.view(&conn.from)?;
        let r2 = db.view(&conn.to)?;
        match conn.kind {
            ConnectionKind::Ownership | ConnectionKind::Subset => {
                // every R2 tuple needs a connected R1 tuple
                for t2 in r2.scan() {
                    let vals = conn.to_values(r2.schema(), t2)?;
                    if vals.iter().any(Value::is_null) {
                        // key attrs cannot be NULL; defensive
                        continue;
                    }
                    let owners = r1.find_by_attrs(&conn.from_attrs, &vals)?;
                    if owners.is_empty() {
                        let v = if conn.kind == ConnectionKind::Ownership {
                            Violation::OrphanOwned {
                                connection: conn.name.clone(),
                                relation: conn.to.clone(),
                                key: t2.key(r2.schema()),
                            }
                        } else {
                            Violation::SubsetWithoutParent {
                                connection: conn.name.clone(),
                                relation: conn.to.clone(),
                                key: t2.key(r2.schema()),
                            }
                        };
                        out.push(v);
                    }
                }
            }
            ConnectionKind::Reference => {
                // every R1 tuple is connected or has NULL X1
                for t1 in r1.scan() {
                    let vals = conn.from_values(r1.schema(), t1)?;
                    if vals.iter().any(Value::is_null) {
                        continue;
                    }
                    let targets = r2.find_by_attrs(&conn.to_attrs, &vals)?;
                    if targets.is_empty() {
                        out.push(Violation::DanglingReference {
                            connection: conn.name.clone(),
                            relation: conn.from.clone(),
                            key: t1.key(r1.schema()),
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

/// A consistency check suitable for [`Database::apply_all_checked`].
pub fn consistency_check(schema: &StructuralSchema) -> impl Fn(&Database) -> Result<()> + '_ {
    move |db| {
        let violations = check_database(schema, db)?;
        if violations.is_empty() {
            Ok(())
        } else {
            Err(Error::ConstraintViolation(format!(
                "{} violation(s), first: {}",
                violations.len(),
                violations[0]
            )))
        }
    }
}

/// Plan the deletion of one tuple with full structural propagation.
///
/// Returns the operations in a safe application order (replacements of
/// referencing tuples first would also work; order is irrelevant to the
/// engine, which checks nothing across relations — the point of the plan is
/// that *after* all ops apply, [`check_database`] is clean).
pub fn plan_delete(
    schema: &StructuralSchema,
    db: &impl DbRead,
    relation: &str,
    key: &Key,
    policy: &IntegrityPolicy,
) -> Result<Vec<DbOp>> {
    let mut sp = trace::span("integrity.plan_delete");
    // Phase 1: transitive closure of deletions.
    let mut to_delete: BTreeSet<(String, Key)> = BTreeSet::new();
    let mut work: Vec<(String, Key)> = vec![(relation.to_owned(), key.clone())];
    while let Some((rel, k)) = work.pop() {
        if !to_delete.insert((rel.clone(), k.clone())) {
            continue;
        }
        let table = db.view(&rel)?;
        let tuple = table.get(&k).ok_or_else(|| Error::NoSuchTuple {
            relation: rel.clone(),
            key: k.to_string(),
        })?;
        // cascade over ownership and subset
        for conn in schema.dependents_of(&rel) {
            let vals = conn.from_values(table.schema(), tuple)?;
            let child = db.view(&conn.to)?;
            let keys = child.keys_by_attrs(&conn.to_attrs, &vals)?;
            if !keys.is_empty() {
                trace::event_with("integrity.cascade", || {
                    vec![
                        ("connection", Json::str(conn.name.clone())),
                        ("kind", Json::str(conn.kind.to_string())),
                        ("from", Json::str(format!("{rel}{k}"))),
                        ("cascaded", Json::Int(keys.len() as i64)),
                    ]
                });
            }
            for k2 in keys {
                work.push((conn.to.clone(), k2));
            }
        }
        // reference cascade when the policy says so
        for conn in schema.referencers_of(&rel) {
            if policy.delete_action(&conn.name) == RefDeleteAction::Cascade {
                let vals = conn.to_values(table.schema(), tuple)?;
                let referencing = db.view(&conn.from)?;
                let keys = referencing.keys_by_attrs(&conn.from_attrs, &vals)?;
                if !keys.is_empty() {
                    trace::event_with("integrity.cascade", || {
                        vec![
                            ("connection", Json::str(conn.name.clone())),
                            ("kind", Json::str("reference")),
                            ("from", Json::str(format!("{rel}{k}"))),
                            ("cascaded", Json::Int(keys.len() as i64)),
                        ]
                    });
                }
                for k1 in keys {
                    work.push((conn.from.clone(), k1));
                }
            }
        }
    }

    // Phase 2: repair remaining referencing tuples (nullify or restrict).
    // Accumulate all nullifications per referencing tuple so that a tuple
    // referencing two deleted targets gets a single Replace.
    let mut pending: BTreeMap<(String, Key), Tuple> = BTreeMap::new();
    for (rel, k) in &to_delete {
        let table = db.view(rel)?;
        let tuple = table.get(k).expect("collected above");
        for conn in schema.referencers_of(rel) {
            match policy.delete_action(&conn.name) {
                RefDeleteAction::Cascade => {} // handled in phase 1
                action => {
                    let vals = conn.to_values(table.schema(), tuple)?;
                    let referencing = db.view(&conn.from)?;
                    let ref_schema = referencing.schema().clone();
                    for k1 in referencing.keys_by_attrs(&conn.from_attrs, &vals)? {
                        if to_delete.contains(&(conn.from.clone(), k1.clone())) {
                            continue;
                        }
                        if action == RefDeleteAction::Restrict {
                            trace::event_with("integrity.abort", || {
                                vec![
                                    ("connection", Json::str(conn.name.clone())),
                                    ("relation", Json::str(conn.from.clone())),
                                    ("key", Json::str(k1.to_string())),
                                    ("referenced", Json::str(format!("{rel}{k}"))),
                                    ("reason", Json::str("restrict")),
                                ]
                            });
                            return Err(Error::ConstraintViolation(format!(
                                "deletion restricted: {}{k1} references {rel}{k} via {}",
                                conn.from, conn.name
                            )));
                        }
                        // Nullify
                        let entry = pending
                            .entry((conn.from.clone(), k1.clone()))
                            .or_insert_with(|| referencing.get(&k1).expect("listed").clone());
                        let mut t = entry.clone();
                        for attr in &conn.from_attrs {
                            t = t.with_named(&ref_schema, attr, Value::Null).map_err(|e| {
                                trace::event_with("integrity.abort", || {
                                    vec![
                                        ("connection", Json::str(conn.name.clone())),
                                        ("relation", Json::str(conn.from.clone())),
                                        ("key", Json::str(k1.to_string())),
                                        ("referenced", Json::str(format!("{rel}{k}"))),
                                        ("reason", Json::str("nullify-key")),
                                    ]
                                });
                                Error::ConstraintViolation(format!(
                                    "cannot nullify {}.{attr} (connection {}): {e}",
                                    conn.from, conn.name
                                ))
                            })?;
                        }
                        trace::event_with("integrity.nullify", || {
                            vec![
                                ("connection", Json::str(conn.name.clone())),
                                ("relation", Json::str(conn.from.clone())),
                                ("key", Json::str(k1.to_string())),
                            ]
                        });
                        *entry = t;
                    }
                }
            }
        }
    }

    if sp.is_recording() {
        sp.field("relation", Json::str(relation));
        sp.field("key", Json::str(key.to_string()));
        sp.field("deletes", Json::Int(to_delete.len() as i64));
        sp.field("nullified", Json::Int(pending.len() as i64));
    }
    let mut ops: Vec<DbOp> = Vec::with_capacity(pending.len() + to_delete.len());
    for ((rel, k), tuple) in pending {
        ops.push(DbOp::Replace {
            relation: rel,
            old_key: k,
            tuple,
        });
    }
    for (rel, k) in to_delete {
        ops.push(DbOp::Delete {
            relation: rel,
            key: k,
        });
    }
    Ok(ops)
}

/// Plan the replacement of one tuple, propagating key changes.
///
/// When `new` changes connecting attributes, the change propagates:
///
/// - across ownership and subset connections, rewriting the inherited key
///   components of every connected child (recursively, since the child's
///   own key changes);
/// - across incoming reference connections, per the policy's
///   [`RefModifyAction`].
pub fn plan_key_replacement(
    schema: &StructuralSchema,
    db: &impl DbRead,
    relation: &str,
    old_key: &Key,
    new: Tuple,
    policy: &IntegrityPolicy,
) -> Result<Vec<DbOp>> {
    let mut sp = trace::span("integrity.plan_replacement");
    let mut ops = Vec::new();
    let mut visited: BTreeSet<(String, Key)> = BTreeSet::new();
    let mut work: Vec<(String, Key, Tuple)> = vec![(relation.to_owned(), old_key.clone(), new)];
    let mut extra_deletes: Vec<(String, Key)> = Vec::new();

    while let Some((rel, okey, newt)) = work.pop() {
        if !visited.insert((rel.clone(), okey.clone())) {
            continue;
        }
        let table = db.view(&rel)?;
        let rel_schema = table.schema().clone();
        let old = table
            .get(&okey)
            .ok_or_else(|| Error::NoSuchTuple {
                relation: rel.clone(),
                key: okey.to_string(),
            })?
            .clone();
        let newt = Tuple::new(&rel_schema, newt.into_values())?;
        if old == newt {
            continue;
        }
        ops.push(DbOp::Replace {
            relation: rel.clone(),
            old_key: okey.clone(),
            tuple: newt.clone(),
        });

        // propagate to owned / subset children whose inherited attributes changed
        for conn in schema.dependents_of(&rel) {
            let old_vals = conn.from_values(&rel_schema, &old)?;
            let new_vals = conn.from_values(&rel_schema, &newt)?;
            if old_vals == new_vals {
                continue;
            }
            let child = db.view(&conn.to)?;
            let child_schema = child.schema().clone();
            for k2 in child.keys_by_attrs(&conn.to_attrs, &old_vals)? {
                let ct = child.get(&k2).expect("listed").clone();
                let mut nt = ct;
                for (attr, v) in conn.to_attrs.iter().zip(new_vals.iter()) {
                    nt = nt.with_named(&child_schema, attr, v.clone())?;
                }
                work.push((conn.to.clone(), k2, nt));
            }
        }

        // repair referencing tuples when referenced key values changed
        for conn in schema.referencers_of(&rel) {
            let old_vals = conn.to_values(&rel_schema, &old)?;
            let new_vals = conn.to_values(&rel_schema, &newt)?;
            if old_vals == new_vals {
                continue;
            }
            let referencing = db.view(&conn.from)?;
            let ref_schema = referencing.schema().clone();
            for k1 in referencing.keys_by_attrs(&conn.from_attrs, &old_vals)? {
                match policy.modify_action(&conn.name) {
                    RefModifyAction::Propagate => {
                        let rt = referencing.get(&k1).expect("listed").clone();
                        let mut nt = rt;
                        for (attr, v) in conn.from_attrs.iter().zip(new_vals.iter()) {
                            nt = nt.with_named(&ref_schema, attr, v.clone())?;
                        }
                        work.push((conn.from.clone(), k1, nt));
                    }
                    RefModifyAction::Nullify => {
                        let rt = referencing.get(&k1).expect("listed").clone();
                        let mut nt = rt;
                        for attr in &conn.from_attrs {
                            nt = nt.with_named(&ref_schema, attr, Value::Null).map_err(|e| {
                                Error::ConstraintViolation(format!(
                                    "cannot nullify {}.{attr}: {e}",
                                    conn.from
                                ))
                            })?;
                        }
                        work.push((conn.from.clone(), k1, nt));
                    }
                    RefModifyAction::Cascade => {
                        extra_deletes.push((conn.from.clone(), k1));
                    }
                }
            }
        }
    }

    for (rel, k) in extra_deletes {
        // full structural deletion of each cascaded referencing tuple
        let sub = plan_delete(schema, db, &rel, &k, policy)?;
        ops.extend(sub);
    }
    if sp.is_recording() {
        sp.field("relation", Json::str(relation));
        sp.field("key", Json::str(old_key.to_string()));
        sp.field("ops", Json::Int(ops.len() as i64));
    }
    Ok(ops)
}

/// One unmet dependency of a (possibly not-yet-inserted) tuple: the target
/// relation that must contain a matching tuple, and the connecting values
/// it must carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingDependency {
    /// Name of the violated connection.
    pub connection: String,
    /// Relation that must contain the missing tuple.
    pub relation: String,
    /// Attribute names on the target relation.
    pub attrs: Vec<String>,
    /// Required values for those attributes.
    pub values: Vec<Value>,
}

/// Dependencies of `tuple` (as a member of `relation`) that the database
/// does not currently satisfy: a missing owner, general entity, or
/// referenced tuple.
pub fn missing_dependencies(
    schema: &StructuralSchema,
    db: &impl DbRead,
    relation: &str,
    tuple: &Tuple,
) -> Result<Vec<MissingDependency>> {
    let rel_schema = db.view(relation)?.schema().clone();
    let mut out = Vec::new();
    for dep in schema.dependencies_of(relation) {
        let vals = values_on_side(&dep, &rel_schema, tuple, true)?;
        if vals.iter().any(Value::is_null) {
            // NULL reference is explicitly legal (reference rule 1); NULLs
            // cannot occur in key-side dependencies.
            continue;
        }
        let target = db.view(dep.target())?;
        if target.find_by_attrs(dep.target_attrs(), &vals)?.is_empty() {
            out.push(MissingDependency {
                connection: dep.connection.name.clone(),
                relation: dep.target().to_owned(),
                attrs: dep.target_attrs().to_vec(),
                values: vals,
            });
        }
    }
    Ok(out)
}

/// Values of the connecting attributes on the source (`source = true`) or
/// target side of a traversal, taken from a tuple of that side's relation.
fn values_on_side(
    t: &Traversal<'_>,
    schema: &RelationSchema,
    tuple: &Tuple,
    source: bool,
) -> Result<Vec<Value>> {
    let attrs = if source {
        t.source_attrs()
    } else {
        t.target_attrs()
    };
    attrs
        .iter()
        .map(|a| tuple.get_named(schema, a).cloned())
        .collect()
}

/// Build a stub tuple for `relation` carrying `values` in `attrs`; other
/// attributes get NULL when nullable and a type-appropriate default
/// otherwise.
pub fn stub_tuple(schema: &RelationSchema, attrs: &[String], values: &[Value]) -> Result<Tuple> {
    let mut out: Vec<Value> = Vec::with_capacity(schema.arity());
    for a in schema.attributes() {
        if let Some(pos) = attrs.iter().position(|x| *x == a.name) {
            out.push(values[pos].clone());
        } else if a.nullable {
            out.push(Value::Null);
        } else {
            out.push(match a.ty {
                DataType::Int => Value::Int(0),
                DataType::Float => Value::Float(0.0),
                DataType::Text => Value::Text(String::new()),
                DataType::Bool => Value::Bool(false),
            });
        }
    }
    Tuple::new(schema, out)
}

/// Recursively plan the stub insertions needed so that `tuple` (already
/// planned for insertion into `relation`) satisfies all its dependencies.
/// `allow` gates which relations the caller may touch (the translator's
/// per-relation insert permission); a required-but-forbidden insertion
/// aborts the plan.
pub fn plan_completion(
    schema: &StructuralSchema,
    db: &impl DbRead,
    relation: &str,
    tuple: &Tuple,
    allow: &dyn Fn(&str) -> bool,
) -> Result<Vec<DbOp>> {
    let mut ops = Vec::new();
    // planned: dependencies already scheduled in this plan
    let mut planned: BTreeSet<(String, Vec<Value>)> = BTreeSet::new();
    let mut work: Vec<(String, Tuple)> = vec![(relation.to_owned(), tuple.clone())];
    while let Some((rel, t)) = work.pop() {
        for dep in missing_dependencies(schema, db, &rel, &t)? {
            if !planned.insert((dep.relation.clone(), dep.values.clone())) {
                continue;
            }
            if !allow(&dep.relation) {
                return Err(Error::ConstraintViolation(format!(
                    "required insertion into {} is not permitted",
                    dep.relation
                )));
            }
            let target_schema = db.view(&dep.relation)?.schema().clone();
            let stub = stub_tuple(&target_schema, &dep.attrs, &dep.values)?;
            ops.push(DbOp::Insert {
                relation: dep.relation.clone(),
                tuple: stub.clone(),
            });
            work.push((dep.relation, stub));
        }
    }
    // parents before children: dependencies were discovered child-first
    ops.reverse();
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connection::Connection;

    /// University-like mini schema:
    /// DEPARTMENT(dept_name*) <— COURSES(course_id*, dept_name)
    /// COURSES —* GRADES(course_id*, ssn*, grade)
    /// STUDENT(ssn*, degree) —* GRADES
    /// CURRICULUM(degree*, course_id*) —> COURSES
    fn setup() -> (StructuralSchema, Database) {
        let mut cat = DatabaseSchema::new();
        cat.add(
            RelationSchema::new(
                "DEPARTMENT",
                vec![AttributeDef::required("dept_name", DataType::Text)],
                &["dept_name"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "COURSES",
                vec![
                    AttributeDef::required("course_id", DataType::Text),
                    AttributeDef::nullable("dept_name", DataType::Text),
                ],
                &["course_id"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "STUDENT",
                vec![
                    AttributeDef::required("ssn", DataType::Int),
                    AttributeDef::nullable("degree", DataType::Text),
                ],
                &["ssn"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "GRADES",
                vec![
                    AttributeDef::required("course_id", DataType::Text),
                    AttributeDef::required("ssn", DataType::Int),
                    AttributeDef::nullable("grade", DataType::Text),
                ],
                &["course_id", "ssn"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "CURRICULUM",
                vec![
                    AttributeDef::required("degree", DataType::Text),
                    AttributeDef::required("course_id", DataType::Text),
                ],
                &["degree", "course_id"],
            )
            .unwrap(),
        )
        .unwrap();
        let mut s = StructuralSchema::new(cat.clone());
        s.add_connection(Connection::reference(
            "courses_dept",
            "COURSES",
            &["dept_name"],
            "DEPARTMENT",
            &["dept_name"],
        ))
        .unwrap();
        s.add_connection(Connection::ownership(
            "courses_grades",
            "COURSES",
            &["course_id"],
            "GRADES",
            &["course_id"],
        ))
        .unwrap();
        s.add_connection(Connection::ownership(
            "student_grades",
            "STUDENT",
            &["ssn"],
            "GRADES",
            &["ssn"],
        ))
        .unwrap();
        s.add_connection(Connection::reference(
            "curriculum_courses",
            "CURRICULUM",
            &["course_id"],
            "COURSES",
            &["course_id"],
        ))
        .unwrap();

        let mut db = Database::from_schema(&cat);
        db.insert("DEPARTMENT", vec!["CS".into()]).unwrap();
        db.insert("COURSES", vec!["CS345".into(), "CS".into()])
            .unwrap();
        db.insert("COURSES", vec!["CS101".into(), "CS".into()])
            .unwrap();
        db.insert("STUDENT", vec![1.into(), "MS".into()]).unwrap();
        db.insert("STUDENT", vec![2.into(), "PhD".into()]).unwrap();
        db.insert("GRADES", vec!["CS345".into(), 1.into(), "A".into()])
            .unwrap();
        db.insert("GRADES", vec!["CS345".into(), 2.into(), "B".into()])
            .unwrap();
        db.insert("GRADES", vec!["CS101".into(), 1.into(), "A".into()])
            .unwrap();
        db.insert("CURRICULUM", vec!["MS".into(), "CS345".into()])
            .unwrap();
        (s, db)
    }

    #[test]
    fn clean_database_has_no_violations() {
        let (s, db) = setup();
        assert!(check_database(&s, &db).unwrap().is_empty());
    }

    #[test]
    fn detects_orphan_owned() {
        let (s, mut db) = setup();
        db.insert("GRADES", vec!["GHOST".into(), 1.into(), Value::Null])
            .unwrap();
        let v = check_database(&s, &db).unwrap();
        assert!(v.iter().any(|x| matches!(x, Violation::OrphanOwned { connection, .. } if connection == "courses_grades")));
    }

    #[test]
    fn detects_dangling_reference() {
        let (s, mut db) = setup();
        db.insert("COURSES", vec!["EE1".into(), "EE".into()])
            .unwrap();
        let v = check_database(&s, &db).unwrap();
        assert_eq!(v.len(), 1);
        assert!(
            matches!(&v[0], Violation::DanglingReference { relation, .. } if relation == "COURSES")
        );
    }

    #[test]
    fn null_reference_is_legal() {
        let (s, mut db) = setup();
        db.insert("COURSES", vec!["X1".into(), Value::Null])
            .unwrap();
        assert!(check_database(&s, &db).unwrap().is_empty());
    }

    #[test]
    fn delete_cascades_over_ownership() {
        let (s, mut db) = setup();
        // CURRICULUM references CS345 → restrict would veto; use cascade for it
        let policy = IntegrityPolicy::default()
            .with_delete_action("curriculum_courses", RefDeleteAction::Cascade);
        let ops = plan_delete(&s, &db, "COURSES", &Key::single("CS345"), &policy).unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&s, &db).unwrap().is_empty());
        assert_eq!(db.table("GRADES").unwrap().len(), 1); // only CS101's grade
        assert_eq!(db.table("CURRICULUM").unwrap().len(), 0);
        assert_eq!(db.table("COURSES").unwrap().len(), 1);
    }

    #[test]
    fn delete_restrict_vetoes() {
        let (s, db) = setup();
        let policy =
            IntegrityPolicy::uniform(RefDeleteAction::Restrict, RefModifyAction::Propagate);
        let r = plan_delete(&s, &db, "COURSES", &Key::single("CS345"), &policy);
        assert!(matches!(r, Err(Error::ConstraintViolation(_))));
    }

    #[test]
    fn delete_nullify_fails_on_key_reference() {
        let (s, db) = setup();
        // CURRICULUM's referencing attrs are part of its key → cannot nullify
        let policy = IntegrityPolicy::default(); // Nullify
        let r = plan_delete(&s, &db, "COURSES", &Key::single("CS345"), &policy);
        assert!(matches!(r, Err(Error::ConstraintViolation(_))));
    }

    #[test]
    fn delete_nullify_works_on_nonkey_reference() {
        let (s, mut db) = setup();
        // delete the department; COURSES.dept_name is nullable non-key
        let ops = plan_delete(
            &s,
            &db,
            "DEPARTMENT",
            &Key::single("CS"),
            &IntegrityPolicy::default(),
        )
        .unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&s, &db).unwrap().is_empty());
        let t = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        assert!(t.get(1).is_null());
    }

    #[test]
    fn delete_of_student_cascades_grades() {
        let (s, mut db) = setup();
        let ops = plan_delete(
            &s,
            &db,
            "STUDENT",
            &Key::single(1),
            &IntegrityPolicy::default(),
        )
        .unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&s, &db).unwrap().is_empty());
        assert_eq!(db.table("GRADES").unwrap().len(), 1); // only ssn=2 grade left
    }

    #[test]
    fn key_replacement_propagates_to_owned_and_referencing() {
        let (s, mut db) = setup();
        let courses = db.table("COURSES").unwrap().schema().clone();
        let new = Tuple::new(&courses, vec!["EES345".into(), "CS".into()]).unwrap();
        let ops = plan_key_replacement(
            &s,
            &db,
            "COURSES",
            &Key::single("CS345"),
            new,
            &IntegrityPolicy::default(),
        )
        .unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&s, &db).unwrap().is_empty());
        // grades re-keyed
        let g = db.table("GRADES").unwrap();
        assert!(g.contains_key(&Key(vec!["EES345".into(), 1.into()])));
        assert!(!g.contains_key(&Key(vec!["CS345".into(), 1.into()])));
        // curriculum re-keyed (propagate)
        let c = db.table("CURRICULUM").unwrap();
        assert!(c.contains_key(&Key(vec!["MS".into(), "EES345".into()])));
    }

    #[test]
    fn key_replacement_cascade_deletes_referencing() {
        let (s, mut db) = setup();
        let courses = db.table("COURSES").unwrap().schema().clone();
        let new = Tuple::new(&courses, vec!["EES345".into(), "CS".into()]).unwrap();
        let policy = IntegrityPolicy::default()
            .with_modify_action("curriculum_courses", RefModifyAction::Cascade);
        let ops =
            plan_key_replacement(&s, &db, "COURSES", &Key::single("CS345"), new, &policy).unwrap();
        db.apply_all(&ops).unwrap();
        assert!(check_database(&s, &db).unwrap().is_empty());
        assert_eq!(db.table("CURRICULUM").unwrap().len(), 0);
    }

    #[test]
    fn nonkey_replacement_produces_single_op() {
        let (s, db) = setup();
        let courses = db.table("COURSES").unwrap().schema().clone();
        let new = Tuple::new(&courses, vec!["CS345".into(), Value::Null]).unwrap();
        let ops = plan_key_replacement(
            &s,
            &db,
            "COURSES",
            &Key::single("CS345"),
            new,
            &IntegrityPolicy::default(),
        )
        .unwrap();
        assert_eq!(ops.len(), 1);
        assert!(ops[0].is_replace());
    }

    #[test]
    fn identical_replacement_is_noop() {
        let (s, db) = setup();
        let old = db
            .table("COURSES")
            .unwrap()
            .get(&Key::single("CS345"))
            .unwrap()
            .clone();
        let ops = plan_key_replacement(
            &s,
            &db,
            "COURSES",
            &Key::single("CS345"),
            old,
            &IntegrityPolicy::default(),
        )
        .unwrap();
        assert!(ops.is_empty());
    }

    #[test]
    fn restricted_delete_traces_rule_and_tuple() {
        let (s, db) = setup();
        let policy =
            IntegrityPolicy::uniform(RefDeleteAction::Restrict, RefModifyAction::Propagate);
        let scope = trace::start_trace();
        let r = plan_delete(&s, &db, "COURSES", &Key::single("CS345"), &policy);
        assert!(r.is_err());
        let me = trace::current_thread_id();
        let aborts: Vec<_> = trace::events()
            .into_iter()
            .filter(|e| e.thread == me && e.name == "integrity.abort")
            .collect();
        drop(scope);
        assert_eq!(aborts.len(), 1);
        let a = &aborts[0];
        assert_eq!(
            a.field("connection").unwrap(),
            &Json::str("curriculum_courses")
        );
        assert_eq!(a.field("relation").unwrap(), &Json::str("CURRICULUM"));
        assert!(a.field("key").unwrap().as_str().unwrap().contains("CS345"));
        assert_eq!(a.field("reason").unwrap(), &Json::str("restrict"));
    }

    #[test]
    fn cascade_trace_counts_tuples_per_rule() {
        let (s, db) = setup();
        let scope = trace::start_trace();
        plan_delete(
            &s,
            &db,
            "STUDENT",
            &Key::single(1),
            &IntegrityPolicy::default(),
        )
        .unwrap();
        let me = trace::current_thread_id();
        let mine: Vec<_> = trace::events()
            .into_iter()
            .filter(|e| e.thread == me)
            .collect();
        drop(scope);
        // student_grades owns both of ssn=1's grade rows
        let cascade = mine
            .iter()
            .find(|e| {
                e.name == "integrity.cascade"
                    && e.field("connection") == Some(&Json::str("student_grades"))
            })
            .expect("cascade event for student_grades");
        assert_eq!(cascade.field("cascaded").unwrap(), &Json::Int(2));
        assert_eq!(cascade.field("kind").unwrap(), &Json::str("ownership"));
        // the enclosing span totals the plan: STUDENT(1) + 2 grades
        let span = mine
            .iter()
            .find(|e| e.name == "integrity.plan_delete")
            .expect("plan_delete span");
        assert_eq!(span.field("deletes").unwrap(), &Json::Int(3));
        assert_eq!(span.field("nullified").unwrap(), &Json::Int(0));
    }

    #[test]
    fn missing_dependencies_found() {
        let (s, db) = setup();
        let courses = db.table("COURSES").unwrap().schema().clone();
        let t = Tuple::new(&courses, vec!["EE282".into(), "EE".into()]).unwrap();
        let deps = missing_dependencies(&s, &db, "COURSES", &t).unwrap();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].relation, "DEPARTMENT");
        assert_eq!(deps[0].values, vec![Value::text("EE")]);
    }

    #[test]
    fn completion_inserts_stub_parents() {
        let (s, mut db) = setup();
        let grades = db.table("GRADES").unwrap().schema().clone();
        let t = Tuple::new(&grades, vec!["EE282".into(), 9.into(), "A".into()]).unwrap();
        let ops = plan_completion(&s, &db, "GRADES", &t, &|_| true).unwrap();
        // needs COURSES(EE282) and STUDENT(9); the stub course has NULL dept
        db.apply_all(&ops).unwrap();
        db.table_mut("GRADES").unwrap().insert(t).unwrap();
        assert!(check_database(&s, &db).unwrap().is_empty());
        assert!(db
            .table("COURSES")
            .unwrap()
            .contains_key(&Key::single("EE282")));
        assert!(db.table("STUDENT").unwrap().contains_key(&Key::single(9)));
    }

    #[test]
    fn completion_respects_permission_gate() {
        let (s, db) = setup();
        let grades = db.table("GRADES").unwrap().schema().clone();
        let t = Tuple::new(&grades, vec!["EE282".into(), 9.into(), "A".into()]).unwrap();
        let r = plan_completion(&s, &db, "GRADES", &t, &|rel| rel != "STUDENT");
        assert!(matches!(r, Err(Error::ConstraintViolation(_))));
    }

    #[test]
    fn stub_tuple_defaults() {
        let schema = RelationSchema::new(
            "X",
            vec![
                AttributeDef::required("k", DataType::Text),
                AttributeDef::required("n", DataType::Int),
                AttributeDef::nullable("m", DataType::Float),
            ],
            &["k"],
        )
        .unwrap();
        let t = stub_tuple(&schema, &["k".to_string()], &[Value::text("a")]).unwrap();
        assert_eq!(t.values(), &[Value::text("a"), Value::Int(0), Value::Null]);
    }

    #[test]
    fn consistency_check_closure() {
        let (s, mut db) = setup();
        let courses = db.table("COURSES").unwrap().schema().clone();
        // inserting a dangling course through the checked path rolls back
        let bad = Tuple::new(&courses, vec!["EE9".into(), "EE".into()]).unwrap();
        let ops = vec![DbOp::Insert {
            relation: "COURSES".into(),
            tuple: bad,
        }];
        let err = db
            .apply_all_checked(&ops, consistency_check(&s))
            .unwrap_err();
        assert!(matches!(err, Error::Rolledback(_)));
        assert_eq!(db.table("COURSES").unwrap().len(), 2);
    }
}
