//! JSON codecs for the structural model.
//!
//! Decoding re-validates: connections are re-checked against the decoded
//! catalog through [`StructuralSchema::add_connection`], so a tampered
//! document cannot smuggle in an ill-typed connection.

use crate::connection::{Connection, ConnectionKind};
use crate::schema::StructuralSchema;
use vo_relational::prelude::*;
use vo_relational::schema::RelationSchema;

fn bad(msg: impl Into<String>) -> Error {
    Error::Serialization(msg.into())
}

impl ConnectionKind {
    /// Encode as a JSON string.
    pub fn to_json(&self) -> Json {
        Json::str(self.to_string())
    }

    /// Decode from a JSON string.
    pub fn from_json(json: &Json) -> Result<Self> {
        match json.as_str()? {
            "ownership" => Ok(ConnectionKind::Ownership),
            "reference" => Ok(ConnectionKind::Reference),
            "subset" => Ok(ConnectionKind::Subset),
            other => Err(bad(format!("unknown connection kind `{other}`"))),
        }
    }
}

fn strings_to_json(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::str(s.clone())).collect())
}

fn strings_from_json(json: &Json) -> Result<Vec<String>> {
    json.elements()?
        .iter()
        .map(|s| s.as_str().map(str::to_owned).map_err(Error::from))
        .collect()
}

impl Connection {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name.clone())),
            ("kind", self.kind.to_json()),
            ("from", Json::str(self.from.clone())),
            ("to", Json::str(self.to.clone())),
            ("from_attrs", strings_to_json(&self.from_attrs)),
            ("to_attrs", strings_to_json(&self.to_attrs)),
        ])
    }

    /// Decode from JSON (structure only — call
    /// [`Connection::validate`] or add through a schema to re-check).
    pub fn from_json(json: &Json) -> Result<Self> {
        Ok(Connection {
            name: json.field("name")?.as_str()?.to_owned(),
            kind: ConnectionKind::from_json(json.field("kind")?)?,
            from: json.field("from")?.as_str()?.to_owned(),
            to: json.field("to")?.as_str()?.to_owned(),
            from_attrs: strings_from_json(json.field("from_attrs")?)?,
            to_attrs: strings_from_json(json.field("to_attrs")?)?,
        })
    }
}

impl StructuralSchema {
    /// Encode as JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "catalog",
                Json::Arr(self.catalog().iter().map(|r| r.to_json()).collect()),
            ),
            (
                "connections",
                Json::Arr(self.connections().iter().map(|c| c.to_json()).collect()),
            ),
        ])
    }

    /// Decode from JSON, re-validating every relation schema and every
    /// connection.
    pub fn from_json(json: &Json) -> Result<Self> {
        let mut catalog = DatabaseSchema::new();
        for r in json.field("catalog")?.elements()? {
            catalog.add(RelationSchema::from_json(r)?)?;
        }
        let mut schema = StructuralSchema::new(catalog);
        for c in json.field("connections")?.elements()? {
            schema.add_connection(Connection::from_json(c)?)?;
        }
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vo_relational::json::parse;
    use vo_relational::schema::AttributeDef;

    fn sample() -> StructuralSchema {
        let mut catalog = DatabaseSchema::new();
        catalog
            .add(
                RelationSchema::new(
                    "DEPT",
                    vec![AttributeDef::required("dept", DataType::Text)],
                    &["dept"],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
            .add(
                RelationSchema::new(
                    "COURSE",
                    vec![
                        AttributeDef::required("id", DataType::Text),
                        AttributeDef::required("dept", DataType::Text),
                    ],
                    &["id"],
                )
                .unwrap(),
            )
            .unwrap();
        let mut schema = StructuralSchema::new(catalog);
        schema
            .add_connection(Connection::reference(
                "course_dept",
                "COURSE",
                &["dept"],
                "DEPT",
                &["dept"],
            ))
            .unwrap();
        schema
    }

    #[test]
    fn schema_roundtrip() {
        let schema = sample();
        let text = schema.to_json().pretty();
        let back = StructuralSchema::from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.catalog().relation_names(), vec!["COURSE", "DEPT"]);
        assert_eq!(back.connections().len(), 1);
        assert_eq!(back.connections()[0], schema.connections()[0]);
    }

    #[test]
    fn tampered_connection_rejected() {
        let schema = sample();
        // point the connection at a non-existent relation
        let text = schema
            .to_json()
            .pretty()
            .replace("\"to\": \"DEPT\"", "\"to\": \"NOPE\"");
        assert!(StructuralSchema::from_json(&parse(&text).unwrap()).is_err());
    }
}
