//! Connections between relations (paper §2, Definitions 2.1–2.4).
//!
//! A connection relates two relations `R1` and `R2` through attribute sets
//! `X1` and `X2` of equal arity and matching domains. The three kinds —
//! ownership, reference, subset — carry the integrity rules the paper
//! states, and each kind constrains how `X1`/`X2` relate to the keys:
//!
//! | kind      | X1            | X2            | cardinality |
//! |-----------|---------------|---------------|-------------|
//! | ownership | `= K(R1)`     | `⊂ K(R2)`     | 1:n         |
//! | reference | `⊆ K(R1)` or `⊆ NK(R1)` | `= K(R2)` | n:1 |
//! | subset    | `= K(R1)`     | `= K(R2)`     | 1:\[0,1\]  |

use std::fmt;
use vo_relational::prelude::*;

/// The three connection types of the structural model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnectionKind {
    /// Owned tuples depend on a single owner tuple (`R1 —* R2`).
    Ownership,
    /// Referencing tuples point at a more abstract entity (`R1 —> R2`).
    Reference,
    /// `R2` specializes `R1` (`R1 —⊃ R2`), at most one `R2` tuple per `R1`.
    Subset,
}

impl fmt::Display for ConnectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConnectionKind::Ownership => "ownership",
            ConnectionKind::Reference => "reference",
            ConnectionKind::Subset => "subset",
        };
        f.write_str(s)
    }
}

/// A directed, typed connection from relation `from` (`R1`) to relation
/// `to` (`R2`) through the ordered attribute pair `⟨X1, X2⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// Unique connection name (used by policies and dialogs).
    pub name: String,
    /// Connection type.
    pub kind: ConnectionKind,
    /// `R1`.
    pub from: String,
    /// `R2`.
    pub to: String,
    /// `X1` — connecting attributes of `R1`.
    pub from_attrs: Vec<String>,
    /// `X2` — connecting attributes of `R2`.
    pub to_attrs: Vec<String>,
}

impl Connection {
    /// Construct an ownership connection.
    pub fn ownership(
        name: impl Into<String>,
        from: impl Into<String>,
        from_attrs: &[&str],
        to: impl Into<String>,
        to_attrs: &[&str],
    ) -> Self {
        Self::build(
            name,
            ConnectionKind::Ownership,
            from,
            from_attrs,
            to,
            to_attrs,
        )
    }

    /// Construct a reference connection.
    pub fn reference(
        name: impl Into<String>,
        from: impl Into<String>,
        from_attrs: &[&str],
        to: impl Into<String>,
        to_attrs: &[&str],
    ) -> Self {
        Self::build(
            name,
            ConnectionKind::Reference,
            from,
            from_attrs,
            to,
            to_attrs,
        )
    }

    /// Construct a subset connection.
    pub fn subset(
        name: impl Into<String>,
        from: impl Into<String>,
        from_attrs: &[&str],
        to: impl Into<String>,
        to_attrs: &[&str],
    ) -> Self {
        Self::build(name, ConnectionKind::Subset, from, from_attrs, to, to_attrs)
    }

    fn build(
        name: impl Into<String>,
        kind: ConnectionKind,
        from: impl Into<String>,
        from_attrs: &[&str],
        to: impl Into<String>,
        to_attrs: &[&str],
    ) -> Self {
        Connection {
            name: name.into(),
            kind,
            from: from.into(),
            to: to.into(),
            from_attrs: from_attrs.iter().map(|s| (*s).to_owned()).collect(),
            to_attrs: to_attrs.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    /// Validate this connection against a schema catalog, enforcing
    /// Definitions 2.1–2.4: both relations exist, `X1`/`X2` have equal
    /// arity and matching domains, and the key conditions for the kind.
    pub fn validate(&self, catalog: &DatabaseSchema) -> Result<()> {
        let r1 = catalog.relation(&self.from)?;
        let r2 = catalog.relation(&self.to)?;
        if self.from_attrs.is_empty() {
            return Err(Error::InvalidSchema(format!(
                "connection {}: empty connecting attribute set",
                self.name
            )));
        }
        if self.from_attrs.len() != self.to_attrs.len() {
            return Err(Error::InvalidSchema(format!(
                "connection {}: X1 and X2 differ in arity",
                self.name
            )));
        }
        let t1 = r1.types_of(&self.from_attrs)?;
        let t2 = r2.types_of(&self.to_attrs)?;
        if t1 != t2 {
            return Err(Error::InvalidSchema(format!(
                "connection {}: X1 and X2 domains differ",
                self.name
            )));
        }
        match self.kind {
            ConnectionKind::Ownership => {
                if !r1.attrs_equal_key(&self.from_attrs) {
                    return Err(Error::InvalidSchema(format!(
                        "ownership connection {}: X1 must equal K({})",
                        self.name, self.from
                    )));
                }
                if !r2.attrs_subset_of_key(&self.to_attrs)
                    || self.to_attrs.len() >= r2.key_indices().len()
                {
                    return Err(Error::InvalidSchema(format!(
                        "ownership connection {}: X2 must be a proper subset of K({})",
                        self.name, self.to
                    )));
                }
            }
            ConnectionKind::Reference => {
                let in_key = r1.attrs_subset_of_key(&self.from_attrs);
                let in_nonkey = r1.attrs_subset_of_nonkey(&self.from_attrs);
                if !in_key && !in_nonkey {
                    return Err(Error::InvalidSchema(format!(
                        "reference connection {}: X1 must lie within K({f}) or within NK({f})",
                        self.name,
                        f = self.from
                    )));
                }
                if !r2.attrs_equal_key(&self.to_attrs) {
                    return Err(Error::InvalidSchema(format!(
                        "reference connection {}: X2 must equal K({})",
                        self.name, self.to
                    )));
                }
            }
            ConnectionKind::Subset => {
                if !r1.attrs_equal_key(&self.from_attrs) {
                    return Err(Error::InvalidSchema(format!(
                        "subset connection {}: X1 must equal K({})",
                        self.name, self.from
                    )));
                }
                if !r2.attrs_equal_key(&self.to_attrs) {
                    return Err(Error::InvalidSchema(format!(
                        "subset connection {}: X2 must equal K({})",
                        self.name, self.to
                    )));
                }
            }
        }
        Ok(())
    }

    /// Values of `X1` in a tuple of `R1`.
    pub fn from_values(&self, r1: &RelationSchema, tuple: &Tuple) -> Result<Vec<Value>> {
        self.from_attrs
            .iter()
            .map(|a| tuple.get_named(r1, a).cloned())
            .collect()
    }

    /// Values of `X2` in a tuple of `R2`.
    pub fn to_values(&self, r2: &RelationSchema, tuple: &Tuple) -> Result<Vec<Value>> {
        self.to_attrs
            .iter()
            .map(|a| tuple.get_named(r2, a).cloned())
            .collect()
    }

    /// Two tuples are connected iff their connecting values match and are
    /// non-NULL (Definition 2.1).
    pub fn tuples_connected(
        &self,
        r1: &RelationSchema,
        t1: &Tuple,
        r2: &RelationSchema,
        t2: &Tuple,
    ) -> Result<bool> {
        let v1 = self.from_values(r1, t1)?;
        let v2 = self.to_values(r2, t2)?;
        Ok(!v1.iter().any(Value::is_null) && v1 == v2)
    }

    /// Graphical symbol used by the paper's figures.
    pub fn symbol(&self) -> &'static str {
        match self.kind {
            ConnectionKind::Ownership => "—*",
            ConnectionKind::Reference => "—>",
            ConnectionKind::Subset => "—⊃",
        }
    }
}

impl fmt::Display for Connection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} on ({} ~ {}) [{}]",
            self.from,
            self.symbol(),
            self.to,
            self.from_attrs.join(","),
            self.to_attrs.join(","),
            self.name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> DatabaseSchema {
        let mut cat = DatabaseSchema::new();
        cat.add(
            RelationSchema::new(
                "COURSES",
                vec![
                    AttributeDef::required("course_id", DataType::Text),
                    AttributeDef::required("dept_name", DataType::Text),
                ],
                &["course_id"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "GRADES",
                vec![
                    AttributeDef::required("course_id", DataType::Text),
                    AttributeDef::required("ssn", DataType::Int),
                    AttributeDef::nullable("grade", DataType::Text),
                ],
                &["course_id", "ssn"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "DEPARTMENT",
                vec![AttributeDef::required("dept_name", DataType::Text)],
                &["dept_name"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "PEOPLE",
                vec![
                    AttributeDef::required("ssn", DataType::Int),
                    AttributeDef::required("name", DataType::Text),
                ],
                &["ssn"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "STUDENT",
                vec![
                    AttributeDef::required("ssn", DataType::Int),
                    AttributeDef::nullable("degree_program", DataType::Text),
                ],
                &["ssn"],
            )
            .unwrap(),
        )
        .unwrap();
        cat
    }

    #[test]
    fn valid_ownership() {
        let c = Connection::ownership(
            "courses_grades",
            "COURSES",
            &["course_id"],
            "GRADES",
            &["course_id"],
        );
        c.validate(&catalog()).unwrap();
        assert_eq!(c.symbol(), "—*");
    }

    #[test]
    fn ownership_rejects_full_key_target() {
        // X2 = K(R2) is a subset connection, not ownership (proper subset required)
        let c = Connection::ownership("bad", "PEOPLE", &["ssn"], "STUDENT", &["ssn"]);
        assert!(c.validate(&catalog()).is_err());
    }

    #[test]
    fn ownership_rejects_nonkey_source() {
        let c = Connection::ownership("bad", "COURSES", &["dept_name"], "GRADES", &["course_id"]);
        assert!(c.validate(&catalog()).is_err());
    }

    #[test]
    fn valid_reference_from_nonkey() {
        let c = Connection::reference(
            "courses_dept",
            "COURSES",
            &["dept_name"],
            "DEPARTMENT",
            &["dept_name"],
        );
        c.validate(&catalog()).unwrap();
        assert_eq!(c.symbol(), "—>");
    }

    #[test]
    fn valid_reference_from_key() {
        let c = Connection::reference(
            "grades_courses",
            "GRADES",
            &["course_id"],
            "COURSES",
            &["course_id"],
        );
        c.validate(&catalog()).unwrap();
    }

    #[test]
    fn reference_rejects_nonkey_target() {
        let c = Connection::reference("bad", "COURSES", &["dept_name"], "GRADES", &["grade"]);
        assert!(c.validate(&catalog()).is_err());
    }

    #[test]
    fn reference_rejects_mixed_x1() {
        // X1 straddling key and non-key is not allowed
        let c = Connection::reference(
            "bad",
            "GRADES",
            &["course_id", "grade"],
            "COURSES",
            &["course_id", "dept_name"],
        );
        assert!(c.validate(&catalog()).is_err());
    }

    #[test]
    fn valid_subset() {
        let c = Connection::subset("people_student", "PEOPLE", &["ssn"], "STUDENT", &["ssn"]);
        c.validate(&catalog()).unwrap();
        assert_eq!(c.symbol(), "—⊃");
    }

    #[test]
    fn rejects_domain_mismatch() {
        let c = Connection::subset("bad", "PEOPLE", &["ssn"], "DEPARTMENT", &["dept_name"]);
        assert!(c.validate(&catalog()).is_err());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let c = Connection::reference(
            "bad",
            "GRADES",
            &["course_id", "ssn"],
            "COURSES",
            &["course_id"],
        );
        assert!(c.validate(&catalog()).is_err());
    }

    #[test]
    fn rejects_unknown_relation() {
        let c = Connection::reference("bad", "NOPE", &["x"], "DEPARTMENT", &["dept_name"]);
        assert!(matches!(
            c.validate(&catalog()),
            Err(Error::NoSuchRelation(_))
        ));
    }

    #[test]
    fn tuple_connection_matching() {
        let cat = catalog();
        let c = Connection::reference(
            "courses_dept",
            "COURSES",
            &["dept_name"],
            "DEPARTMENT",
            &["dept_name"],
        );
        let courses = cat.relation("COURSES").unwrap();
        let dept = cat.relation("DEPARTMENT").unwrap();
        let t1 = Tuple::new(courses, vec!["CS345".into(), "CS".into()]).unwrap();
        let d_cs = Tuple::new(dept, vec!["CS".into()]).unwrap();
        let d_ee = Tuple::new(dept, vec!["EE".into()]).unwrap();
        assert!(c.tuples_connected(courses, &t1, dept, &d_cs).unwrap());
        assert!(!c.tuples_connected(courses, &t1, dept, &d_ee).unwrap());
    }

    #[test]
    fn display_shows_shape() {
        let c = Connection::ownership(
            "courses_grades",
            "COURSES",
            &["course_id"],
            "GRADES",
            &["course_id"],
        );
        let s = c.to_string();
        assert!(s.contains("COURSES —* GRADES"));
    }
}
