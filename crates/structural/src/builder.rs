//! Fluent builder for structural schemas.
//!
//! Collects relation and connection declarations, then validates the whole
//! schema at [`StructuralSchemaBuilder::build`] time, returning every
//! problem at once rather than failing on the first.

use crate::connection::Connection;
use crate::schema::StructuralSchema;
use vo_relational::prelude::*;

/// Declarative builder: declare relations and connections in any order,
/// then `build()` validates everything.
#[derive(Debug, Default)]
pub struct StructuralSchemaBuilder {
    relations: Vec<RelationSchema>,
    connections: Vec<Connection>,
    errors: Vec<Error>,
}

impl StructuralSchemaBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a relation. `attrs` pairs attribute names with types;
    /// names listed in `key` form the primary key and are non-nullable,
    /// all other attributes are nullable.
    pub fn relation(mut self, name: &str, attrs: &[(&str, DataType)], key: &[&str]) -> Self {
        let defs: Vec<AttributeDef> = attrs
            .iter()
            .map(|(n, t)| {
                if key.contains(n) {
                    AttributeDef::required(*n, *t)
                } else {
                    AttributeDef::nullable(*n, *t)
                }
            })
            .collect();
        match RelationSchema::new(name, defs, key) {
            Ok(r) => self.relations.push(r),
            Err(e) => self.errors.push(e),
        }
        self
    }

    /// Declare a relation where *all* attributes are non-nullable.
    pub fn relation_required(
        mut self,
        name: &str,
        attrs: &[(&str, DataType)],
        key: &[&str],
    ) -> Self {
        let defs: Vec<AttributeDef> = attrs
            .iter()
            .map(|(n, t)| AttributeDef::required(*n, *t))
            .collect();
        match RelationSchema::new(name, defs, key) {
            Ok(r) => self.relations.push(r),
            Err(e) => self.errors.push(e),
        }
        self
    }

    /// Declare an ownership connection `from —* to` (single-attribute pairs
    /// may use the short form `owns`).
    pub fn owns(
        self,
        name: &str,
        from: &str,
        from_attrs: &[&str],
        to: &str,
        to_attrs: &[&str],
    ) -> Self {
        self.conn(Connection::ownership(name, from, from_attrs, to, to_attrs))
    }

    /// Declare a reference connection `from —> to`.
    pub fn references(
        self,
        name: &str,
        from: &str,
        from_attrs: &[&str],
        to: &str,
        to_attrs: &[&str],
    ) -> Self {
        self.conn(Connection::reference(name, from, from_attrs, to, to_attrs))
    }

    /// Declare a subset connection `from —⊃ to`.
    pub fn subset(
        self,
        name: &str,
        from: &str,
        from_attrs: &[&str],
        to: &str,
        to_attrs: &[&str],
    ) -> Self {
        self.conn(Connection::subset(name, from, from_attrs, to, to_attrs))
    }

    fn conn(mut self, c: Connection) -> Self {
        self.connections.push(c);
        self
    }

    /// Validate and build. Returns the first accumulated error if any
    /// declaration failed.
    pub fn build(self) -> Result<StructuralSchema> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        let mut catalog = DatabaseSchema::new();
        for r in self.relations {
            catalog.add(r)?;
        }
        let mut schema = StructuralSchema::new(catalog);
        for c in self.connections {
            schema.add_connection(c)?;
        }
        Ok(schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_schema() {
        let s = StructuralSchemaBuilder::new()
            .relation(
                "DEPARTMENT",
                &[("dept_name", DataType::Text)],
                &["dept_name"],
            )
            .relation(
                "COURSES",
                &[("course_id", DataType::Text), ("dept_name", DataType::Text)],
                &["course_id"],
            )
            .references(
                "cd",
                "COURSES",
                &["dept_name"],
                "DEPARTMENT",
                &["dept_name"],
            )
            .build()
            .unwrap();
        assert_eq!(s.catalog().len(), 2);
        assert_eq!(s.connections().len(), 1);
    }

    #[test]
    fn nonkey_attrs_are_nullable() {
        let s = StructuralSchemaBuilder::new()
            .relation("X", &[("k", DataType::Int), ("v", DataType::Text)], &["k"])
            .build()
            .unwrap();
        let r = s.catalog().relation("X").unwrap();
        assert!(!r.attribute("k").unwrap().nullable);
        assert!(r.attribute("v").unwrap().nullable);
    }

    #[test]
    fn relation_required_marks_all_required() {
        let s = StructuralSchemaBuilder::new()
            .relation_required("X", &[("k", DataType::Int), ("v", DataType::Text)], &["k"])
            .build()
            .unwrap();
        let r = s.catalog().relation("X").unwrap();
        assert!(!r.attribute("v").unwrap().nullable);
    }

    #[test]
    fn surfaces_declaration_errors() {
        let r = StructuralSchemaBuilder::new()
            .relation("X", &[("k", DataType::Int)], &["missing"])
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn surfaces_connection_errors() {
        let r = StructuralSchemaBuilder::new()
            .relation("X", &[("k", DataType::Int)], &["k"])
            .relation("Y", &[("k", DataType::Int)], &["k"])
            .owns("bad", "X", &["k"], "Y", &["k"]) // X2 not a proper subset
            .build();
        assert!(r.is_err());
    }
}
