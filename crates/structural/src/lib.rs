//! # vo-structural
//!
//! The **structural model** of a relational database (paper §2; Wiederhold
//! & ElMasri): a directed graph whose vertices are relations and whose
//! edges are typed *connections* — **ownership** (`—*`), **reference**
//! (`—>`), and **subset** (`—⊃`) — each carrying precise integrity rules.
//!
//! The view-object layer (`vo-core`) consumes this crate twice: the
//! connection graph drives view-object *generation* (which relations are
//! reachable from a pivot, and how), and the integrity engine drives the
//! *global validation* step of every translated update.
//!
//! ```
//! use vo_relational::prelude::*;
//! use vo_structural::prelude::*;
//!
//! let schema = StructuralSchemaBuilder::new()
//!     .relation("DEPARTMENT", &[("dept_name", DataType::Text)], &["dept_name"])
//!     .relation(
//!         "COURSES",
//!         &[("course_id", DataType::Text), ("dept_name", DataType::Text)],
//!         &["course_id"],
//!     )
//!     .references("cd", "COURSES", &["dept_name"], "DEPARTMENT", &["dept_name"])
//!     .build()
//!     .unwrap();
//!
//! let mut db = Database::from_schema(schema.catalog());
//! db.insert("COURSES", vec!["CS345".into(), "CS".into()]).unwrap();
//! // the course references a department that does not exist:
//! let violations = check_database(&schema, &db).unwrap();
//! assert_eq!(violations.len(), 1);
//! ```

pub mod builder;
pub mod codec;
pub mod connection;
pub mod integrity;
pub mod schema;

pub use builder::StructuralSchemaBuilder;
pub use connection::{Connection, ConnectionKind};
pub use integrity::{
    check_database, consistency_check, missing_dependencies, plan_completion, plan_delete,
    plan_key_replacement, stub_tuple, IntegrityPolicy, MissingDependency, RefDeleteAction,
    RefModifyAction, Violation,
};
pub use schema::{StructuralSchema, Traversal};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::builder::StructuralSchemaBuilder;
    pub use crate::connection::{Connection, ConnectionKind};
    pub use crate::integrity::{
        check_database, consistency_check, missing_dependencies, plan_completion, plan_delete,
        plan_key_replacement, stub_tuple, IntegrityPolicy, MissingDependency, RefDeleteAction,
        RefModifyAction, Violation,
    };
    pub use crate::schema::{StructuralSchema, Traversal};
}
