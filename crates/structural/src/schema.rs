//! The structural schema: a directed graph whose vertices are relations
//! and whose edges are typed connections (paper §2).

use crate::connection::{Connection, ConnectionKind};
use vo_relational::prelude::*;

/// A traversal step over a connection, in either the stored (forward)
/// direction or the inverse direction (`C⁻¹` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Traversal<'a> {
    /// The underlying connection.
    pub connection: &'a Connection,
    /// True when traversing `from → to`; false for the inverse.
    pub forward: bool,
}

impl<'a> Traversal<'a> {
    /// The relation this step starts at.
    pub fn source(&self) -> &'a str {
        if self.forward {
            &self.connection.from
        } else {
            &self.connection.to
        }
    }

    /// The relation this step arrives at.
    pub fn target(&self) -> &'a str {
        if self.forward {
            &self.connection.to
        } else {
            &self.connection.from
        }
    }

    /// Connecting attributes on the source side.
    pub fn source_attrs(&self) -> &'a [String] {
        if self.forward {
            &self.connection.from_attrs
        } else {
            &self.connection.to_attrs
        }
    }

    /// Connecting attributes on the target side.
    pub fn target_attrs(&self) -> &'a [String] {
        if self.forward {
            &self.connection.to_attrs
        } else {
            &self.connection.from_attrs
        }
    }

    /// Human-readable label, e.g. `GRADES *— STUDENT` for an inverse
    /// ownership step.
    pub fn label(&self) -> String {
        if self.forward {
            format!(
                "{} {} {}",
                self.source(),
                self.connection.symbol(),
                self.target()
            )
        } else {
            let sym = match self.connection.kind {
                ConnectionKind::Ownership => "*—",
                ConnectionKind::Reference => "<—",
                ConnectionKind::Subset => "⊂—",
            };
            format!("{} {} {}", self.source(), sym, self.target())
        }
    }
}

/// A validated structural schema: catalog + connections.
#[derive(Debug, Clone, Default)]
pub struct StructuralSchema {
    catalog: DatabaseSchema,
    connections: Vec<Connection>,
}

impl StructuralSchema {
    /// Build from a catalog with no connections yet.
    pub fn new(catalog: DatabaseSchema) -> Self {
        StructuralSchema {
            catalog,
            connections: Vec::new(),
        }
    }

    /// The relation catalog.
    pub fn catalog(&self) -> &DatabaseSchema {
        &self.catalog
    }

    /// All connections.
    pub fn connections(&self) -> &[Connection] {
        &self.connections
    }

    /// Add a connection after validating it against the catalog; also
    /// rejects duplicate connection names.
    pub fn add_connection(&mut self, connection: Connection) -> Result<()> {
        connection.validate(&self.catalog)?;
        if self.connections.iter().any(|c| c.name == connection.name) {
            return Err(Error::InvalidSchema(format!(
                "duplicate connection name {}",
                connection.name
            )));
        }
        self.connections.push(connection);
        Ok(())
    }

    /// Look up a connection by name.
    pub fn connection(&self, name: &str) -> Result<&Connection> {
        self.connections
            .iter()
            .find(|c| c.name == name)
            .ok_or_else(|| Error::InvalidSchema(format!("no connection named {name}")))
    }

    /// Connections leaving `relation` (stored direction).
    pub fn outgoing(&self, relation: &str) -> Vec<&Connection> {
        self.connections
            .iter()
            .filter(|c| c.from == relation)
            .collect()
    }

    /// Connections arriving at `relation` (stored direction).
    pub fn incoming(&self, relation: &str) -> Vec<&Connection> {
        self.connections
            .iter()
            .filter(|c| c.to == relation)
            .collect()
    }

    /// All traversal steps available from `relation`, in both directions.
    /// This realizes the paper's rule that every connection `C` has an
    /// inverse `C⁻¹`.
    pub fn traversals_from(&self, relation: &str) -> Vec<Traversal<'_>> {
        let mut out = Vec::new();
        for c in &self.connections {
            if c.from == relation {
                out.push(Traversal {
                    connection: c,
                    forward: true,
                });
            }
            if c.to == relation {
                out.push(Traversal {
                    connection: c,
                    forward: false,
                });
            }
        }
        out
    }

    /// Relations owned (directly) by `relation` plus subset specializations
    /// — the targets that deletions must cascade to.
    pub fn dependents_of(&self, relation: &str) -> Vec<&Connection> {
        self.outgoing(relation)
            .into_iter()
            .filter(|c| matches!(c.kind, ConnectionKind::Ownership | ConnectionKind::Subset))
            .collect()
    }

    /// Reference connections whose *target* is `relation` — the referencing
    /// relations that must be repaired when `relation` tuples are deleted
    /// or re-keyed.
    pub fn referencers_of(&self, relation: &str) -> Vec<&Connection> {
        self.incoming(relation)
            .into_iter()
            .filter(|c| c.kind == ConnectionKind::Reference)
            .collect()
    }

    /// Connections along which `relation` *depends on* another relation:
    /// inverse ownership (owner must exist), inverse subset (general entity
    /// must exist), and forward reference (referenced tuple must exist).
    pub fn dependencies_of(&self, relation: &str) -> Vec<Traversal<'_>> {
        let mut out = Vec::new();
        for c in &self.connections {
            match c.kind {
                ConnectionKind::Ownership | ConnectionKind::Subset => {
                    if c.to == relation {
                        out.push(Traversal {
                            connection: c,
                            forward: false,
                        });
                    }
                }
                ConnectionKind::Reference => {
                    if c.from == relation {
                        out.push(Traversal {
                            connection: c,
                            forward: true,
                        });
                    }
                }
            }
        }
        out
    }

    /// True when the *undirected* connection graph contains a cycle that is
    /// reachable from `start`. The paper's tree-generation step must break
    /// such circuits (Figure 2b).
    pub fn has_circuit_from(&self, start: &str) -> bool {
        // undirected DFS tracking the edge used to enter each vertex
        let mut visited: std::collections::BTreeSet<&str> = Default::default();
        let mut stack: Vec<(&str, Option<&str>)> = vec![(start, None)];
        let mut parent_edge: std::collections::BTreeMap<&str, &str> = Default::default();
        while let Some((rel, via)) = stack.pop() {
            if !visited.insert(rel) {
                continue;
            }
            if let Some(e) = via {
                parent_edge.insert(rel, e);
            }
            for t in self.traversals_from(rel) {
                let next = t.target();
                let edge = t.connection.name.as_str();
                if Some(&edge) == parent_edge.get(rel) {
                    continue; // don't go straight back over the same edge
                }
                if visited.contains(next) {
                    return true;
                }
                stack.push((next, Some(edge)));
            }
        }
        false
    }

    /// Relations reachable from `start` through any connections (either
    /// direction), including `start` itself.
    pub fn reachable_from<'a>(&'a self, start: &'a str) -> Vec<&'a str> {
        let mut visited: std::collections::BTreeSet<&str> = Default::default();
        let mut stack = vec![start];
        while let Some(rel) = stack.pop() {
            if !visited.insert(rel) {
                continue;
            }
            for t in self.traversals_from(rel) {
                stack.push(t.target());
            }
        }
        visited.into_iter().collect()
    }

    /// Render the schema as a Graphviz DOT digraph: relations become boxed
    /// nodes labelled with their attributes (keys starred), connections
    /// become edges styled by kind (ownership solid with a dot head,
    /// reference dashed, subset solid with an empty head).
    pub fn to_dot(&self, name: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("digraph \"{name}\" {{\n"));
        out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
        for r in self.catalog.relation_names() {
            let schema = self.catalog.relation(r).expect("listed");
            let attrs: Vec<String> = schema
                .attributes()
                .iter()
                .map(|a| {
                    if schema.is_key_attribute(&a.name) {
                        format!("{}*", a.name)
                    } else {
                        a.name.clone()
                    }
                })
                .collect();
            out.push_str(&format!(
                "  \"{r}\" [label=\"{r}\\n({})\"];\n",
                attrs.join(", ")
            ));
        }
        for c in &self.connections {
            let style = match c.kind {
                ConnectionKind::Ownership => "arrowhead=dot",
                ConnectionKind::Reference => "style=dashed, arrowhead=vee",
                ConnectionKind::Subset => "arrowhead=empty",
            };
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{}\", {style}];\n",
                c.from, c.to, c.name
            ));
        }
        out.push_str("}\n");
        out
    }

    /// Render the schema as a sorted list of `R1 sym R2` lines — the
    /// textual equivalent of the paper's Figure 1.
    pub fn to_graph_string(&self) -> String {
        let mut lines: Vec<String> = self.connections.iter().map(|c| c.to_string()).collect();
        lines.sort();
        let mut out = String::new();
        out.push_str("relations:\n");
        for r in self.catalog.relation_names() {
            let schema = self.catalog.relation(r).expect("listed");
            let attrs: Vec<String> = schema
                .attributes()
                .iter()
                .map(|a| {
                    if schema.is_key_attribute(&a.name) {
                        format!("{}*", a.name)
                    } else {
                        a.name.clone()
                    }
                })
                .collect();
            out.push_str(&format!("  {r}({})\n", attrs.join(", ")));
        }
        out.push_str("connections:\n");
        for l in lines {
            out.push_str("  ");
            out.push_str(&l);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal 4-relation schema: A —* B, B —> C, A —⊃ D.
    fn schema() -> StructuralSchema {
        let mut cat = DatabaseSchema::new();
        cat.add(
            RelationSchema::new(
                "A",
                vec![AttributeDef::required("a", DataType::Int)],
                &["a"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "B",
                vec![
                    AttributeDef::required("a", DataType::Int),
                    AttributeDef::required("b", DataType::Int),
                    AttributeDef::nullable("c", DataType::Int),
                ],
                &["a", "b"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "C",
                vec![AttributeDef::required("c", DataType::Int)],
                &["c"],
            )
            .unwrap(),
        )
        .unwrap();
        cat.add(
            RelationSchema::new(
                "D",
                vec![AttributeDef::required("a", DataType::Int)],
                &["a"],
            )
            .unwrap(),
        )
        .unwrap();
        let mut s = StructuralSchema::new(cat);
        s.add_connection(Connection::ownership("a_owns_b", "A", &["a"], "B", &["a"]))
            .unwrap();
        s.add_connection(Connection::reference("b_refs_c", "B", &["c"], "C", &["c"]))
            .unwrap();
        s.add_connection(Connection::subset("a_sub_d", "A", &["a"], "D", &["a"]))
            .unwrap();
        s
    }

    #[test]
    fn adjacency() {
        let s = schema();
        assert_eq!(s.outgoing("A").len(), 2);
        assert_eq!(s.incoming("B").len(), 1);
        assert_eq!(s.traversals_from("B").len(), 2); // inverse a_owns_b + forward b_refs_c
        assert_eq!(s.traversals_from("C").len(), 1);
    }

    #[test]
    fn rejects_duplicate_name() {
        let mut s = schema();
        let dup = Connection::ownership("a_owns_b", "A", &["a"], "B", &["a"]);
        assert!(s.add_connection(dup).is_err());
    }

    #[test]
    fn rejects_invalid_connection() {
        let mut s = schema();
        let bad = Connection::ownership("bad", "C", &["c"], "B", &["b", "a"]);
        assert!(s.add_connection(bad).is_err());
    }

    #[test]
    fn traversal_directions() {
        let s = schema();
        let ts = s.traversals_from("B");
        let inv = ts.iter().find(|t| !t.forward).unwrap();
        assert_eq!(inv.source(), "B");
        assert_eq!(inv.target(), "A");
        assert_eq!(inv.source_attrs(), &["a".to_string()]);
        assert!(inv.label().contains("*—"));
        let fwd = ts.iter().find(|t| t.forward).unwrap();
        assert_eq!(fwd.target(), "C");
    }

    #[test]
    fn dependents_and_referencers() {
        let s = schema();
        let deps: Vec<&str> = s.dependents_of("A").iter().map(|c| c.to.as_str()).collect();
        assert_eq!(deps, vec!["B", "D"]);
        let refs: Vec<&str> = s
            .referencers_of("C")
            .iter()
            .map(|c| c.from.as_str())
            .collect();
        assert_eq!(refs, vec!["B"]);
        assert!(s.referencers_of("B").is_empty());
    }

    #[test]
    fn dependencies() {
        let s = schema();
        // B depends on A (owner) and C (referenced)
        let deps: Vec<&str> = s.dependencies_of("B").iter().map(|t| t.target()).collect();
        assert_eq!(deps, vec!["A", "C"]);
        // D depends on A (general entity)
        let deps: Vec<&str> = s.dependencies_of("D").iter().map(|t| t.target()).collect();
        assert_eq!(deps, vec!["A"]);
        // A depends on nothing
        assert!(s.dependencies_of("A").is_empty());
    }

    #[test]
    fn no_circuit_in_tree_schema() {
        let s = schema();
        assert!(!s.has_circuit_from("A"));
    }

    #[test]
    fn circuit_detected() {
        let mut s = schema();
        // close a circuit: D —> C reference
        let mut cat_has = false;
        if s.catalog().contains("C") {
            cat_has = true;
        }
        assert!(cat_has);
        // need an attribute of D with C's key type; reuse key a (Int)
        s.add_connection(Connection::reference("d_refs_c", "D", &["a"], "C", &["c"]))
            .unwrap();
        assert!(s.has_circuit_from("A"));
        assert!(s.has_circuit_from("C"));
    }

    #[test]
    fn reachability() {
        let s = schema();
        assert_eq!(s.reachable_from("C"), vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn graph_string_mentions_all() {
        let s = schema();
        let g = s.to_graph_string();
        assert!(g.contains("A —* B"));
        assert!(g.contains("B —> C"));
        assert!(g.contains("A —⊃ D"));
        assert!(g.contains("B(a*, b*, c)"));
    }

    #[test]
    fn dot_export_has_nodes_and_styled_edges() {
        let s = schema();
        let dot = s.to_dot("test");
        assert!(dot.starts_with("digraph \"test\" {"));
        assert!(dot.contains("\"A\" [label=\"A\\n(a*)\"]"));
        assert!(dot.contains("\"A\" -> \"B\" [label=\"a_owns_b\", arrowhead=dot]"));
        assert!(dot.contains("style=dashed")); // reference edge
        assert!(dot.contains("arrowhead=empty")); // subset edge
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn connection_lookup() {
        let s = schema();
        assert!(s.connection("a_owns_b").is_ok());
        assert!(s.connection("nope").is_err());
    }
}
